//! Vendored minimal `criterion`.
//!
//! A wall-clock benchmark harness with criterion's API shape:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, and
//! `Bencher::iter`. Reports mean / min / max per benchmark. Honours
//! `cargo bench -- --test` (and a name substring filter) by running a
//! single iteration per benchmark — the CI smoke mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimiser from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness state: command-line mode plus default sampling parameters.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo and libtest pass through; irrelevant here.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode { 1 } else { sample_size };
        let mut bencher = Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(name, self.test_mode, &bencher.timings);
    }
}

/// A named collection of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmark a closure over a borrowed input under `group/name`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (Reporting happens per benchmark; this exists
    /// for API compatibility.)
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times the closure handed to `bench_function`.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn report(name: &str, test_mode: bool, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{name:<50} (no samples — Bencher::iter never called)");
        return;
    }
    if test_mode {
        println!("{name:<50} ok (1 iteration, {})", fmt_duration(timings[0]));
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = *timings.iter().min().expect("non-empty");
    let max = *timings.iter().max().expect("non-empty");
    println!(
        "{name:<50} mean {:>10}  min {:>10}  max {:>10}  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        timings.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: 5,
            timings: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.timings.len(), 5);
        // 5 samples + 1 warm-up.
        assert_eq!(count, 6);
    }

    #[test]
    fn benchmark_id_renders_with_parameter() {
        let id = BenchmarkId::new("profile", 1024);
        assert_eq!(id.into_benchmark_id(), "profile/1024");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
