//! Vendored minimal `serde_json`: renders the vendored serde [`Content`]
//! data model to JSON text and parses it back.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escape
//! sequences, numbers, booleans, null). Map keys must be strings, like
//! real `serde_json`. Non-finite floats serialise as `null`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A serialisation or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialise a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some("  "), 0)?;
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// --- writer -------------------------------------------------------------

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match k {
                    Content::Str(s) => write_string(s, out),
                    other => {
                        return Err(Error::new(format!(
                            "map key must be a string, found {other:?}"
                        )))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                self.pos += 4;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "he said \"hi\"\n\ttab\\done \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(), "A\u{1F600}");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![true, false]);
        let json = to_string_pretty(&m).unwrap();
        assert!(json.contains("\"k\""));
        assert_eq!(from_str::<BTreeMap<String, Vec<bool>>>(&json).unwrap(), m);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn float_renders_shortest_round_trip() {
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        let x = 1.0f64 / 3.0;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x);
    }
}
