//! The case loop: run a property body over N deterministically generated
//! inputs, reporting the first failing case.

use std::fmt;

/// Deterministic SplitMix64 source feeding all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected by an assumption.
    Reject(String),
}

impl TestCaseError {
    /// A property failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection with a message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// How many cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` inputs (before the
    /// `PROPTEST_CASES` environment override).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` over `config.cases` deterministic inputs (overridable via
/// `PROPTEST_CASES`); panic on the first failing case.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = env_cases().unwrap_or(config.cases);
    let base = seed_for(name);
    for case in 0..cases {
        let mut rng = TestRng::from_seed(base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("property '{name}' failed at case {case}/{cases}:\n{message}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_executes_all_cases() {
        let mut count = 0;
        run(&ProptestConfig::with_cases(10), "counting", |_| {
            count += 1;
            Ok(())
        });
        // PROPTEST_CASES may override the count in CI; only require
        // that the loop ran at least once.
        assert!(count >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_reports_failures() {
        run(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
