//! Strategies: deterministic value generators composable with
//! `prop_map` / `prop_flat_map` / `boxed()` / unions, mirroring the
//! subset of upstream proptest's `Strategy` trait that the workspace
//! uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A weighted choice between strategies of one value type; built by
/// `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof: all weights are zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.next_u64() % self.total_weight;
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// A fixed-length heterogeneous-element vector: element `i` of the
/// output comes from strategy `i`. (Upstream proptest gives `Vec<S>`
/// this "tuple of varying length" semantics; the workspace uses it for
/// per-column row strategies.)
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// String strategies from a regex subset: a single character class with
/// a repetition count, e.g. `"[a-zA-Z0-9 :\\.-]{0,18}"`. Supports
/// ranges, the escapes `\. \" \n \t \\ \-`, and `{n}` / `{n,m}`
/// repetitions — the full extent of what the workspace's patterns use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = if min == max {
            min
        } else {
            min + (rng.next_u64() as usize) % (max - min + 1)
        };
        (0..len)
            .map(|_| alphabet[(rng.next_u64() as usize) % alphabet.len()])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    assert_eq!(
        chars.next(),
        Some('['),
        "unsupported string strategy pattern {pattern:?}: expected `[class]{{n,m}}`"
    );
    let mut alphabet = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => unescape(chars.next(), pattern),
            Some(c) => c,
            None => panic!("unterminated character class in {pattern:?}"),
        };
        // A `-` between two members denotes a range unless it precedes `]`.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            if ahead.peek() != Some(&']') && ahead.peek().is_some() {
                chars.next();
                let hi = match chars.next() {
                    Some('\\') => unescape(chars.next(), pattern),
                    Some(h) => h,
                    None => panic!("unterminated range in {pattern:?}"),
                };
                assert!(c <= hi, "inverted range {c}-{hi} in {pattern:?}");
                for code in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        alphabet.push(ch);
                    }
                }
                continue;
            }
        }
        alphabet.push(c);
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");

    assert_eq!(
        chars.next(),
        Some('{'),
        "pattern {pattern:?} must end with a {{n}} or {{n,m}} repetition"
    );
    let rest: String = chars.collect();
    let body = rest
        .strip_suffix('}')
        .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repetition minimum"),
            hi.trim().parse().expect("repetition maximum"),
        ),
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    };
    assert!(min <= max, "inverted repetition in {pattern:?}");
    (alphabet, min, max)
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(c @ ('.' | '"' | '\\' | '-' | ']' | '[' | ' ')) => c,
        other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_seed(3);
        let strategy = "[a-z0-9:\\. -]{0,15}";
        for _ in 0..200 {
            let s = strategy.generate(&mut rng);
            assert!(s.chars().count() <= 15);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || ":.- ".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn union_honours_weights() {
        let u = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut rng = TestRng::from_seed(11);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!((800..=980).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_of_strategies_is_positional() {
        let row: Vec<BoxedStrategy<i64>> = vec![(0i64..1).boxed(), (10i64..11).boxed()];
        let mut rng = TestRng::from_seed(5);
        assert_eq!(row.generate(&mut rng), vec![0, 10]);
    }

    #[test]
    fn flat_map_chains_generation() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(7u8), n));
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
