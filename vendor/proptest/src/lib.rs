//! Vendored minimal `proptest`.
//!
//! Implements the strategy combinators, macros and collection helpers the
//! workspace's property tests use, over a deterministic SplitMix64 source.
//! Failing cases are reported with their case number and generated-input
//! debug dump; there is no shrinking. Case counts honour
//! `PROPTEST_CASES` when set.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; retries generation to reach the
    /// minimum size despite duplicate draws.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate ordered sets whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: a mix of magnitudes and signs. Real
            // proptest's `any::<f64>()` defaults likewise exclude NaN.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * unit * 2f64.powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII, occasionally wider BMP characters.
            let roll = rng.next_u64();
            if roll.is_multiple_of(4) {
                char::from_u32(0x00A1 + (roll >> 8) as u32 % 0x0FF0).unwrap_or('x')
            } else {
                (b' ' + ((roll >> 8) % 95) as u8) as char
            }
        }
    }
}

/// The toolbox glob import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    pub use crate::test_runner::ProptestConfig;
}

/// Assert a condition inside a property; failure aborts the case with a
/// message instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discard the current case unless an assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A weighted (or unweighted) union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&$strategy, __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}
