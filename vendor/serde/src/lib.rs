//! Vendored minimal serde facade.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde the workspace actually uses: `Serialize` /
//! `Deserialize` traits (over a JSON-shaped [`Content`] model), derive
//! macros for structs and enums, and impls for the std types that appear
//! in derived fields. `serde_json` (also vendored) renders [`Content`]
//! to and from JSON text.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model: what a value looks like once
/// serialised, before rendering to a concrete format.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map, as ordered key/value pairs.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a string key in serialised map entries.
pub fn content_get<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    map.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// A deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError {
    /// Human-readable description.
    pub message: String,
}

impl DeError {
    /// A generic error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// The input had the wrong shape.
    pub fn expected(what: &str) -> Self {
        DeError {
            message: format!("expected {what}"),
        }
    }

    /// A struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}` for `{ty}`"),
        }
    }

    /// An enum key did not name a known variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError {
            message: format!("unknown variant `{variant}` for `{ty}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into [`Content`].
pub trait Serialize {
    /// Serialise into the data model.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from [`Content`].
pub trait Deserialize: Sized {
    /// Deserialise from the data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// --- primitive impls ----------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    Content::F64(v) if v.fract() == 0.0 => *v as i128,
                    _ => return Err(DeError::expected(concat!("integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    Content::F64(v) if v.fract() == 0.0 => *v as i128,
                    _ => return Err(DeError::expected(concat!("integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(concat!("number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            // Intentionally leaks: upstream serde borrows from the input
            // instead, which a tree-based deserializer cannot. The only
            // workspace use is round-tripping small constant tables in
            // tests, where the leak is bounded and harmless.
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content.as_seq().ok_or_else(|| DeError::expected("tuple sequence"))?;
                let expected = 0 $(+ { let _ = $n; 1 })+;
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert!(bool::from_content(&true.to_content()).unwrap());
    }

    #[test]
    fn integers_accept_cross_signedness() {
        assert_eq!(u64::from_content(&Content::I64(9)).unwrap(), 9);
        assert_eq!(i64::from_content(&Content::U64(9)).unwrap(), 9);
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_content(&m.to_content()).unwrap(),
            m
        );
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_content(&o.to_content()).unwrap(), None);
        let t = (1u64, "x".to_string());
        assert_eq!(
            <(u64, String)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }
}
