//! Vendored minimal `rand` (0.8-compatible surface).
//!
//! Provides exactly what the workspace uses: `rand::Rng` (for
//! `gen_range`), `rand::SeedableRng` (for `seed_from_u64`), and
//! `rand::rngs::StdRng`. The generator is SplitMix64 — deterministic,
//! seedable, and statistically fine for scenario generation; it makes no
//! attempt to match upstream rand's output streams.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0u32..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
