//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade.
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields (optionally `#[serde(skip)]` per field)
//! - unit structs and tuple structs (newtype and wider)
//! - enums with unit, newtype, tuple and struct variants
//!
//! No generics, lifetimes or other serde attributes — none of the
//! workspace types need them. Parsing walks the raw proc-macro token
//! trees (no syn/quote in the offline environment).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consume one `#[...]` attribute starting at `i` (pointing at `#`).
/// Returns whether it was `#[serde(skip)]`.
fn eat_attribute(tokens: &[TokenTree], i: &mut usize) -> bool {
    debug_assert!(matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#'));
    *i += 1;
    let mut is_skip = false;
    if let Some(TokenTree::Group(g)) = tokens.get(*i) {
        if g.delimiter() == Delimiter::Bracket {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let body = args.stream().to_string();
                        if body.split(',').any(|a| a.trim() == "skip") {
                            is_skip = true;
                        } else {
                            panic!("vendored serde_derive: unsupported serde attribute #[serde({body})]");
                        }
                    }
                }
            }
            *i += 1;
        }
    }
    is_skip
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip a type expression: consume tokens until a `,` at angle-depth 0.
fn eat_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse the fields of a brace-delimited body: `a: T, #[serde(skip)] b: U`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip |= eat_attribute(&tokens, &mut i);
        }
        eat_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("vendored serde_derive: expected field name, got {other}"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("vendored serde_derive: expected `:` after field `{name}`"),
        }
        eat_type(&tokens, &mut i);
        i += 1; // the comma (or end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a parenthesised tuple body at comma depth 0.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            eat_attribute(&tokens, &mut i);
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("vendored serde_derive: expected variant name, got {other}"),
            None => break,
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant `= expr` and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            eat_attribute(&tokens, &mut i);
            continue;
        }
        break;
    }
    eat_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("vendored serde_derive: expected `struct` or `enum`"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("vendored serde_derive: expected item name"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported (derive on `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            _ => Item::Struct {
                name,
                shape: Shape::Unit,
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("vendored serde_derive: malformed enum `{name}`"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    }
}

fn gen_serialize_named(fields: &[Field], access: &str) -> String {
    let mut body = String::from("let mut __m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "__m.push((::serde::Content::Str(\"{n}\".to_string()), ::serde::Serialize::to_content({access}{n})));\n",
            n = f.name,
        ));
    }
    body.push_str("::serde::Content::Map(__m)");
    body
}

fn gen_deserialize_named(ty: &str, fields: &[Field], construct: &str) -> String {
    let mut out = format!(
        "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for `{ty}`\"))?;\n"
    );
    out.push_str(&format!("::std::result::Result::Ok({construct} {{\n"));
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            out.push_str(&format!(
                "{n}: match ::serde::content_get(__m, \"{n}\") {{\n\
                     Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                     None => return ::std::result::Result::Err(::serde::DeError::missing_field(\"{ty}\", \"{n}\")),\n\
                 }},\n",
                n = f.name,
            ));
        }
    }
    out.push_str("})");
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => gen_serialize_named(fields, "&self."),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),\n",
                        v = v.name,
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Content::Map(vec![(::serde::Content::Str(\"{v}\".to_string()), ::serde::Serialize::to_content(__f0))]),\n",
                        v = v.name,
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![(::serde::Content::Str(\"{v}\".to_string()), ::serde::Content::Seq(vec![{items}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = gen_serialize_named(fields, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ let __inner = {{ {inner} }}; ::serde::Content::Map(vec![(::serde::Content::Str(\"{v}\".to_string()), __inner)]) }},\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                        .collect();
                    format!(
                        "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence for `{name}`\"))?;\n\
                         if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element sequence for `{name}`\")); }}\n\
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", "),
                    )
                }
                Shape::Named(fields) => gen_deserialize_named(name, fields, name),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name,
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_content(__payload)?)),\n",
                        v = v.name,
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence for `{name}::{v}`\"))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element sequence for `{name}::{v}`\")); }}\n\
                                 ::std::result::Result::Ok({name}::{v}({items}))\n\
                             }},\n",
                            v = v.name,
                            items = items.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let inner = gen_deserialize_named(
                            &format!("{name}::{v}", v = v.name),
                            fields,
                            &format!("{name}::{v}", v = v.name),
                        );
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ let __c = __payload; {inner} }},\n",
                            v = v.name,
                        ));
                    }
                }
            }
            let body = format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__k, __payload) = &__entries[0];\n\
                         let __k = __k.as_str().ok_or_else(|| ::serde::DeError::expected(\"string variant key for `{name}`\"))?;\n\
                         match __k {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-entry map for enum `{name}`\")),\n\
                 }}"
            );
            (name.clone(), body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Deserialize impl parses")
}
