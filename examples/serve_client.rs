//! A loopback round-trip against an in-process `efes-serve` server.
//!
//! Starts the server on an ephemeral port, lists the scenarios, prices
//! one over HTTP, scrapes the metrics, and shuts down gracefully —
//! the whole service lifecycle in one process, no external tools.
//!
//! Run with: `cargo run --release -p efes-serve --example serve_client`

use efes_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Send one request, return the raw response text (head + body).
fn send(addr: SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    send(addr, &format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn main() -> std::io::Result<()> {
    let handle = Server::start(
        ServerConfig::default(),
        efes_scenarios::standard_registry(),
    )?;
    let addr = handle.addr();
    println!("serving on {addr}\n");

    println!("GET /scenarios =>");
    println!("  {}\n", body_of(&get(addr, "/scenarios")?));

    let request = r#"{"scenario":"music-example","quality":"HighQuality"}"#;
    println!("POST /estimate {request} =>");
    println!("  {}\n", body_of(&post_json(addr, "/estimate", request)?));

    // A second estimate of the same scenario is served from the
    // per-scenario profile cache — visible in the metrics below.
    let _ = post_json(addr, "/estimate", request)?;

    println!("GET /metrics (excerpt) =>");
    let metrics = get(addr, "/metrics")?;
    for line in body_of(&metrics)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("efes_requests_total")
                || l.starts_with("efes_estimates_ok_total")
                || l.starts_with("efes_profile_cache")
                || l.starts_with("efes_queue_")
        })
    {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
