//! A loopback round-trip against an in-process `efes-serve` server.
//!
//! Starts the server on an ephemeral port, lists the scenarios, prices
//! one over HTTP, scrapes the metrics, and shuts down gracefully —
//! the whole service lifecycle in one process, no external tools.
//!
//! The client side is a well-behaved tenant: every POST goes through
//! [`post_json_with_retry`], which honours `429` + `Retry-After` with
//! full-jitter exponential backoff. The burst section at the end
//! overflows a one-slot queue on purpose to show the backoff working.
//!
//! Run with: `cargo run --release -p efes-serve --example serve_client`

use efes_exec::ExecutionPolicy;
use efes_serve::{Server, ServerConfig};
use efes_synth::{generate, SynthConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Send one request, return the raw response text (head + body).
fn send(addr: SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    send(addr, &format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Case-insensitive header lookup in a raw response head.
fn header_value<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

/// splitmix64 — a deterministic jitter source, no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// POST, honouring `429` + `Retry-After`: each retry waits the server's
/// hint plus full jitter drawn from an exponentially growing window, so
/// shed clients return desynchronised instead of stampeding together.
fn post_json_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    jitter_seed: &mut u64,
) -> std::io::Result<String> {
    const MAX_ATTEMPTS: u32 = 5;
    for attempt in 0..MAX_ATTEMPTS {
        let response = post_json(addr, path, body)?;
        if status_of(&response) != 429 || attempt + 1 == MAX_ATTEMPTS {
            return Ok(response);
        }
        let hint_ms = header_value(&response, "retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(0, |secs| secs * 1000);
        let window_ms = 100u64 << attempt; // 100, 200, 400, 800 ms
        let wait_ms = hint_ms + splitmix64(jitter_seed) % window_ms;
        println!("  shed with 429 (attempt {}), retrying in {wait_ms} ms", attempt + 1);
        std::thread::sleep(Duration::from_millis(wait_ms));
    }
    unreachable!("the loop returns on its last attempt")
}

fn main() -> std::io::Result<()> {
    // One worker and a one-slot queue: enough for the sequential walk
    // below, and guarantees the closing burst actually sheds.
    let mut registry = efes_scenarios::standard_registry();
    registry.register("synth-burst", "synthetic burst-demo scenario", || {
        generate(&SynthConfig::default().with_seed(11).with_rows(20_000)).scenario
    });
    let handle = Server::start(
        ServerConfig {
            workers: ExecutionPolicy::Threads(1),
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        registry,
    )?;
    let addr = handle.addr();
    println!("serving on {addr}\n");

    println!("GET /scenarios =>");
    println!("  {}\n", body_of(&get(addr, "/scenarios")?));

    let mut seed = 0xefe5;
    let request = r#"{"scenario":"music-example","quality":"HighQuality"}"#;
    println!("POST /estimate {request} =>");
    println!(
        "  {}\n",
        body_of(&post_json_with_retry(addr, "/estimate", request, &mut seed)?)
    );

    // A second estimate of the same scenario is served from the
    // per-scenario profile cache — visible in the metrics below.
    let _ = post_json_with_retry(addr, "/estimate", request, &mut seed)?;

    // Four concurrent clients against one worker and one queue slot:
    // one runs, one queues, the rest shed with 429 + Retry-After and
    // come back after a jittered backoff to find the queue drained.
    println!("burst: 4 concurrent estimates of synth-burst =>");
    let burst = r#"{"scenario":"synth-burst"}"#;
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut seed = 0xefe5 ^ (i as u64);
                post_json_with_retry(addr, "/estimate", burst, &mut seed).map(|r| status_of(&r))
            })
        })
        .collect();
    for (i, client) in clients.into_iter().enumerate() {
        let status = client.join().expect("burst client panicked")?;
        println!("  client {i}: final status {status}");
    }
    println!();

    println!("GET /metrics (excerpt) =>");
    let metrics = get(addr, "/metrics")?;
    for line in body_of(&metrics)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("efes_requests_total")
                || l.starts_with("efes_estimates_ok_total")
                || l.starts_with("efes_rejected_total")
                || l.starts_with("efes_profile_cache")
                || l.starts_with("efes_queue_")
        })
    {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
