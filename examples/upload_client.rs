//! The scenario upload lifecycle against an in-process `efes-serve`
//! server: build an upload document (here from `efes-synth`, but any
//! JSON of the same shape works), `POST /scenarios`, estimate the
//! upload, watch an identical re-upload deduplicate, and delete it.
//!
//! Run with: `cargo run --release -p efes-serve --example upload_client`

use efes_ingest::{ScenarioUpload, UploadFormat};
use efes_serve::{Server, ServerConfig};
use efes_synth::{generate, SynthConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Send one request, return the raw response text (head + body).
fn send(addr: SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    send(addr, &format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: SocketAddr, name: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!("DELETE /scenarios/{name} HTTP/1.1\r\nhost: efes\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn main() -> std::io::Result<()> {
    let handle = Server::start(
        ServerConfig::default(),
        efes_scenarios::standard_registry(),
    )?;
    let addr = handle.addr();
    println!("serving on {addr}\n");

    // Any JSON document of this shape uploads; efes-synth just spares
    // this example a hand-written scenario. CSV payloads work too
    // (`UploadFormat::Csv`, or a `"csv"` key instead of `"rows"`).
    let mut scenario = generate(&SynthConfig::default().with_seed(5).with_rows(60)).scenario;
    scenario.name = "uploaded-demo".to_owned();
    let mut upload = ScenarioUpload::from_scenario(&scenario, UploadFormat::JsonRows);
    upload.name = "uploaded-demo".to_owned();
    upload.description = "synthetic scenario uploaded over HTTP".to_owned();
    let doc = serde_json::to_string(&upload).expect("serialise upload");
    println!("upload document: {} bytes\n", doc.len());

    println!("POST /scenarios =>");
    println!("  {}\n", body_of(&post_json(addr, "/scenarios", &doc)?));

    println!("GET /scenarios (note provenance) =>");
    println!("  {}\n", body_of(&get(addr, "/scenarios")?));

    let request = r#"{"scenario":"uploaded-demo"}"#;
    println!("POST /estimate {request} =>");
    println!("  {}\n", body_of(&post_json(addr, "/estimate", request)?));

    // The same content under another name deduplicates: the response
    // points at the existing entry, whose profile cache is already warm.
    upload.name = "uploaded-demo-again".to_owned();
    let doc2 = serde_json::to_string(&upload).expect("serialise upload");
    println!("POST /scenarios (same content, new name) =>");
    println!("  {}\n", body_of(&post_json(addr, "/scenarios", &doc2)?));

    println!("DELETE /scenarios/uploaded-demo =>");
    println!("  {}\n", body_of(&delete(addr, "uploaded-demo")?));

    println!("GET /metrics (ingest excerpt) =>");
    let metrics = get(addr, "/metrics")?;
    for line in body_of(&metrics)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| l.starts_with("efes_ingest_") || l.starts_with("efes_scenarios_"))
    {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
