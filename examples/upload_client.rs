//! The scenario upload lifecycle against an in-process `efes-serve`
//! server: build an upload document (here from `efes-synth`, but any
//! JSON of the same shape works), `POST /scenarios`, estimate the
//! upload, watch an identical re-upload deduplicate, and delete it.
//!
//! Every POST goes through [`post_json_with_retry`]: shed requests
//! (`429`) wait the server's `Retry-After` hint plus full jitter from
//! an exponentially growing window before coming back.
//!
//! Run with: `cargo run --release -p efes-serve --example upload_client`

use efes_ingest::{ScenarioUpload, UploadFormat};
use efes_serve::{Server, ServerConfig};
use efes_synth::{generate, SynthConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Send one request, return the raw response text (head + body).
fn send(addr: SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    send(addr, &format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: SocketAddr, name: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!("DELETE /scenarios/{name} HTTP/1.1\r\nhost: efes\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Case-insensitive header lookup in a raw response head.
fn header_value<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

/// splitmix64 — a deterministic jitter source, no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// POST, honouring `429` + `Retry-After`: each retry waits the server's
/// hint plus full jitter drawn from an exponentially growing window, so
/// shed clients return desynchronised instead of stampeding together.
fn post_json_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    jitter_seed: &mut u64,
) -> std::io::Result<String> {
    const MAX_ATTEMPTS: u32 = 5;
    for attempt in 0..MAX_ATTEMPTS {
        let response = post_json(addr, path, body)?;
        if status_of(&response) != 429 || attempt + 1 == MAX_ATTEMPTS {
            return Ok(response);
        }
        let hint_ms = header_value(&response, "retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(0, |secs| secs * 1000);
        let window_ms = 100u64 << attempt; // 100, 200, 400, 800 ms
        let wait_ms = hint_ms + splitmix64(jitter_seed) % window_ms;
        println!("  shed with 429 (attempt {}), retrying in {wait_ms} ms", attempt + 1);
        std::thread::sleep(Duration::from_millis(wait_ms));
    }
    unreachable!("the loop returns on its last attempt")
}

fn main() -> std::io::Result<()> {
    let handle = Server::start(
        ServerConfig::default(),
        efes_scenarios::standard_registry(),
    )?;
    let addr = handle.addr();
    let mut seed = 0xefe5;
    println!("serving on {addr}\n");

    // Any JSON document of this shape uploads; efes-synth just spares
    // this example a hand-written scenario. CSV payloads work too
    // (`UploadFormat::Csv`, or a `"csv"` key instead of `"rows"`).
    let mut scenario = generate(&SynthConfig::default().with_seed(5).with_rows(60)).scenario;
    scenario.name = "uploaded-demo".to_owned();
    let mut upload = ScenarioUpload::from_scenario(&scenario, UploadFormat::JsonRows);
    upload.name = "uploaded-demo".to_owned();
    upload.description = "synthetic scenario uploaded over HTTP".to_owned();
    let doc = serde_json::to_string(&upload).expect("serialise upload");
    println!("upload document: {} bytes\n", doc.len());

    println!("POST /scenarios =>");
    println!(
        "  {}\n",
        body_of(&post_json_with_retry(addr, "/scenarios", &doc, &mut seed)?)
    );

    println!("GET /scenarios (note provenance) =>");
    println!("  {}\n", body_of(&get(addr, "/scenarios")?));

    let request = r#"{"scenario":"uploaded-demo"}"#;
    println!("POST /estimate {request} =>");
    println!(
        "  {}\n",
        body_of(&post_json_with_retry(addr, "/estimate", request, &mut seed)?)
    );

    // The same content under another name deduplicates: the response
    // points at the existing entry, whose profile cache is already warm.
    upload.name = "uploaded-demo-again".to_owned();
    let doc2 = serde_json::to_string(&upload).expect("serialise upload");
    println!("POST /scenarios (same content, new name) =>");
    println!(
        "  {}\n",
        body_of(&post_json_with_retry(addr, "/scenarios", &doc2, &mut seed)?)
    );

    println!("DELETE /scenarios/uploaded-demo =>");
    println!("  {}\n", body_of(&delete(addr, "uploaded-demo")?));

    println!("GET /metrics (ingest excerpt) =>");
    let metrics = get(addr, "/metrics")?;
    for line in body_of(&metrics)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| l.starts_with("efes_ingest_") || l.starts_with("efes_scenarios_"))
    {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
