//! Extensibility: plug a user-defined estimation module into EFES.
//!
//! The paper requires that *"users must be able to extend the range of
//! problems covered by the framework"* and cites CrowdER's back-of-the-
//! envelope duplicate-comparison estimate (§2, \[25\]) as work that
//! *"fits well into our effort model"*. This example implements exactly
//! that: a module estimating the human effort of resolving duplicates
//! between source and target, priced per candidate comparison.
//!
//! ```text
//! cargo run --release --example custom_module
//! ```

use efes::framework::{EstimationModule, Finding, ModuleError, ModuleReport};
use efes::prelude::*;
use efes::settings::Quality;
use efes::task::{TaskCategory, TaskParams, TaskType};
use efes_profiling::TopK;
use efes_relational::IntegrationScenario;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

/// Estimates duplicate-resolution effort: for each attribute
/// correspondence whose two sides share values, candidate duplicate
/// pairs must be reviewed (CrowdER-style pairwise comparisons after
/// value-overlap blocking).
struct DuplicateResolutionModule {
    /// Comparisons a reviewer can decide per minute.
    comparisons_per_minute: f64,
}

impl EstimationModule for DuplicateResolutionModule {
    fn name(&self) -> &str {
        "duplicate-resolution"
    }

    fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
        let mut report = ModuleReport::new(self.name());
        for (sid, source) in scenario.iter_sources() {
            for (sa, ta) in scenario.correspondences.attribute_correspondences(sid) {
                // Blocking: only values occurring on *both* sides can
                // collide; each shared value spawns candidate pairs.
                let src_vals = source.instance.distinct_values(sa.table, sa.attr);
                let tgt_vals: std::collections::HashSet<_> = scenario
                    .target
                    .instance
                    .distinct_values(ta.table, ta.attr)
                    .into_iter()
                    .collect();
                let shared = src_vals.iter().filter(|v| tgt_vals.contains(v)).count();
                if shared == 0 {
                    continue;
                }
                report.push(
                    Finding::new(
                        "duplicate-candidates",
                        format!(
                            "{} ∩ {}",
                            source.schema.qualified(sa.table, sa.attr),
                            scenario.target.schema.qualified(ta.table, ta.attr)
                        ),
                        "shared values indicate potential duplicates across the integration",
                    )
                    .with_int("shared-values", shared as u64),
                );
            }
        }
        Ok(report)
    }

    fn plan(
        &self,
        _scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError> {
        // Low effort: keep duplicates (no task). High quality: review
        // every candidate pair.
        if config.quality == Quality::LowEffort {
            return Ok(Vec::new());
        }
        Ok(report
            .of_kind("duplicate-candidates")
            .map(|f| {
                Task::new(
                    TaskType::Custom("review-duplicate-candidates".into()),
                    config.quality,
                    TaskParams::repeated(f.int("shared-values").unwrap_or(0)),
                    f.location.clone(),
                    self.name(),
                )
                .with_category(TaskCategory::CleaningOther)
            })
            .collect())
    }
}

fn main() {
    let (scenario, _) = music_example_scenario(&MusicExampleConfig::scaled_down());

    let module = DuplicateResolutionModule {
        comparisons_per_minute: 4.0,
    };
    // Register the custom task's effort function — the pluggable
    // counterpart of a Table 9 row.
    let mut config = EstimationConfig::for_quality(Quality::HighQuality);
    config.effort_model.set(
        TaskType::Custom("review-duplicate-candidates".into()),
        EffortFunction::PerRepetition(1.0 / module.comparisons_per_minute),
    );

    let mut estimator = Estimator::with_default_modules(config);
    estimator.register(Box::new(module));

    let estimate = estimator.estimate(&scenario).expect("estimate");
    println!("Estimate with the plugged duplicate-resolution module:\n");
    for t in &estimate.tasks {
        println!("  [{:20}] {:50} {:>7.1} min", t.task.module, t.task.to_string(), t.minutes);
    }
    println!(
        "\ntotal: {:.0} min (of which duplicate review: {:.1} min)",
        estimate.total_minutes(),
        estimate.category_minutes(TaskCategory::CleaningOther)
    );

    // For contrast: the shared-vocabulary check found in the top-k
    // statistics of the genre column.
    let (t, a) = scenario.target.schema.resolve("records", "genre").unwrap();
    let column: Vec<_> = scenario
        .target
        .instance
        .table(t)
        .column(a)
        .map(|v| v.to_value())
        .collect();
    let topk = TopK::compute(&column, 5);
    println!(
        "\n(FYI: the target's genre vocabulary, from the profiling substrate: {:?})",
        topk.values.iter().map(|(v, c)| format!("{v}×{c}")).collect::<Vec<_>>()
    );
}
