//! Source selection (paper §1): *"knowledge of how well and how easy a
//! data source fits into a given data ecosystem improves source
//! selection. [...] given a set of integration candidates, find the
//! source with the best 'fit'."*
//!
//! We hold the target fixed (the medium music schema) and rank three
//! candidate sources by their estimated integration effort: a clean flat
//! dump, a dirty flat dump (missing genres, unit-mismatched lengths),
//! and an already-conforming sibling database.
//!
//! ```text
//! cargo run --release --example source_selection
//! ```

use efes::prelude::*;
use efes::settings::Quality;
use efes_scenarios::discography::schemas::{build_f, build_m, MusicSizes};
use efes_relational::{CorrespondenceBuilder, IntegrationScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sizes = MusicSizes::default_sizes();
    let clean_sizes = MusicSizes {
        missing_genres: 0,
        ..sizes
    };

    // The fixed target ecosystem.
    let target = build_m(&sizes, &mut StdRng::seed_from_u64(0xEC0));

    // Candidate A: a flat dump with no missing genres (still needs the
    // seconds → milliseconds conversion).
    let cand_a = build_f(&clean_sizes, &mut StdRng::seed_from_u64(1));
    // Candidate B: the same shape, but with NULL genres to repair.
    let cand_b = build_f(&sizes, &mut StdRng::seed_from_u64(2));
    // Candidate C: another instance of the target schema itself.
    let mut cand_c = build_m(&sizes, &mut StdRng::seed_from_u64(3));
    cand_c.schema.name = "m-sibling".into();

    let mut ranking: Vec<(String, f64)> = Vec::new();
    for (name, source) in [
        ("flat dump (clean)", cand_a),
        ("flat dump (missing genres)", cand_b),
        ("conforming sibling", cand_c),
    ] {
        let scenario = make_scenario(name, source, target.clone());
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        let estimate = estimator.estimate(&scenario).expect("estimate");
        ranking.push((name.to_owned(), estimate.total_minutes()));
    }
    ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("Candidate sources ranked by estimated integration effort");
    println!("(fixed target: the medium music schema, high-quality result)\n");
    for (rank, (name, minutes)) in ranking.iter().enumerate() {
        println!("  {}. {:28} {:>6.0} min", rank + 1, name, minutes);
    }
    println!("\nThe conforming sibling wins: same schema, compatible data.");
}

fn make_scenario(
    name: &str,
    source: efes_relational::Database,
    target: efes_relational::Database,
) -> IntegrationScenario {
    let correspondences = if source.schema.table_id("discs").is_some() {
        // Flat candidates.
        CorrespondenceBuilder::new(&source, &target)
            .table("discs", "releases")
            .unwrap()
            .attr("discs", "title", "releases", "title")
            .unwrap()
            .attr("discs", "year", "releases", "year")
            .unwrap()
            .attr("discs", "artist", "artists_m", "name")
            .unwrap()
            .table("discs", "release_genres")
            .unwrap()
            .attr("discs", "genre", "release_genres", "genre")
            .unwrap()
            .table("disc_tracks", "tracks_m")
            .unwrap()
            .attr("disc_tracks", "title", "tracks_m", "title")
            .unwrap()
            .attr("disc_tracks", "seconds", "tracks_m", "length_ms")
            .unwrap()
            .finish()
    } else {
        // The sibling: identity correspondences.
        let mut cb = CorrespondenceBuilder::new(&source, &target);
        for t in ["artists_m", "releases", "tracks_m", "labels", "release_genres"] {
            cb = cb.table(t, t).unwrap();
        }
        for (t, a) in [
            ("artists_m", "name"),
            ("releases", "title"),
            ("releases", "year"),
            ("tracks_m", "title"),
            ("tracks_m", "position"),
            ("tracks_m", "length_ms"),
            ("labels", "name"),
            ("release_genres", "genre"),
        ] {
            cb = cb.attr(t, a, t, a).unwrap();
        }
        cb.finish()
    };
    IntegrationScenario::single_source(name, source, target, correspondences).unwrap()
}
