//! Dropping the given-correspondences assumption (paper §7): bootstrap
//! the scenario with the schema-matching substrate, measure the match
//! quality with Melnik's *accuracy* (additions + deletions needed to
//! reach the intended result), and feed the automatic correspondences
//! into EFES.
//!
//! ```text
//! cargo run --release --example auto_correspondences
//! ```

use efes::prelude::*;
use efes::settings::Quality;
use efes_matching::{match_accuracy, CombinedMatcher, MatcherConfig};
use efes_relational::{Correspondence, IntegrationScenario};
use efes_scenarios::discography::schemas::{build_f, build_m, MusicSizes};
use efes_scenarios::discography::{discography_scenarios, DiscographyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sizes = MusicSizes::default_sizes();
    let source = build_f(&sizes, &mut StdRng::seed_from_u64(0xF1 ^ 0xD15C));
    let target = build_m(&sizes, &mut StdRng::seed_from_u64(0x2A ^ 0xD15C));

    // 1. Run the combined matcher (names + instances).
    let matcher = CombinedMatcher::new(MatcherConfig::default());
    let proposed = matcher.match_databases(&source, &target);
    println!("matcher proposed {} correspondences", proposed.len());

    // 2. Compare against the intended (manual) correspondences of the
    //    f1-m2 evaluation scenario using Melnik's accuracy measure.
    let (manual_scenario, _) = discography_scenarios(&DiscographyConfig::default())
        .into_iter()
        .next()
        .unwrap();
    let as_pairs = |c: &efes_relational::CorrespondenceSet| -> Vec<(usize, usize, usize, usize)> {
        c.iter()
            .filter_map(|corr| match corr {
                Correspondence::Attribute {
                    source_attr,
                    target_attr,
                    ..
                } => Some((
                    source_attr.table.0,
                    source_attr.attr.0,
                    target_attr.table.0,
                    target_attr.attr.0,
                )),
                _ => None,
            })
            .collect()
    };
    let intended = as_pairs(&manual_scenario.correspondences);
    let automatic = as_pairs(&proposed);
    let diff = match_accuracy(&automatic, &intended);
    println!(
        "match accuracy vs the manual correspondences: {:.2} \
         ({} correct, {} to delete, {} to add)",
        diff.accuracy, diff.correct, diff.deletions, diff.additions
    );

    // 3. Estimate with the automatic correspondences.
    let auto_scenario =
        IntegrationScenario::single_source("f1-m2 (auto)", source, target, proposed)
            .expect("matcher output is well-formed");
    let estimator =
        Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality));
    let auto_estimate = estimator.estimate(&auto_scenario).expect("estimate");
    let manual_estimate = estimator.estimate(&manual_scenario).expect("estimate");
    println!(
        "\nestimated effort   manual correspondences: {:>6.0} min\n\
         estimated effort automatic correspondences: {:>6.0} min",
        manual_estimate.total_minutes(),
        auto_estimate.total_minutes()
    );
    println!(
        "\n(An imperfect match result shifts the estimate; the accuracy\n\
         measure above is the paper's §7 handle on that uncertainty.)"
    );
}
