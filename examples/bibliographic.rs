//! The bibliographic case study in one run: estimate all four Amalgam
//! scenarios at both quality levels, alongside the attribute-counting
//! baseline and the oracle ground truth — a textual sibling of the
//! paper's Figure 6 workflow.
//!
//! ```text
//! cargo run --release --example bibliographic
//! ```

use efes::baseline::AttributeCountingEstimator;
use efes::prelude::*;
use efes::settings::Quality;
use efes_scenarios::amalgam::{amalgam_scenarios, AmalgamConfig};

fn main() {
    let scenarios = amalgam_scenarios(&AmalgamConfig::default());
    // An *uncalibrated* counting baseline for illustration (the full
    // cross-validated comparison lives in `repro figure6`): Harden's raw
    // 8.05 h per attribute, which demonstrates why calibration is
    // indispensable for that model.
    let raw_counting = AttributeCountingEstimator::uncalibrated();

    println!(
        "{:8} {:12} {:>12} {:>12} {:>10} {:>10} {:>14}",
        "scenario", "quality", "EFES map", "EFES clean", "EFES tot", "measured", "counting (raw)"
    );
    for (scenario, gt) in &scenarios {
        for quality in [Quality::LowEffort, Quality::HighQuality] {
            let estimator =
                Estimator::with_default_modules(EstimationConfig::for_quality(quality));
            let estimate = estimator.estimate(scenario).expect("estimate");
            let counting = raw_counting.estimate(scenario);
            println!(
                "{:8} {:12} {:>10.0} m {:>10.0} m {:>8.0} m {:>8.0} m {:>12.0} m",
                scenario.name,
                quality.to_string(),
                estimate.mapping_minutes(),
                estimate.cleaning_minutes(),
                estimate.total_minutes(),
                gt.measured_total(quality),
                counting.total_minutes(),
            );
        }
    }

    println!("\nPer-task detail for the flattening scenario (s1-s2, high quality):");
    let estimator =
        Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality));
    let estimate = estimator.estimate(&scenarios[0].0).expect("estimate");
    for t in &estimate.tasks {
        println!("  {:55} {:>6.0} min", t.task.to_string(), t.minutes);
    }
}
