//! Quickstart: estimate the effort of the paper's running example
//! (Figure 2 — integrating a discographic source into a music-records
//! target) end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use efes::prelude::*;
use efes::report::{render_estimate, render_report};
use efes::settings::Quality;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn main() {
    // 1. Build (or load) an integration scenario: source database(s), a
    //    target database, and correspondences. Here: the paper's running
    //    example at 1/100 scale.
    let (scenario, ground_truth) = music_example_scenario(&MusicExampleConfig::scaled_down());
    println!("{}\n", scenario.describe());

    // 2. Phase 1 — complexity assessment: objective, context-free
    //    findings from the three built-in modules (mapping, structural
    //    conflicts, value heterogeneities).
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let reports = estimator.assess(&scenario).expect("assessment");
    for report in &reports {
        println!("{}", render_report(report));
    }

    // 3. Phase 2 — effort estimation, at both expected result qualities.
    for quality in [Quality::LowEffort, Quality::HighQuality] {
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(quality));
        let estimate = estimator.estimate(&scenario).expect("estimate");
        println!("--- expected quality: {quality} ---");
        println!("{}", render_estimate(&estimate));
        println!(
            "breakdown: mapping {:.0} min, cleaning {:.0} min\n",
            estimate.mapping_minutes(),
            estimate.cleaning_minutes()
        );
    }

    // 4. The schema-difficulty map (§1's visualization application):
    //    which parts of the schemas are hard to integrate.
    println!(
        "{}",
        efes::report::render_difficulty_map(&reports)
    );

    // 5. The cost-benefit curve (§7's outlook): more effort buys a
    //    higher-quality — more data-retaining — result.
    let curve = efes::cost_benefit_curve(&scenario, |q| {
        Estimator::with_default_modules(EstimationConfig::for_quality(q))
    })
    .expect("curve");
    println!("cost-benefit curve:");
    for p in &curve {
        println!(
            "  {:12} {:>7.0} min → {:.1}% of source items retained ({} discarded)",
            p.quality.to_string(),
            p.effort_minutes,
            p.retained_fraction * 100.0,
            p.discarded_items
        );
    }

    // 6. Compare against the oracle ground truth (what performing the
    //    integration actually costs in this reproduction).
    println!(
        "\noracle-measured effort: low {:.0} min, high {:.0} min",
        ground_truth.measured_total(Quality::LowEffort),
        ground_truth.measured_total(Quality::HighQuality),
    );
}
