//! Progress monitoring (paper §1: estimations help with *"monitoring
//! the progress of the project"*): re-estimate after each cleaning step
//! and watch the remaining effort shrink.
//!
//! We take the running example, simulate the practitioner performing the
//! Table 5 repairs one by one on the actual source data, and re-run EFES
//! after each step.
//!
//! ```text
//! cargo run --release --example progress_monitoring
//! ```

use efes::prelude::*;
use efes::settings::Quality;
use efes_relational::{Database, IntegrationScenario, Value};
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn estimate(scenario: &IntegrationScenario) -> EffortEstimate {
    Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality))
        .estimate(scenario)
        .expect("estimate")
}

/// Step 1 — "Merge values (artist)": keep only the first credit per
/// artist list, as if the practitioner had concatenated/merged them.
fn merge_artist_credits(db: &mut Database) {
    let (credits_t, list_a) = db.schema.resolve("artist_credits", "artist_list").unwrap();
    let mut seen = std::collections::HashSet::new();
    let rows: Vec<Vec<Value>> = db
        .instance
        .table(credits_t)
        .rows()
        .iter()
        .filter(|r| seen.insert(r[list_a.0].clone()))
        .cloned()
        .collect();
    rebuild_table(db, "artist_credits", rows);
}

/// Step 2 — "Add tuples (records)" + "Add missing values (title)": give
/// every detached artist list an album, titled by the practitioner.
fn add_albums_for_detached_artists(db: &mut Database) {
    let (albums_t, _) = db.schema.resolve("albums", "id").unwrap();
    let (lists_t, _) = db.schema.resolve("artist_lists", "id").unwrap();
    let referenced: std::collections::HashSet<i64> = db
        .instance
        .table(albums_t)
        .rows()
        .iter()
        .filter_map(|r| r[2].as_int())
        .collect();
    let first_free_id = db.instance.table(albums_t).len() as i64;
    let detached: Vec<i64> = db
        .instance
        .table(lists_t)
        .rows()
        .iter()
        .filter_map(|r| r[0].as_int())
        .filter(|l| !referenced.contains(l))
        .collect();
    for (next_id, list) in (first_free_id..).zip(detached) {
        db.insert_by_name(
            "albums",
            vec![
                next_id.into(),
                format!("Anthology of List {list}").into(),
                list.into(),
            ],
        )
        .unwrap();
    }
}

/// Step 3 — "Convert values (length → duration)": rewrite millisecond
/// lengths as m:ss strings (the source column becomes target-shaped).
fn convert_lengths(db: &mut Database) {
    let (songs_t, length_a) = db.schema.resolve("songs", "length").unwrap();
    let rows: Vec<Vec<Value>> = db
        .instance
        .table(songs_t)
        .rows()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if let Some(ms) = r[length_a.0].as_int() {
                r[length_a.0] = efes_scenarios::names::millis_to_mss(ms).into();
            }
            r
        })
        .collect();
    // The column's type changes from integer to text: rebuild the table
    // under a text-typed schema by re-declaring the database.
    retype_songs_length_to_text(db, rows);
}

fn rebuild_table(db: &mut Database, table: &str, rows: Vec<Vec<Value>>) {
    let tid = db.schema.table_id(table).unwrap();
    let mut fresh = efes_relational::Instance::empty(&db.schema);
    for (t, data) in db.instance.iter_tables() {
        if t == tid {
            continue;
        }
        for row in data.rows() {
            fresh.insert(&db.schema, t, row.clone()).unwrap();
        }
    }
    for row in rows {
        fresh.insert(&db.schema, tid, row).unwrap();
    }
    db.instance = fresh;
}

fn retype_songs_length_to_text(db: &mut Database, rows: Vec<Vec<Value>>) {
    use efes_relational::{DataType, DatabaseBuilder};
    // Rebuild the whole database with songs.length as Text.
    let mut b = DatabaseBuilder::new("source")
        .table("albums", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("artist_list", DataType::Integer)
                .primary_key(&["id"])
                .not_null("name")
                .not_null("artist_list")
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        })
        .table("songs", |t| {
            t.attr("album", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("artist_list", DataType::Integer)
                .attr("length", DataType::Text)
                .not_null("name")
                .foreign_key(&["album"], "albums", &["id"])
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        })
        .table("artist_lists", |t| t.attr("id", DataType::Integer).primary_key(&["id"]))
        .table("artist_credits", |t| {
            t.attr("artist_list", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("artist", DataType::Text)
                .primary_key(&["artist_list", "position"])
                .not_null("artist")
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        });
    for table in ["albums", "artist_lists", "artist_credits"] {
        let tid = db.schema.table_id(table).unwrap();
        b = b.rows(table, db.instance.table(tid).rows().to_vec());
    }
    b = b.rows("songs", rows);
    *db = b.build().expect("retyped database");
}

fn main() {
    let (mut scenario, _) = music_example_scenario(&MusicExampleConfig::scaled_down());

    println!("Remaining estimated effort after each completed cleaning step\n");
    let report = |label: &str, scenario: &IntegrationScenario| {
        let e = estimate(scenario);
        println!(
            "  {:42} {:>7.0} min remaining ({} open tasks)",
            label,
            e.total_minutes(),
            e.tasks.len()
        );
        e.total_minutes()
    };

    let t0 = report("project start", &scenario);

    merge_artist_credits(&mut scenario.sources[0]);
    let t1 = report("after Merge values (artist)", &scenario);

    add_albums_for_detached_artists(&mut scenario.sources[0]);
    let t2 = report("after Add tuples + missing titles", &scenario);

    convert_lengths(&mut scenario.sources[0]);
    // The correspondences stay valid: same table/attr indices.
    scenario.check().expect("scenario still well-formed");
    let t3 = report("after Convert values (length)", &scenario);

    assert!(t1 < t0 && t2 < t1 && t3 < t2, "estimates must shrink");
    println!("\nOnly the (quality-independent) mapping work remains: {t3:.0} min.");
}
