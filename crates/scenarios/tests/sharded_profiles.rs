//! Differential gate for the sharded profile evaluator: for every
//! attribute of every database of every scenario in the standard
//! registry, the sharded monoid path (split, parallel scan, merge tree,
//! finalize) must be bit-identical (`==`, exact float bits) to the
//! fused single-pass kernel — for every designating reference type and
//! a spread of thread counts.
//!
//! The columnar-vs-multipass and fused-vs-multipass differentials live
//! with the profiling crate; this test closes the loop on the paper's
//! actual case-study data rather than synthetic columns.

use efes_exec::{ExecutionMode, RunContext};
use efes_profiling::{kernel, shard};
use efes_relational::{AttrId, Database, DataType, TableId};
use efes_scenarios::standard_registry;

fn check_database(db: &Database, run: &RunContext, label: &str) -> usize {
    let mut checked = 0;
    for (ti, table) in db.schema.tables().iter().enumerate() {
        let data = db.instance.table(TableId(ti));
        for ai in 0..table.arity() {
            let Some(col) = data.column_store(AttrId(ai)) else {
                continue;
            };
            for rt in [
                DataType::Text,
                DataType::Integer,
                DataType::Float,
                DataType::Boolean,
            ] {
                let fused = kernel::profile_column(col, rt);
                for threads in [1usize, 4] {
                    let mode = ExecutionMode::with_threads(threads);
                    let sharded = shard::profile_column_sharded_with(col, rt, run, mode)
                        .expect("unbounded run never cancels");
                    assert_eq!(
                        sharded, fused,
                        "sharded({threads}) != fused for {label}.{}.{} as {rt:?}",
                        table.name, table.attributes[ai].name,
                    );
                }
                checked += 1;
            }
        }
    }
    checked
}

#[test]
fn sharded_profiles_match_fused_across_the_standard_registry() {
    let registry = standard_registry();
    let run = RunContext::unbounded();
    let mut names: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    names.sort();
    assert!(!names.is_empty());
    let mut checked = 0;
    for name in names {
        let scenario = registry.get(&name).expect("registry name resolves");
        for source in &scenario.sources {
            checked += check_database(source, &run, &format!("{name}/src/{}", source.name()));
        }
        checked += check_database(&scenario.target, &run, &format!("{name}/target"));
    }
    assert!(checked > 100, "expected a broad sweep, checked {checked}");
}
