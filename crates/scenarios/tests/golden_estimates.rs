//! Golden-figure regression: the estimates for every scenario in the
//! standard registry are pinned, per quality level, down to exact float
//! bits. Any change to profiling, matching, conflict detection, planning
//! or pricing that shifts a number must consciously regenerate the
//! golden file:
//!
//! ```sh
//! EFES_GOLDEN_REGEN=1 cargo test -p efes-scenarios --test golden_estimates
//! ```
//!
//! and the resulting diff of `tests/golden/estimates.json` is the
//! reviewable record of what moved.

use efes::prelude::*;
use efes::settings::Quality;
use efes_scenarios::standard_registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// What we pin per (scenario, quality): the totals and the per-category
/// breakdown the paper's figures stack, plus the task count so pure
/// re-bucketing can't hide behind unchanged sums.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    total_minutes: f64,
    task_count: usize,
    by_category: BTreeMap<String, f64>,
}

type Golden = BTreeMap<String, BTreeMap<String, GoldenEntry>>;

fn quality_key(q: Quality) -> &'static str {
    match q {
        Quality::LowEffort => "low_effort",
        Quality::HighQuality => "high_quality",
    }
}

fn compute_golden() -> Golden {
    let registry = standard_registry();
    let mut out = Golden::new();
    let mut names: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    names.sort();
    for name in names {
        let scenario = registry.get(&name).expect("registry name resolves");
        let mut per_quality = BTreeMap::new();
        for quality in [Quality::LowEffort, Quality::HighQuality] {
            let estimate = Estimator::with_default_modules(EstimationConfig::for_quality(quality))
                .estimate(&scenario)
                .expect("standard scenarios estimate cleanly");
            let by_category = estimate
                .by_category()
                .into_iter()
                .map(|(c, m)| (format!("{c:?}"), m))
                .collect();
            per_quality.insert(
                quality_key(quality).to_owned(),
                GoldenEntry {
                    total_minutes: estimate.total_minutes(),
                    task_count: estimate.tasks.len(),
                    by_category,
                },
            );
        }
        out.insert(name, per_quality);
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("estimates.json")
}

#[test]
fn registry_estimates_match_golden_file() {
    let actual = compute_golden();
    let path = golden_path();
    if std::env::var_os("EFES_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, serde_json::to_string_pretty(&actual).unwrap()).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with EFES_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    let expected: Golden = serde_json::from_str(&raw).expect("golden file parses");
    // Compare scenario-by-scenario for reviewable failures.
    let expected_names: Vec<&String> = expected.keys().collect();
    let actual_names: Vec<&String> = actual.keys().collect();
    assert_eq!(expected_names, actual_names, "registry membership changed");
    for (name, expected_qualities) in &expected {
        let actual_qualities = &actual[name];
        assert_eq!(
            expected_qualities, actual_qualities,
            "estimate drifted for `{name}` — if intentional, regenerate with EFES_GOLDEN_REGEN=1"
        );
    }
}

#[test]
fn golden_file_covers_all_ten_scenarios_at_both_qualities() {
    if std::env::var_os("EFES_GOLDEN_REGEN").is_some() {
        // The regen run rewrites the file concurrently; coverage is
        // checked on the next ordinary run.
        return;
    }
    let path = golden_path();
    let raw = std::fs::read_to_string(&path).expect("golden file exists");
    let golden: Golden = serde_json::from_str(&raw).unwrap();
    assert_eq!(golden.len(), 10, "one entry per registry scenario");
    for (name, per_quality) in &golden {
        assert_eq!(per_quality.len(), 2, "both qualities pinned for {name}");
        for (quality, entry) in per_quality {
            assert!(
                entry.total_minutes.is_finite() && entry.total_minutes >= 0.0,
                "{name}/{quality} total is sane"
            );
            let category_sum: f64 = entry.by_category.values().sum();
            assert!(
                (category_sum - entry.total_minutes).abs() <= 1e-9 * entry.total_minutes.max(1.0),
                "{name}/{quality}: categories must sum to the total"
            );
        }
    }
}
