//! The §6.2 evaluation: run EFES and the attribute-counting baseline on
//! the eight scenarios with cross-validated calibration, and compute the
//! Figure 6/7 series and RMSE numbers.

use crate::amalgam::{amalgam_scenarios, AmalgamConfig};
use crate::discography::{discography_scenarios, DiscographyConfig};
use crate::ground_truth::GroundTruth;
use efes::baseline::AttributeCountingEstimator;
use efes::calibration::{calibrate_scales, rmse, CalibratedScales, ScenarioOutcome};
use efes::prelude::*;
use efes::settings::Quality;
use efes::task::TaskCategory;
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bar group of Figure 6/7: a scenario at a quality level, with the
/// three estimates side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name, e.g. `s1-s2`.
    pub scenario: String,
    /// Quality level of this run.
    pub quality: Quality,
    /// EFES estimate per category, after calibration.
    pub efes: BTreeMap<TaskCategory, f64>,
    /// EFES estimate per category before calibration (kept for
    /// diagnosis).
    pub efes_uncalibrated: BTreeMap<TaskCategory, f64>,
    /// Ground-truth (oracle-measured) minutes per category.
    pub measured: BTreeMap<TaskCategory, f64>,
    /// Counting-baseline mapping minutes (calibrated).
    pub counting_mapping: f64,
    /// Counting-baseline cleaning minutes (calibrated).
    pub counting_cleaning: f64,
}

impl ScenarioResult {
    /// Display label, e.g. `s1-s2 (high qual.)`.
    pub fn label(&self) -> String {
        let q = match self.quality {
            Quality::LowEffort => "low eff.",
            Quality::HighQuality => "high qual.",
        };
        format!("{} ({})", self.scenario, q)
    }

    /// EFES total.
    pub fn efes_total(&self) -> f64 {
        self.efes.values().sum()
    }

    /// Measured total.
    pub fn measured_total(&self) -> f64 {
        self.measured.values().sum()
    }

    /// Counting total.
    pub fn counting_total(&self) -> f64 {
        self.counting_mapping + self.counting_cleaning
    }
}

/// One domain's evaluation (a full Figure 6 or Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainEvaluation {
    /// Domain name (`bibliographic` / `music`).
    pub domain: String,
    /// Eight bar groups: four scenarios × two qualities.
    pub results: Vec<ScenarioResult>,
    /// Root-mean-square relative error of EFES.
    pub rmse_efes: f64,
    /// Root-mean-square relative error of the counting baseline.
    pub rmse_counting: f64,
}

/// An uncalibrated run of one scenario at one quality.
#[derive(Debug, Clone)]
struct RawOutcome {
    scenario: String,
    quality: Quality,
    estimated: BTreeMap<TaskCategory, f64>,
    measured: BTreeMap<TaskCategory, f64>,
    attributes: usize,
}

/// Run EFES (uncalibrated, Table 9 functions) and the oracle on every
/// scenario × quality of a domain.
fn raw_outcomes(scenarios: &[(IntegrationScenario, GroundTruth)]) -> Vec<RawOutcome> {
    let mut out = Vec::new();
    for (scenario, gt) in scenarios {
        for quality in [Quality::LowEffort, Quality::HighQuality] {
            let estimator =
                Estimator::with_default_modules(EstimationConfig::for_quality(quality));
            let estimate = estimator
                .estimate(scenario)
                .unwrap_or_else(|e| panic!("estimating `{}`: {e}", scenario.name));
            out.push(RawOutcome {
                scenario: scenario.name.clone(),
                quality,
                estimated: estimate.by_category(),
                measured: gt.measured(quality),
                attributes: AttributeCountingEstimator::counted_attributes(scenario),
            });
        }
    }
    out
}

fn to_training(outcomes: &[RawOutcome]) -> Vec<ScenarioOutcome> {
    outcomes
        .iter()
        .map(|o| ScenarioOutcome {
            name: o.scenario.clone(),
            estimated: o.estimated.clone(),
            measured: o.measured.clone(),
        })
        .collect()
}

/// Fit the counting baseline's per-attribute minute rate on training
/// outcomes by least squares: `rate = Σ mᵢ·aᵢ / Σ aᵢ²`.
fn calibrate_counting(training: &[RawOutcome]) -> AttributeCountingEstimator {
    let num: f64 = training
        .iter()
        .map(|o| o.measured.values().sum::<f64>() * o.attributes as f64)
        .sum();
    let den: f64 = training
        .iter()
        .map(|o| (o.attributes as f64).powi(2))
        .sum();
    let rate = if den > 0.0 { num / den } else { 0.0 };
    AttributeCountingEstimator::with_total_rate(rate)
}

/// Evaluate one domain with models calibrated on the *other* domain's
/// outcomes (the paper's cross-validation).
pub fn evaluate_domain(
    domain: &str,
    test: &[(IntegrationScenario, GroundTruth)],
    train: &[(IntegrationScenario, GroundTruth)],
) -> DomainEvaluation {
    let train_raw = raw_outcomes(train);
    let test_raw = raw_outcomes(test);
    let scales: CalibratedScales = calibrate_scales(&to_training(&train_raw));
    let counting = calibrate_counting(&train_raw);

    let mut results = Vec::new();
    for o in &test_raw {
        let efes: BTreeMap<TaskCategory, f64> = o
            .estimated
            .iter()
            .map(|(c, v)| (*c, v * scales.scales.get(c).copied().unwrap_or(1.0)))
            .collect();
        let baseline = counting.estimate_attributes(o.attributes);
        results.push(ScenarioResult {
            scenario: o.scenario.clone(),
            quality: o.quality,
            efes,
            efes_uncalibrated: o.estimated.clone(),
            measured: o.measured.clone(),
            counting_mapping: baseline.mapping_minutes,
            counting_cleaning: baseline.cleaning_minutes,
        });
    }

    let efes_pairs: Vec<(f64, f64)> = results
        .iter()
        .map(|r| (r.measured_total(), r.efes_total()))
        .collect();
    let counting_pairs: Vec<(f64, f64)> = results
        .iter()
        .map(|r| (r.measured_total(), r.counting_total()))
        .collect();
    DomainEvaluation {
        domain: domain.to_owned(),
        results,
        rmse_efes: rmse(&efes_pairs),
        rmse_counting: rmse(&counting_pairs),
    }
}

/// The complete §6.2 evaluation: both domains, cross-validated both
/// ways, plus the overall RMSEs over all eight scenarios × two
/// qualities.
pub fn full_evaluation(
    amalgam_cfg: &AmalgamConfig,
    disco_cfg: &DiscographyConfig,
) -> (DomainEvaluation, DomainEvaluation, f64, f64) {
    let bib = amalgam_scenarios(amalgam_cfg);
    let music = discography_scenarios(disco_cfg);
    // Figure 6: bibliographic, calibrated on music; Figure 7: vice versa.
    let fig6 = evaluate_domain("bibliographic", &bib, &music);
    let fig7 = evaluate_domain("music", &music, &bib);
    let mut efes_pairs = Vec::new();
    let mut counting_pairs = Vec::new();
    for r in fig6.results.iter().chain(fig7.results.iter()) {
        efes_pairs.push((r.measured_total(), r.efes_total()));
        counting_pairs.push((r.measured_total(), r.counting_total()));
    }
    let overall_efes = rmse(&efes_pairs);
    let overall_counting = rmse(&counting_pairs);
    (fig6, fig7, overall_efes, overall_counting)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_eval() -> (DomainEvaluation, DomainEvaluation, f64, f64) {
        // Evaluation sizes, not toy sizes: the paper's effect (data
        // problems dominating schema size) needs realistic instance
        // volumes. Still fast (< 1 s on the default configs).
        full_evaluation(&AmalgamConfig::default(), &DiscographyConfig::default())
    }

    #[test]
    fn efes_beats_counting_per_domain_and_overall() {
        let (fig6, fig7, overall_efes, overall_counting) = small_eval();
        assert!(
            fig6.rmse_efes < fig6.rmse_counting,
            "bibliographic: EFES {} vs counting {}",
            fig6.rmse_efes,
            fig6.rmse_counting
        );
        assert!(
            fig7.rmse_efes < fig7.rmse_counting,
            "music: EFES {} vs counting {}",
            fig7.rmse_efes,
            fig7.rmse_counting
        );
        assert!(overall_efes < overall_counting);
    }

    #[test]
    fn results_cover_four_scenarios_times_two_qualities() {
        let (fig6, fig7, _, _) = small_eval();
        assert_eq!(fig6.results.len(), 8);
        assert_eq!(fig7.results.len(), 8);
        let names: Vec<&str> = fig6.results.iter().map(|r| r.scenario.as_str()).collect();
        assert!(names.contains(&"s4-s4"));
        let names: Vec<&str> = fig7.results.iter().map(|r| r.scenario.as_str()).collect();
        assert!(names.contains(&"d1-d2"));
    }

    #[test]
    fn identical_schema_scenarios_expose_countings_blind_spot() {
        // Paper §6.2 on s4-s4: "source and target database have the same
        // schema and similar data, so there are no heterogeneities to
        // deal with. While we can detect this, the counting approach
        // estimates considerable cleaning effort."
        let (fig6, fig7, _, _) = small_eval();
        for (eval, name) in [(&fig6, "s4-s4"), (&fig7, "d1-d2")] {
            for r in eval.results.iter().filter(|r| r.scenario == name) {
                let efes_cleaning: f64 = r
                    .efes
                    .iter()
                    .filter(|(c, _)| **c != TaskCategory::Mapping)
                    .map(|(_, v)| v)
                    .sum();
                assert_eq!(efes_cleaning, 0.0, "{name}: EFES sees no cleaning");
                assert!(
                    r.counting_cleaning > 0.0,
                    "{name}: counting still predicts cleaning"
                );
            }
        }
    }

    #[test]
    fn high_quality_measures_exceed_low_effort() {
        let (fig6, _, _, _) = small_eval();
        for pair in fig6.results.chunks(2) {
            let low = &pair[0];
            let high = &pair[1];
            assert_eq!(low.scenario, high.scenario);
            assert!(low.measured_total() <= high.measured_total());
        }
    }

    #[test]
    fn counting_is_constant_across_qualities() {
        let (fig6, _, _, _) = small_eval();
        for pair in fig6.results.chunks(2) {
            assert_eq!(pair[0].counting_total(), pair[1].counting_total());
        }
    }
}

/// One row of the ablation study: a module subset and its cross-validated
/// overall RMSE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// The module subset, e.g. `mapping+structure`.
    pub configuration: String,
    /// Overall RMSE across both domains, 16 scenario runs, calibrated
    /// cross-domain exactly like the full evaluation.
    pub rmse: f64,
}

/// Run one scenario set through a module subset (uncalibrated).
fn raw_outcomes_with(
    scenarios: &[(IntegrationScenario, GroundTruth)],
    selection: efes::ModuleSelection,
) -> Vec<RawOutcome> {
    let mut out = Vec::new();
    for (scenario, gt) in scenarios {
        for quality in [Quality::LowEffort, Quality::HighQuality] {
            let estimator = Estimator::with_selected_modules(
                EstimationConfig::for_quality(quality),
                selection,
            );
            let estimate = estimator
                .estimate(scenario)
                .unwrap_or_else(|e| panic!("estimating `{}`: {e}", scenario.name));
            out.push(RawOutcome {
                scenario: scenario.name.clone(),
                quality,
                estimated: estimate.by_category(),
                measured: gt.measured(quality),
                attributes: AttributeCountingEstimator::counted_attributes(scenario),
            });
        }
    }
    out
}

fn rmse_for_selection(
    bib: &[(IntegrationScenario, GroundTruth)],
    music: &[(IntegrationScenario, GroundTruth)],
    selection: efes::ModuleSelection,
) -> f64 {
    let mut pairs = Vec::new();
    for (test, train) in [(bib, music), (music, bib)] {
        let train_raw = raw_outcomes_with(train, selection);
        let test_raw = raw_outcomes_with(test, selection);
        let scales = calibrate_scales(&to_training(&train_raw));
        for o in &test_raw {
            let calibrated: f64 = o
                .estimated
                .iter()
                .map(|(c, v)| v * scales.scales.get(c).copied().unwrap_or(1.0))
                .sum();
            pairs.push((o.measured.values().sum::<f64>(), calibrated));
        }
    }
    rmse(&pairs)
}

/// The ablation study promised in DESIGN.md: how much estimation
/// accuracy each module contributes, measured as the cross-validated
/// overall RMSE of every module subset containing the mapping module
/// (which anchors the estimate), plus the counting baseline as the
/// floor.
///
/// Reproduction finding (recorded in EXPERIMENTS.md): the structure
/// module carries most of the accuracy; the value module's Table 9
/// `Convert values` function (flat below 120 distinct values,
/// per-distinct above) transfers poorly across domains under
/// cross-validated calibration — the same volatility that made the
/// paper's authors price their own Table 8 conversion at 15 minutes
/// instead of the formula's 65,231.
pub fn ablation_study(
    amalgam_cfg: &AmalgamConfig,
    disco_cfg: &DiscographyConfig,
) -> Vec<AblationRow> {
    use efes::ModuleSelection;
    let bib = amalgam_scenarios(amalgam_cfg);
    let music = discography_scenarios(disco_cfg);
    let selections = [
        ModuleSelection::all(),
        ModuleSelection {
            mapping: true,
            structure: true,
            values: false,
        },
        ModuleSelection {
            mapping: true,
            structure: false,
            values: true,
        },
        ModuleSelection::mapping_only(),
    ];
    let mut rows: Vec<AblationRow> = selections
        .into_iter()
        .map(|sel| AblationRow {
            configuration: sel.label(),
            rmse: rmse_for_selection(&bib, &music, sel),
        })
        .collect();
    // The counting baseline as reference, calibrated the same way.
    let (_, _, _, counting_rmse) = full_evaluation(amalgam_cfg, disco_cfg);
    rows.push(AblationRow {
        configuration: "attribute counting (baseline)".into(),
        rmse: counting_rmse,
    });
    rows
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn ablation_orderings_hold() {
        let rows = ablation_study(&AmalgamConfig::default(), &DiscographyConfig::default());
        assert_eq!(rows.len(), 5);
        let rmse_of = |name: &str| {
            rows.iter()
                .find(|r| r.configuration == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .rmse
        };
        let full = rmse_of("mapping+structure+values");
        let no_values = rmse_of("mapping+structure");
        let no_structure = rmse_of("mapping+values");
        let mapping_only = rmse_of("mapping");
        let counting = rmse_of("attribute counting (baseline)");
        // Every EFES configuration beats the counting baseline.
        for (name, r) in [
            ("full", full),
            ("no_values", no_values),
            ("no_structure", no_structure),
            ("mapping_only", mapping_only),
        ] {
            assert!(r < counting, "{name} rmse {r:.3} vs counting {counting:.3}");
        }
        // The structure module contributes accuracy.
        assert!(no_values < mapping_only);
        assert!(full < no_structure);
        // Full beats the schema-only configuration.
        assert!(full < mapping_only);
    }
}
