//! The Amalgam bibliographic case study (paper §6.1).
//!
//! *"The first is the well-known Amalgam dataset from the bibliographic
//! domain, which comprises four schemas with between 5 and 27 relations,
//! each with 3 to 16 attributes."* The original dataset (University of
//! Toronto) is not redistributable here; [`schemas`] rebuilds four
//! structurally faithful bibliographic schemas at four normalisation
//! levels and [`scenarios`] assembles the paper's four evaluation
//! scenarios — `s1-s2`, `s1-s3`, `s3-s4` and the identical-schema
//! `s4-s4` — with seeded data and a recorded problem inventory.
//!
//! In this domain, value heterogeneity dominates the integration effort
//! (paper §6.2: the baseline *"has no concept of heterogeneity between
//! values in the datasets, but it is one of the main complexity drivers
//! in these integration scenarios"*).

pub mod schemas;
pub mod scenarios;

pub use scenarios::{amalgam_scenarios, AmalgamConfig};
