//! The four bibliographic schemas (s1…s4) with seeded data generators.
//!
//! Normalisation levels:
//!
//! * **s1** — fine-grained research-database style: 13 relations
//!   (persons, papers, writes, venues, publications, journals, articles,
//!   keywords, paper_keywords, institutions, affiliations, abstracts,
//!   citations);
//! * **s2** — flat digital-library export: 5 relations with concatenated
//!   author lists, textual years, spelled-out venues and `pp. n–m` page
//!   strings;
//! * **s3** — mid-level: 8 relations, `Last, First` author names,
//!   numeric page ranges split into two columns;
//! * **s4** — mid-level: 8 relations, `First Last` names, `n-m` page
//!   strings — the recurring target.

use crate::names;
use efes_relational::{DataType, Database, DatabaseBuilder, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-schema data sizes and injected-problem counts.
#[derive(Debug, Clone, Copy)]
pub struct BibSizes {
    /// Papers/publications in the instance.
    pub papers: usize,
    /// Persons/authors in the instance.
    pub persons: usize,
    /// Papers with two or more authors (s1 only; flat targets can hold
    /// one author value).
    pub multi_author_papers: usize,
    /// Papers with a NULL year (sources with nullable year).
    pub missing_years: usize,
    /// Persons who author no paper.
    pub detached_persons: usize,
}

impl BibSizes {
    /// The default instance sizes used by the evaluation.
    pub fn default_sizes() -> Self {
        BibSizes {
            papers: 220,
            persons: 160,
            multi_author_papers: 85,
            missing_years: 34,
            detached_persons: 41,
        }
    }

    /// Small sizes for fast unit tests.
    pub fn small() -> Self {
        BibSizes {
            papers: 30,
            persons: 22,
            multi_author_papers: 8,
            missing_years: 5,
            detached_persons: 6,
        }
    }
}

fn venue_acronym(i: usize) -> &'static str {
    names::VENUES[i % names::VENUES.len()].0
}

fn venue_full(i: usize) -> &'static str {
    names::VENUES[i % names::VENUES.len()].1
}

fn person_name(rng: &mut StdRng) -> (String, String) {
    names::full_name(rng)
}

fn pages(rng: &mut StdRng) -> (i64, i64) {
    let from = rng.gen_range(1i64..1200);
    (from, from + rng.gen_range(6i64..28))
}

fn year(rng: &mut StdRng) -> i64 {
    rng.gen_range(1988..2015)
}

/// s1 — the fine-grained schema. Author names are `First Last`; pages
/// are `from-to` strings; years are nullable integers.
pub fn build_s1(sizes: &BibSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("s1")
        .table("persons", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("papers", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("year", DataType::Integer)
                .primary_key(&["id"])
                .not_null("title")
        })
        .table("writes", |t| {
            t.attr("paper", DataType::Integer)
                .attr("person", DataType::Integer)
                .attr("position", DataType::Integer)
                .not_null("paper")
                .not_null("person")
                .foreign_key(&["paper"], "papers", &["id"])
                .foreign_key(&["person"], "persons", &["id"])
        })
        .table("venues", |t| {
            t.attr("id", DataType::Integer)
                .attr("acronym", DataType::Text)
                .attr("full_name", DataType::Text)
                .primary_key(&["id"])
                .not_null("acronym")
        })
        .table("publications", |t| {
            t.attr("paper", DataType::Integer)
                .attr("venue", DataType::Integer)
                .attr("pages", DataType::Text)
                .not_null("paper")
                .not_null("venue")
                .foreign_key(&["paper"], "papers", &["id"])
                .foreign_key(&["venue"], "venues", &["id"])
        })
        .table("journals", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("publisher", DataType::Text)
                .primary_key(&["id"])
        })
        .table("articles", |t| {
            t.attr("paper", DataType::Integer)
                .attr("journal", DataType::Integer)
                .attr("volume", DataType::Integer)
                .attr("number", DataType::Integer)
                .foreign_key(&["paper"], "papers", &["id"])
                .foreign_key(&["journal"], "journals", &["id"])
        })
        .table("keywords", |t| {
            t.attr("id", DataType::Integer)
                .attr("word", DataType::Text)
                .primary_key(&["id"])
                .not_null("word")
        })
        .table("paper_keywords", |t| {
            t.attr("paper", DataType::Integer)
                .attr("keyword", DataType::Integer)
                .foreign_key(&["paper"], "papers", &["id"])
                .foreign_key(&["keyword"], "keywords", &["id"])
        })
        .table("institutions", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("country", DataType::Text)
                .primary_key(&["id"])
        })
        .table("affiliations", |t| {
            t.attr("person", DataType::Integer)
                .attr("institution", DataType::Integer)
                .foreign_key(&["person"], "persons", &["id"])
                .foreign_key(&["institution"], "institutions", &["id"])
        })
        .table("abstracts", |t| {
            t.attr("paper", DataType::Integer)
                .attr("text", DataType::Text)
                .foreign_key(&["paper"], "papers", &["id"])
        })
        .table("citations", |t| {
            t.attr("citing", DataType::Integer)
                .attr("cited", DataType::Integer)
                .foreign_key(&["citing"], "papers", &["id"])
                .foreign_key(&["cited"], "papers", &["id"])
        })
        .build()
        .unwrap();

    for p in 0..sizes.persons {
        let (first, last) = person_name(rng);
        db.insert_by_name(
            "persons",
            vec![(p as i64).into(), format!("{first} {last}").into()],
        )
        .unwrap();
    }
    for v in 0..names::VENUES.len() {
        db.insert_by_name(
            "venues",
            vec![
                (v as i64).into(),
                venue_acronym(v).into(),
                venue_full(v).into(),
            ],
        )
        .unwrap();
    }
    for j in 0..6i64 {
        db.insert_by_name(
            "journals",
            vec![j.into(), names::title(rng).into(), names::title(rng).into()],
        )
        .unwrap();
    }
    for k in 0..30i64 {
        db.insert_by_name(
            "keywords",
            vec![
                k.into(),
                names::TITLE_WORDS[k as usize % names::TITLE_WORDS.len()].into(),
            ],
        )
        .unwrap();
    }
    for i in 0..12i64 {
        db.insert_by_name(
            "institutions",
            vec![
                i.into(),
                format!("{} Institute", names::title(rng)).into(),
                "N/A".into(),
            ],
        )
        .unwrap();
    }

    // Papers: the first `missing_years` have NULL years.
    for p in 0..sizes.papers {
        let y: Value = if p < sizes.missing_years {
            Value::Null
        } else {
            year(rng).into()
        };
        db.insert_by_name(
            "papers",
            vec![(p as i64).into(), names::title(rng).into(), y],
        )
        .unwrap();
        let (from, to) = pages(rng);
        db.insert_by_name(
            "publications",
            vec![
                (p as i64).into(),
                ((p % names::VENUES.len()) as i64).into(),
                format!("{from}-{to}").into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "paper_keywords",
            vec![(p as i64).into(), ((p % 30) as i64).into()],
        )
        .unwrap();
        if p % 3 == 0 {
            db.insert_by_name(
                "abstracts",
                vec![(p as i64).into(), names::title(rng).into()],
            )
            .unwrap();
        }
        if p > 0 {
            db.insert_by_name(
                "citations",
                vec![(p as i64).into(), ((p - 1) as i64).into()],
            )
            .unwrap();
        }
    }

    // Authorship: the last `detached_persons` persons author nothing;
    // the first `multi_author_papers` papers get two authors, the rest
    // exactly one, all drawn from the attached-person prefix.
    let attached = sizes.persons - sizes.detached_persons;
    assert!(attached >= 2, "need at least two attached persons");
    for p in 0..sizes.papers {
        let a1 = p % attached;
        db.insert_by_name(
            "writes",
            vec![(p as i64).into(), (a1 as i64).into(), 0.into()],
        )
        .unwrap();
        if p < sizes.multi_author_papers {
            let a2 = (p + 1) % attached;
            db.insert_by_name(
                "writes",
                vec![(p as i64).into(), (a2 as i64).into(), 1.into()],
            )
            .unwrap();
        }
    }
    for p in 0..attached.min(24) {
        db.insert_by_name(
            "affiliations",
            vec![(p as i64).into(), ((p % 12) as i64).into()],
        )
        .unwrap();
    }
    db
}

/// s2 — the flat schema: single author-list field (NN), textual years,
/// spelled-out venue names, `pp. n-m` page strings.
pub fn build_s2(sizes: &BibSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("s2")
        .table("publications", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("author_names", DataType::Text)
                .attr("year", DataType::Text)
                .attr("venue", DataType::Text)
                .attr("pages", DataType::Text)
                .primary_key(&["id"])
                .not_null("title")
                .not_null("author_names")
                .not_null("year")
        })
        .table("people", |t| {
            t.attr("id", DataType::Integer)
                .attr("full_name", DataType::Text)
                .attr("affiliation", DataType::Text)
                .primary_key(&["id"])
                .not_null("full_name")
        })
        .table("sources", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("kind", DataType::Text)
                .primary_key(&["id"])
        })
        .table("notes", |t| {
            t.attr("publication", DataType::Integer)
                .attr("note", DataType::Text)
                .foreign_key(&["publication"], "publications", &["id"])
        })
        .table("tags", |t| {
            t.attr("publication", DataType::Integer)
                .attr("tag", DataType::Text)
                .foreign_key(&["publication"], "publications", &["id"])
        })
        .build()
        .unwrap();

    for p in 0..sizes.papers {
        let (f, l) = person_name(rng);
        let (from, to) = pages(rng);
        db.insert_by_name(
            "publications",
            vec![
                (p as i64).into(),
                names::title(rng).into(),
                format!("{f} {l}").into(),
                year(rng).to_string().into(),
                venue_full(p).into(),
                format!("pp. {from}-{to}").into(),
            ],
        )
        .unwrap();
        if p % 4 == 0 {
            db.insert_by_name(
                "tags",
                vec![
                    (p as i64).into(),
                    names::TITLE_WORDS[p % names::TITLE_WORDS.len()].into(),
                ],
            )
            .unwrap();
        }
    }
    for p in 0..sizes.persons {
        let (f, l) = person_name(rng);
        db.insert_by_name(
            "people",
            vec![
                (p as i64).into(),
                format!("{f} {l}").into(),
                format!("{} Institute", names::title(rng)).into(),
            ],
        )
        .unwrap();
    }
    for s in 0..4i64 {
        db.insert_by_name(
            "sources",
            vec![s.into(), names::title(rng).into(), "library".into()],
        )
        .unwrap();
    }
    db
}

/// s3 — mid-level: `Last, First` names, split numeric page columns,
/// nullable years.
pub fn build_s3(sizes: &BibSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("s3")
        .table("authors", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("pubs", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("year", DataType::Integer)
                .attr("venue", DataType::Integer)
                .attr("pages_from", DataType::Integer)
                .attr("pages_to", DataType::Integer)
                .primary_key(&["id"])
                .not_null("title")
                .foreign_key(&["venue"], "venues3", &["id"])
        })
        .table("authorship", |t| {
            t.attr("pub", DataType::Integer)
                .attr("author", DataType::Integer)
                .attr("rank", DataType::Integer)
                .not_null("pub")
                .not_null("author")
                .foreign_key(&["pub"], "pubs", &["id"])
                .foreign_key(&["author"], "authors", &["id"])
        })
        .table("venues3", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("location", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("editors", |t| {
            t.attr("venue", DataType::Integer)
                .attr("author", DataType::Integer)
                .foreign_key(&["venue"], "venues3", &["id"])
                .foreign_key(&["author"], "authors", &["id"])
        })
        .table("series", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .primary_key(&["id"])
        })
        .table("pub_series", |t| {
            t.attr("pub", DataType::Integer)
                .attr("series", DataType::Integer)
                .foreign_key(&["pub"], "pubs", &["id"])
                .foreign_key(&["series"], "series", &["id"])
        })
        .table("reviews", |t| {
            t.attr("pub", DataType::Integer)
                .attr("score", DataType::Integer)
                .foreign_key(&["pub"], "pubs", &["id"])
        })
        .build()
        .unwrap();

    for a in 0..sizes.persons {
        let (f, l) = person_name(rng);
        db.insert_by_name(
            "authors",
            vec![(a as i64).into(), format!("{l}, {f}").into()],
        )
        .unwrap();
    }
    for v in 0..names::VENUES.len() {
        db.insert_by_name(
            "venues3",
            vec![(v as i64).into(), venue_full(v).into(), "N/A".into()],
        )
        .unwrap();
    }
    for s in 0..5i64 {
        db.insert_by_name("series", vec![s.into(), names::title(rng).into()])
            .unwrap();
    }
    let attached = sizes.persons - sizes.detached_persons;
    for p in 0..sizes.papers {
        let (from, to) = pages(rng);
        let y: Value = if p < sizes.missing_years {
            Value::Null
        } else {
            year(rng).into()
        };
        db.insert_by_name(
            "pubs",
            vec![
                (p as i64).into(),
                names::title(rng).into(),
                y,
                ((p % names::VENUES.len()) as i64).into(),
                from.into(),
                to.into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "authorship",
            vec![(p as i64).into(), ((p % attached) as i64).into(), 0.into()],
        )
        .unwrap();
        if p < sizes.multi_author_papers {
            db.insert_by_name(
                "authorship",
                vec![
                    (p as i64).into(),
                    (((p + 1) % attached) as i64).into(),
                    1.into(),
                ],
            )
            .unwrap();
        }
        if p % 5 == 0 {
            db.insert_by_name(
                "pub_series",
                vec![(p as i64).into(), ((p % 5) as i64).into()],
            )
            .unwrap();
            db.insert_by_name("reviews", vec![(p as i64).into(), ((p % 10) as i64).into()])
                .unwrap();
        }
    }
    for v in 0..4i64 {
        db.insert_by_name("editors", vec![v.into(), v.into()]).unwrap();
    }
    db
}

/// s4 — mid-level target: `First Last` names, `n-m` page strings,
/// non-null integer years, venue acronyms.
pub fn build_s4(sizes: &BibSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("s4")
        .table("researchers", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("publications4", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("year", DataType::Integer)
                .attr("venue", DataType::Integer)
                .attr("pages", DataType::Text)
                .primary_key(&["id"])
                .not_null("title")
                .not_null("year")
                .foreign_key(&["venue"], "venues4", &["id"])
        })
        .table("author_of", |t| {
            t.attr("publication", DataType::Integer)
                .attr("researcher", DataType::Integer)
                .attr("position", DataType::Integer)
                .not_null("publication")
                .not_null("researcher")
                .foreign_key(&["publication"], "publications4", &["id"])
                .foreign_key(&["researcher"], "researchers", &["id"])
        })
        .table("venues4", |t| {
            t.attr("id", DataType::Integer)
                .attr("acronym", DataType::Text)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("acronym")
        })
        .table("affil4", |t| {
            t.attr("researcher", DataType::Integer)
                .attr("institute", DataType::Text)
                .foreign_key(&["researcher"], "researchers", &["id"])
        })
        .table("projects", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
        })
        .table("pub_projects", |t| {
            t.attr("publication", DataType::Integer)
                .attr("project", DataType::Integer)
                .foreign_key(&["publication"], "publications4", &["id"])
                .foreign_key(&["project"], "projects", &["id"])
        })
        .table("keywords4", |t| {
            t.attr("publication", DataType::Integer)
                .attr("word", DataType::Text)
                .foreign_key(&["publication"], "publications4", &["id"])
        })
        .build()
        .unwrap();

    for a in 0..sizes.persons {
        let (f, l) = person_name(rng);
        db.insert_by_name(
            "researchers",
            vec![(a as i64).into(), format!("{f} {l}").into()],
        )
        .unwrap();
    }
    for v in 0..names::VENUES.len() {
        db.insert_by_name(
            "venues4",
            vec![
                (v as i64).into(),
                venue_acronym(v).into(),
                venue_full(v).into(),
            ],
        )
        .unwrap();
    }
    for pr in 0..5i64 {
        db.insert_by_name("projects", vec![pr.into(), names::title(rng).into()])
            .unwrap();
    }
    for p in 0..sizes.papers {
        let (from, to) = pages(rng);
        db.insert_by_name(
            "publications4",
            vec![
                (p as i64).into(),
                names::title(rng).into(),
                year(rng).into(),
                ((p % names::VENUES.len()) as i64).into(),
                format!("{from}-{to}").into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "author_of",
            vec![
                (p as i64).into(),
                ((p % sizes.persons) as i64).into(),
                0.into(),
            ],
        )
        .unwrap();
        if p % 4 == 0 {
            db.insert_by_name(
                "keywords4",
                vec![
                    (p as i64).into(),
                    names::TITLE_WORDS[p % names::TITLE_WORDS.len()].into(),
                ],
            )
            .unwrap();
            db.insert_by_name(
                "pub_projects",
                vec![(p as i64).into(), ((p % 5) as i64).into()],
            )
            .unwrap();
        }
    }
    for a in 0..sizes.persons.min(20) {
        db.insert_by_name(
            "affil4",
            vec![
                (a as i64).into(),
                format!("{} Institute", names::title(rng)).into(),
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn all_schemas_are_locally_valid() {
        let sizes = BibSizes::small();
        build_s1(&sizes, &mut rng()).assert_valid();
        build_s2(&sizes, &mut rng()).assert_valid();
        build_s3(&sizes, &mut rng()).assert_valid();
        build_s4(&sizes, &mut rng()).assert_valid();
    }

    #[test]
    fn schema_sizes_match_paper_ranges() {
        // "four schemas with between 5 and 27 relations, each with 3 to
        // 16 attributes" — our stand-ins sit inside that envelope.
        let sizes = BibSizes::small();
        for db in [
            build_s1(&sizes, &mut rng()),
            build_s2(&sizes, &mut rng()),
            build_s3(&sizes, &mut rng()),
            build_s4(&sizes, &mut rng()),
        ] {
            let tables = db.schema.table_count();
            assert!((5..=27).contains(&tables), "{}: {tables} tables", db.name());
            for t in db.schema.tables() {
                assert!((1..=16).contains(&t.arity()));
            }
        }
    }

    #[test]
    fn s1_injects_exact_problem_counts() {
        let sizes = BibSizes::small();
        let db = build_s1(&sizes, &mut rng());
        let (papers_t, year_a) = db.schema.resolve("papers", "year").unwrap();
        let nulls = db
            .instance
            .table(papers_t)
            .column(year_a)
            .filter(|v| v.is_null())
            .count();
        assert_eq!(nulls, sizes.missing_years);
        // Multi-author papers: count papers with 2 writes rows.
        let (writes_t, paper_a) = db.schema.resolve("writes", "paper").unwrap();
        let mut counts = std::collections::HashMap::new();
        for v in db.instance.table(writes_t).column(paper_a) {
            *counts.entry(v.to_value()).or_insert(0usize) += 1;
        }
        let multi = counts.values().filter(|c| **c >= 2).count();
        assert_eq!(multi, sizes.multi_author_papers);
    }

    #[test]
    fn s1_detached_persons_author_nothing() {
        let sizes = BibSizes::small();
        let db = build_s1(&sizes, &mut rng());
        let (writes_t, person_a) = db.schema.resolve("writes", "person").unwrap();
        let authored: std::collections::HashSet<i64> = db
            .instance
            .table(writes_t)
            .column(person_a)
            .filter_map(|v| v.as_int())
            .collect();
        let attached = sizes.persons - sizes.detached_persons;
        for p in attached..sizes.persons {
            assert!(!authored.contains(&(p as i64)), "person {p} should be detached");
        }
        assert_eq!(authored.len(), attached.min(sizes.papers + 1));
    }

    #[test]
    fn formats_differ_between_schemas() {
        let sizes = BibSizes::small();
        let s2 = build_s2(&sizes, &mut rng());
        let (t, a) = s2.schema.resolve("publications", "pages").unwrap();
        let sample = s2.instance.table(t).rows()[0][a.0].render();
        assert!(sample.starts_with("pp. "), "{sample}");
        let s3 = build_s3(&sizes, &mut rng());
        let (t, a) = s3.schema.resolve("authors", "name").unwrap();
        let sample = s3.instance.table(t).rows()[0][a.0].render();
        assert!(sample.contains(", "), "{sample}");
    }
}
