//! The four bibliographic evaluation scenarios: s1-s2, s1-s3, s3-s4,
//! s4-s4 — *"Within each domain, we included a data integration scenario
//! with identical source and target schema and three other, randomly
//! selected scenarios with different schemas."* (§6.1)

use super::schemas::{build_s1, build_s2, build_s3, build_s4, BibSizes};
use crate::ground_truth::{ConnectionWork, ConversionWork, GroundTruth, OracleCostModel, ProblemInventory};
use efes::modules::MappingModule;
use efes_relational::{CorrespondenceBuilder, Database, IntegrationScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the bibliographic case study.
#[derive(Debug, Clone)]
pub struct AmalgamConfig {
    /// Instance sizes / injected problem counts.
    pub sizes: BibSizes,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for AmalgamConfig {
    fn default() -> Self {
        AmalgamConfig {
            sizes: BibSizes::default_sizes(),
            seed: 0xB1B,
        }
    }
}

impl AmalgamConfig {
    /// Small sizes for fast tests.
    pub fn small() -> Self {
        AmalgamConfig {
            sizes: BibSizes::small(),
            seed: 0xB1B,
        }
    }
}

/// Count `(values, distinct)` of a named source column — exact
/// conversion-work parameters for the ground-truth inventory.
fn column_counts(db: &Database, table: &str, attr: &str) -> (u64, u64) {
    let (t, a) = db.schema.resolve(table, attr).expect("known column");
    let values = db
        .instance
        .table(t)
        .column(a)
        .filter(|v| !v.is_null())
        .count() as u64;
    let distinct = db.instance.distinct_count(t, a) as u64;
    (values, distinct)
}

/// Mapping connections as ground truth: these are structural facts of
/// the scenario (which tables feed which), counted the same way a
/// practitioner would enumerate the queries to write.
fn connection_work(scenario: &IntegrationScenario) -> Vec<ConnectionWork> {
    MappingModule::connections(scenario)
        .into_iter()
        .map(|c| ConnectionWork {
            target_table: scenario.target.schema.table(c.target_table).name.clone(),
            tables: c.source_tables.len() as u64,
            attributes: c.attributes as u64,
            primary_key: c.primary_key,
            foreign_keys: c.foreign_keys as u64,
        })
        .collect()
}

/// s1 → s2: normalising-to-flat. Multi-author papers collide with the
/// single `author_names` field, detached persons need publication
/// tuples, NULL years violate the target's NOT NULL, and venue/pages
/// formats need conversion.
fn s1_s2(cfg: &AmalgamConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_s1(sizes, &mut StdRng::seed_from_u64(cfg.seed));
    let target = build_s2(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xFF));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("papers", "publications")
        .unwrap()
        .attr("papers", "title", "publications", "title")
        .unwrap()
        .attr("papers", "year", "publications", "year")
        .unwrap()
        .attr("persons", "name", "publications", "author_names")
        .unwrap()
        .attr("venues", "acronym", "publications", "venue")
        .unwrap()
        .attr("publications", "pages", "publications", "pages")
        .unwrap()
        .table("persons", "people")
        .unwrap()
        .attr("persons", "name", "people", "full_name")
        .unwrap()
        .finish();
    let (venue_values, venue_distinct) = column_counts(&source, "venues", "acronym");
    let (pages_values, pages_distinct) = column_counts(&source, "publications", "pages");
    let scenario =
        IntegrationScenario::single_source("s1-s2", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        multi_value_conflicts: vec![(
            "publications.author_names".into(),
            sizes.multi_author_papers as u64,
        )],
        detached_values: vec![(
            "publications.author_names".into(),
            sizes.detached_persons as u64,
        )],
        missing_values: vec![
            ("publications.year".into(), sizes.missing_years as u64),
            // Filling the tuples created for detached authors.
            (
                "publications.title (new tuples)".into(),
                sizes.detached_persons as u64,
            ),
            (
                "publications.year (new tuples)".into(),
                sizes.detached_persons as u64,
            ),
        ],
        dangling_refs: vec![],
        conversions: vec![
            ConversionWork {
                location: "venues.acronym → publications.venue".into(),
                values: venue_values,
                distinct: venue_distinct,
                critical: false,
            },
            ConversionWork {
                location: "publications.pages → publications.pages".into(),
                values: pages_values,
                distinct: pages_distinct,
                critical: false,
            },
        ],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// s1 → s3: normalised-to-normalised. No structural conflicts (s3 keeps
/// the M:N authorship), but name formats diverge and the textual page
/// ranges cannot be cast into s3's integer page columns (critical).
fn s1_s3(cfg: &AmalgamConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_s1(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x13));
    let target = build_s3(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x31));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("papers", "pubs")
        .unwrap()
        .attr("papers", "title", "pubs", "title")
        .unwrap()
        .attr("papers", "year", "pubs", "year")
        .unwrap()
        .attr("publications", "pages", "pubs", "pages_from")
        .unwrap()
        .table("persons", "authors")
        .unwrap()
        .attr("persons", "name", "authors", "name")
        .unwrap()
        .table("writes", "authorship")
        .unwrap()
        .attr("venues", "full_name", "venues3", "name")
        .unwrap()
        .table("venues", "venues3")
        .unwrap()
        .finish();
    let (name_values, name_distinct) = column_counts(&source, "persons", "name");
    let (pages_values, pages_distinct) = column_counts(&source, "publications", "pages");
    let scenario =
        IntegrationScenario::single_source("s1-s3", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        multi_value_conflicts: vec![],
        detached_values: vec![],
        missing_values: vec![],
        dangling_refs: vec![],
        conversions: vec![
            ConversionWork {
                location: "persons.name → authors.name".into(),
                values: name_values,
                distinct: name_distinct,
                critical: false,
            },
            ConversionWork {
                location: "publications.pages → pubs.pages_from".into(),
                values: pages_values,
                distinct: pages_distinct,
                critical: true,
            },
        ],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// s3 → s4: mid-to-mid. Name and page formats diverge, venue names must
/// shrink to acronyms, and s3's NULL years hit s4's NOT NULL.
fn s3_s4(cfg: &AmalgamConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_s3(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x34));
    let target = build_s4(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x43));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("pubs", "publications4")
        .unwrap()
        .attr("pubs", "title", "publications4", "title")
        .unwrap()
        .attr("pubs", "year", "publications4", "year")
        .unwrap()
        .attr("pubs", "pages_from", "publications4", "pages")
        .unwrap()
        .table("authors", "researchers")
        .unwrap()
        .attr("authors", "name", "researchers", "name")
        .unwrap()
        .table("authorship", "author_of")
        .unwrap()
        .table("venues3", "venues4")
        .unwrap()
        .attr("venues3", "name", "venues4", "acronym")
        .unwrap()
        .finish();
    let (name_values, name_distinct) = column_counts(&source, "authors", "name");
    let (pages_values, pages_distinct) = column_counts(&source, "pubs", "pages_from");
    let (venue_values, venue_distinct) = column_counts(&source, "venues3", "name");
    let scenario =
        IntegrationScenario::single_source("s3-s4", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        multi_value_conflicts: vec![],
        detached_values: vec![],
        missing_values: vec![(
            "publications4.year".into(),
            sizes.missing_years as u64,
        )],
        dangling_refs: vec![],
        conversions: vec![
            ConversionWork {
                location: "authors.name → researchers.name".into(),
                values: name_values,
                distinct: name_distinct,
                critical: false,
            },
            ConversionWork {
                location: "pubs.pages_from → publications4.pages".into(),
                values: pages_values,
                distinct: pages_distinct,
                critical: false,
            },
            ConversionWork {
                location: "venues3.name → venues4.acronym".into(),
                values: venue_values,
                distinct: venue_distinct,
                critical: false,
            },
        ],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// s4 → s4: identical schemas, clean compatible data — the control
/// scenario where EFES must predict (and the ground truth measures)
/// essentially pure mapping effort.
fn s4_s4(cfg: &AmalgamConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_s4(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x44));
    let mut target = build_s4(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x45));
    target.schema.name = "s4'".into();
    let mut cb = CorrespondenceBuilder::new(&source, &target);
    for table in ["researchers", "publications4", "author_of", "venues4", "affil4", "projects", "pub_projects", "keywords4"] {
        cb = cb.table(table, table).unwrap();
    }
    for (table, attr) in [
        ("researchers", "name"),
        ("publications4", "title"),
        ("publications4", "year"),
        ("publications4", "pages"),
        ("venues4", "acronym"),
        ("venues4", "name"),
        ("affil4", "institute"),
        ("projects", "name"),
        ("keywords4", "word"),
    ] {
        cb = cb.attr(table, attr, table, attr).unwrap();
    }
    let correspondences = cb.finish();
    let scenario =
        IntegrationScenario::single_source("s4-s4", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        ..ProblemInventory::default()
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// All four bibliographic scenarios, in the paper's order.
pub fn amalgam_scenarios(cfg: &AmalgamConfig) -> Vec<(IntegrationScenario, GroundTruth)> {
    vec![s1_s2(cfg), s1_s3(cfg), s3_s4(cfg), s4_s4(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes::framework::EstimationModule;
    use efes::modules::{StructureModule, ValueModule};
    use efes::prelude::*;
    use efes::settings::Quality;

    fn scenarios() -> Vec<(IntegrationScenario, GroundTruth)> {
        amalgam_scenarios(&AmalgamConfig::small())
    }

    #[test]
    fn all_scenarios_have_valid_sources() {
        for (s, _) in scenarios() {
            for (_, db) in s.iter_sources() {
                db.assert_valid();
            }
            s.target.assert_valid();
        }
    }

    #[test]
    fn s1_s2_structure_conflicts_match_injection() {
        let (s, gt) = &scenarios()[0];
        let m = StructureModule::default();
        let report = m.assess(s).unwrap();
        let sizes = BibSizes::small();
        let multi = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Multiple attribute values"))
            .expect("multi-author conflict");
        assert_eq!(multi.int("too-many"), Some(sizes.multi_author_papers as u64));
        let detached = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Value w/o enclosing tuple"))
            .expect("detached persons");
        assert_eq!(
            detached.int("violations"),
            Some(sizes.detached_persons as u64)
        );
        assert!(!gt.inventory.is_clean());
    }

    #[test]
    fn s1_s2_detects_format_conversions() {
        let (s, _) = &scenarios()[0];
        let m = ValueModule::default();
        let report = m.assess(s).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.location.contains("pages")),
            "pages format mismatch must be flagged: {report:?}"
        );
        assert!(report
            .findings
            .iter()
            .any(|f| f.location.contains("venue")));
    }

    #[test]
    fn s1_s3_flags_critical_pages_conversion() {
        let (s, gt) = &scenarios()[1];
        let m = ValueModule::default();
        let report = m.assess(s).unwrap();
        let critical = report
            .findings
            .iter()
            .find(|f| f.text("heterogeneity") == Some("different-critical"))
            .expect("text pages cannot become integers");
        assert!(critical.location.contains("pages_from"));
        assert!(gt.inventory.conversions.iter().any(|c| c.critical));
        // Name-format mismatch is uncritical but present.
        assert!(report
            .findings
            .iter()
            .any(|f| f.location.contains("authors.name")));
    }

    #[test]
    fn s4_s4_is_clean() {
        let (s, gt) = &scenarios()[3];
        assert!(gt.inventory.is_clean());
        let est = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        let e = est.estimate(s).unwrap();
        assert_eq!(
            e.cleaning_minutes(),
            0.0,
            "identical schemas must need no cleaning: {:#?}",
            e.tasks
        );
        assert!(e.mapping_minutes() > 0.0);
    }

    #[test]
    fn measured_effort_varies_across_scenarios() {
        // At evaluation sizes the dirty flattening scenario costs more
        // than the identical-schema control (at toy sizes the control's
        // larger mapping surface can dominate, so this uses defaults).
        let all = amalgam_scenarios(&AmalgamConfig::default());
        let totals: Vec<f64> = all
            .iter()
            .map(|(_, gt)| gt.measured_total(Quality::HighQuality))
            .collect();
        assert!(totals[0] > totals[3], "{totals:?}");
        // And cleaning is zero only for the control.
        use efes::task::TaskCategory;
        let cleaning = |gt: &GroundTruth| {
            gt.measured(Quality::HighQuality)
                .iter()
                .filter(|(c, _)| **c != TaskCategory::Mapping)
                .map(|(_, v)| *v)
                .sum::<f64>()
        };
        assert!(cleaning(&all[0].1) > 0.0);
        assert_eq!(cleaning(&all[3].1), 0.0);
    }
}
