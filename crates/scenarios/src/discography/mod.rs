//! The Music discographic case study (paper §6.1).
//!
//! *"The second is a new case study we created with a set of three
//! datasets with discographic data. In those datasets, there are three
//! schemas with between 2 and 56 relations and between 2 and 19
//! attributes each."* The original FreeDB/Discogs/MusicBrainz-derived
//! dumps are not redistributable; [`schemas`] provides three structurally
//! faithful stand-ins — **f** (flat, 2 relations), **m** (medium) and
//! **d** (deeply normalised) — and [`scenarios`] assembles the paper's
//! four evaluation scenarios `f1-m2`, `m1-d2`, `m1-f2` and the
//! identical-schema `d1-d2`.
//!
//! In this domain, mapping dominates (paper §6.2: *"there are fewer
//! problems at the data level and the effort is dominated by the
//! mapping, which strongly depends on the schema"*).

pub mod schemas;
pub mod scenarios;

pub use scenarios::{discography_scenarios, DiscographyConfig};
