//! The three discographic schemas with seeded data generators.
//!
//! * **f** — FreeDB-style flat dump: 2 relations (`discs`,
//!   `disc_tracks`), track lengths in **seconds**;
//! * **m** — a medium normalisation: artists/releases/tracks/labels +
//!   genre link table, track lengths in **milliseconds**;
//! * **d** — MusicBrainz-style deep normalisation: 16 relations with
//!   artist credits, release groups, mediums, recordings, works.

use crate::names;
use efes_relational::{DataType, Database, DatabaseBuilder, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Data sizes and injected problem counts for the music domain.
#[derive(Debug, Clone, Copy)]
pub struct MusicSizes {
    /// Releases/discs in the instance.
    pub releases: usize,
    /// Tracks per release.
    pub tracks_per_release: usize,
    /// Artists in the instance.
    pub artists: usize,
    /// Releases carrying two or more genres (m only; conflicts when
    /// flattened into f).
    pub multi_genre_releases: usize,
    /// Artists without any release (m only; detached when flattened).
    pub detached_artists: usize,
    /// Discs/releases with a NULL genre (f: nullable genre; violates m's
    /// NOT NULL genre on integration).
    pub missing_genres: usize,
}

impl MusicSizes {
    /// Default evaluation sizes.
    pub fn default_sizes() -> Self {
        MusicSizes {
            releases: 180,
            tracks_per_release: 7,
            artists: 90,
            multi_genre_releases: 38,
            detached_artists: 17,
            missing_genres: 26,
        }
    }

    /// Small sizes for fast tests.
    pub fn small() -> Self {
        MusicSizes {
            releases: 24,
            tracks_per_release: 4,
            artists: 14,
            multi_genre_releases: 6,
            detached_artists: 3,
            missing_genres: 4,
        }
    }
}

/// f — the flat FreeDB-style schema (2 relations). Track lengths are in
/// seconds; `genre` is nullable and missing for `missing_genres` discs.
pub fn build_f(sizes: &MusicSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("f")
        .table("discs", |t| {
            t.attr("id", DataType::Integer)
                .attr("artist", DataType::Text)
                .attr("title", DataType::Text)
                .attr("genre", DataType::Text)
                .attr("year", DataType::Integer)
                .primary_key(&["id"])
                .not_null("artist")
                .not_null("title")
        })
        .table("disc_tracks", |t| {
            t.attr("disc", DataType::Integer)
                .attr("seq", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("seconds", DataType::Integer)
                .not_null("disc")
                .not_null("title")
                .foreign_key(&["disc"], "discs", &["id"])
        })
        .build()
        .unwrap();

    for d in 0..sizes.releases {
        let (f, l) = names::full_name(rng);
        let genre: Value = if d < sizes.missing_genres {
            Value::Null
        } else {
            names::genre(rng).into()
        };
        db.insert_by_name(
            "discs",
            vec![
                (d as i64).into(),
                format!("{f} {l}").into(),
                names::title(rng).into(),
                genre,
                rng.gen_range(1965..2015i64).into(),
            ],
        )
        .unwrap();
        for seq in 0..sizes.tracks_per_release {
            db.insert_by_name(
                "disc_tracks",
                vec![
                    (d as i64).into(),
                    (seq as i64).into(),
                    names::title(rng).into(),
                    (names::length_millis(rng) / 1000).into(),
                ],
            )
            .unwrap();
        }
    }
    db
}

/// m — the medium schema (6 relations). Track lengths in milliseconds;
/// `release_genres` links releases to a NOT NULL genre; the last
/// `detached_artists` artists have no releases; the first
/// `multi_genre_releases` releases carry two genres.
pub fn build_m(sizes: &MusicSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("m")
        .table("artists_m", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("releases", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("artist", DataType::Integer)
                .attr("year", DataType::Integer)
                .attr("label", DataType::Integer)
                .primary_key(&["id"])
                .not_null("title")
                .not_null("artist")
                .foreign_key(&["artist"], "artists_m", &["id"])
                .foreign_key(&["label"], "labels", &["id"])
        })
        .table("tracks_m", |t| {
            t.attr("id", DataType::Integer)
                .attr("release", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("length_ms", DataType::Integer)
                .primary_key(&["id"])
                .not_null("release")
                .not_null("title")
                .foreign_key(&["release"], "releases", &["id"])
        })
        .table("labels", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("release_genres", |t| {
            t.attr("release", DataType::Integer)
                .attr("genre", DataType::Text)
                .not_null("release")
                .not_null("genre")
                .foreign_key(&["release"], "releases", &["id"])
        })
        .table("reviews_m", |t| {
            t.attr("release", DataType::Integer)
                .attr("rating", DataType::Integer)
                .foreign_key(&["release"], "releases", &["id"])
        })
        .build()
        .unwrap();

    for a in 0..sizes.artists {
        let (f, l) = names::full_name(rng);
        db.insert_by_name(
            "artists_m",
            vec![(a as i64).into(), format!("{f} {l}").into()],
        )
        .unwrap();
    }
    for l in 0..names::LABELS.len() {
        db.insert_by_name(
            "labels",
            vec![(l as i64).into(), names::LABELS[l].into()],
        )
        .unwrap();
    }
    let attached = sizes.artists - sizes.detached_artists;
    let mut track_id = 0i64;
    for r in 0..sizes.releases {
        db.insert_by_name(
            "releases",
            vec![
                (r as i64).into(),
                names::title(rng).into(),
                ((r % attached) as i64).into(),
                rng.gen_range(1965..2015i64).into(),
                ((r % names::LABELS.len()) as i64).into(),
            ],
        )
        .unwrap();
        // One genre for everyone; a second distinct genre for the first
        // `multi_genre_releases` releases.
        let g1 = names::GENRES[r % names::GENRES.len()];
        db.insert_by_name("release_genres", vec![(r as i64).into(), g1.into()])
            .unwrap();
        if r < sizes.multi_genre_releases {
            let g2 = names::GENRES[(r + 1) % names::GENRES.len()];
            db.insert_by_name("release_genres", vec![(r as i64).into(), g2.into()])
                .unwrap();
        }
        if r % 3 == 0 {
            db.insert_by_name(
                "reviews_m",
                vec![(r as i64).into(), rng.gen_range(1..=10i64).into()],
            )
            .unwrap();
        }
        for pos in 0..sizes.tracks_per_release {
            db.insert_by_name(
                "tracks_m",
                vec![
                    track_id.into(),
                    (r as i64).into(),
                    (pos as i64).into(),
                    names::title(rng).into(),
                    names::length_millis(rng).into(),
                ],
            )
            .unwrap();
            track_id += 1;
        }
    }
    db
}

/// d — the deep MusicBrainz-style schema (16 relations).
pub fn build_d(sizes: &MusicSizes, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("d")
        .table("artists_d", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("sort_name", DataType::Text)
                .attr("begin_year", DataType::Integer)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("artist_aliases", |t| {
            t.attr("artist", DataType::Integer)
                .attr("alias", DataType::Text)
                .foreign_key(&["artist"], "artists_d", &["id"])
        })
        .table("artist_credits_d", |t| {
            t.attr("id", DataType::Integer).primary_key(&["id"])
        })
        .table("credit_names", |t| {
            t.attr("credit", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("artist", DataType::Integer)
                .not_null("credit")
                .not_null("artist")
                .foreign_key(&["credit"], "artist_credits_d", &["id"])
                .foreign_key(&["artist"], "artists_d", &["id"])
        })
        .table("release_groups", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("credit", DataType::Integer)
                .primary_key(&["id"])
                .not_null("title")
                .foreign_key(&["credit"], "artist_credits_d", &["id"])
        })
        .table("releases_d", |t| {
            t.attr("id", DataType::Integer)
                .attr("grp", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("year", DataType::Integer)
                .attr("status", DataType::Text)
                .primary_key(&["id"])
                .not_null("title")
                .foreign_key(&["grp"], "release_groups", &["id"])
        })
        .table("mediums", |t| {
            t.attr("id", DataType::Integer)
                .attr("release", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("format", DataType::Text)
                .primary_key(&["id"])
                .foreign_key(&["release"], "releases_d", &["id"])
        })
        .table("tracks_d", |t| {
            t.attr("id", DataType::Integer)
                .attr("medium", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("recording", DataType::Integer)
                .attr("title", DataType::Text)
                .primary_key(&["id"])
                .not_null("title")
                .foreign_key(&["medium"], "mediums", &["id"])
                .foreign_key(&["recording"], "recordings", &["id"])
        })
        .table("recordings", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("length_ms", DataType::Integer)
                .primary_key(&["id"])
                .not_null("title")
        })
        .table("labels_d", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("country", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("release_labels", |t| {
            t.attr("release", DataType::Integer)
                .attr("label", DataType::Integer)
                .attr("catalog", DataType::Text)
                .foreign_key(&["release"], "releases_d", &["id"])
                .foreign_key(&["label"], "labels_d", &["id"])
        })
        .table("genres_d", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
                .not_null("name")
        })
        .table("release_group_genres", |t| {
            t.attr("grp", DataType::Integer)
                .attr("genre", DataType::Integer)
                .foreign_key(&["grp"], "release_groups", &["id"])
                .foreign_key(&["genre"], "genres_d", &["id"])
        })
        .table("works", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .primary_key(&["id"])
        })
        .table("work_recordings", |t| {
            t.attr("work", DataType::Integer)
                .attr("recording", DataType::Integer)
                .foreign_key(&["work"], "works", &["id"])
                .foreign_key(&["recording"], "recordings", &["id"])
        })
        .table("areas", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .primary_key(&["id"])
        })
        .build()
        .unwrap();

    for a in 0..sizes.artists {
        let (f, l) = names::full_name(rng);
        db.insert_by_name(
            "artists_d",
            vec![
                (a as i64).into(),
                format!("{f} {l}").into(),
                format!("{l}, {f}").into(),
                rng.gen_range(1940..1995i64).into(),
            ],
        )
        .unwrap();
        if a % 4 == 0 {
            db.insert_by_name(
                "artist_aliases",
                vec![(a as i64).into(), format!("{l} Band").into()],
            )
            .unwrap();
        }
    }
    for (g, name) in names::GENRES.iter().enumerate() {
        // d capitalises genre names ("Rock" vs m's "rock").
        let mut cap = name.to_string();
        if let Some(first) = cap.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
        db.insert_by_name("genres_d", vec![(g as i64).into(), cap.into()])
            .unwrap();
    }
    for l in 0..names::LABELS.len() {
        db.insert_by_name(
            "labels_d",
            vec![(l as i64).into(), names::LABELS[l].into(), "N/A".into()],
        )
        .unwrap();
    }
    for ar in 0..3i64 {
        db.insert_by_name("areas", vec![ar.into(), names::title(rng).into()])
            .unwrap();
    }
    let mut track_id = 0i64;
    let mut recording_id = 0i64;
    for r in 0..sizes.releases {
        let r = r as i64;
        db.insert_by_name("artist_credits_d", vec![r.into()]).unwrap();
        db.insert_by_name(
            "credit_names",
            vec![
                r.into(),
                0.into(),
                (r % sizes.artists as i64).into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "release_groups",
            vec![r.into(), names::title(rng).into(), r.into()],
        )
        .unwrap();
        db.insert_by_name(
            "releases_d",
            vec![
                r.into(),
                r.into(),
                names::title(rng).into(),
                rng.gen_range(1965..2015i64).into(),
                "official".into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "mediums",
            vec![r.into(), r.into(), 0.into(), "CD".into()],
        )
        .unwrap();
        db.insert_by_name(
            "release_labels",
            vec![
                r.into(),
                (r % names::LABELS.len() as i64).into(),
                format!("CAT-{r:04}").into(),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "release_group_genres",
            vec![r.into(), (r % names::GENRES.len() as i64).into()],
        )
        .unwrap();
        for pos in 0..sizes.tracks_per_release {
            db.insert_by_name(
                "recordings",
                vec![
                    recording_id.into(),
                    names::title(rng).into(),
                    names::length_millis(rng).into(),
                ],
            )
            .unwrap();
            db.insert_by_name(
                "tracks_d",
                vec![
                    track_id.into(),
                    r.into(),
                    (pos as i64).into(),
                    recording_id.into(),
                    names::title(rng).into(),
                ],
            )
            .unwrap();
            if track_id % 5 == 0 {
                db.insert_by_name("works", vec![track_id.into(), names::title(rng).into()])
                    .unwrap();
                db.insert_by_name(
                    "work_recordings",
                    vec![track_id.into(), recording_id.into()],
                )
                .unwrap();
            }
            track_id += 1;
            recording_id += 1;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn all_schemas_are_locally_valid() {
        let sizes = MusicSizes::small();
        build_f(&sizes, &mut rng()).assert_valid();
        build_m(&sizes, &mut rng()).assert_valid();
        build_d(&sizes, &mut rng()).assert_valid();
    }

    #[test]
    fn schema_sizes_match_paper_ranges() {
        // "three schemas with between 2 and 56 relations and between 2
        // and 19 attributes each".
        let sizes = MusicSizes::small();
        let f = build_f(&sizes, &mut rng());
        let m = build_m(&sizes, &mut rng());
        let d = build_d(&sizes, &mut rng());
        assert_eq!(f.schema.table_count(), 2);
        assert!(m.schema.table_count() > f.schema.table_count());
        assert!(d.schema.table_count() > m.schema.table_count());
        assert!(d.schema.table_count() <= 56);
        for db in [&f, &m, &d] {
            for t in db.schema.tables() {
                assert!((1..=19).contains(&t.arity()));
            }
        }
    }

    #[test]
    fn f_has_missing_genres_and_second_based_lengths() {
        let sizes = MusicSizes::small();
        let f = build_f(&sizes, &mut rng());
        let (t, g) = f.schema.resolve("discs", "genre").unwrap();
        let nulls = f.instance.table(t).column(g).filter(|v| v.is_null()).count();
        assert_eq!(nulls, sizes.missing_genres);
        let (t, s) = f.schema.resolve("disc_tracks", "seconds").unwrap();
        for v in f.instance.table(t).column(s) {
            let secs = v.as_int().unwrap();
            assert!((120..480).contains(&secs), "{secs}");
        }
    }

    #[test]
    fn m_injects_multi_genres_and_detached_artists() {
        let sizes = MusicSizes::small();
        let m = build_m(&sizes, &mut rng());
        let (t, r) = m.schema.resolve("release_genres", "release").unwrap();
        let mut counts = std::collections::HashMap::new();
        for v in m.instance.table(t).column(r) {
            *counts.entry(v.to_value()).or_insert(0usize) += 1;
        }
        let multi = counts.values().filter(|c| **c >= 2).count();
        assert_eq!(multi, sizes.multi_genre_releases);
        // Detached artists never appear in releases.artist.
        let (t, a) = m.schema.resolve("releases", "artist").unwrap();
        let used: std::collections::HashSet<i64> = m
            .instance
            .table(t)
            .column(a)
            .filter_map(|v| v.as_int())
            .collect();
        let attached = sizes.artists - sizes.detached_artists;
        for art in attached..sizes.artists {
            assert!(!used.contains(&(art as i64)));
        }
    }

    #[test]
    fn d_capitalises_genres() {
        let sizes = MusicSizes::small();
        let d = build_d(&sizes, &mut rng());
        let (t, n) = d.schema.resolve("genres_d", "name").unwrap();
        for v in d.instance.table(t).column(n) {
            let s = v.render();
            assert!(s.chars().next().unwrap().is_uppercase(), "{s}");
        }
    }
}
