//! The four music evaluation scenarios: f1-m2, m1-d2, m1-f2, d1-d2.

use super::schemas::{build_d, build_f, build_m, MusicSizes};
use crate::ground_truth::{ConnectionWork, ConversionWork, GroundTruth, OracleCostModel, ProblemInventory};
use efes::modules::MappingModule;
use efes_relational::{CorrespondenceBuilder, Database, IntegrationScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the music case study.
#[derive(Debug, Clone)]
pub struct DiscographyConfig {
    /// Instance sizes / injected problem counts.
    pub sizes: MusicSizes,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DiscographyConfig {
    fn default() -> Self {
        DiscographyConfig {
            sizes: MusicSizes::default_sizes(),
            seed: 0xD15C,
        }
    }
}

impl DiscographyConfig {
    /// Small sizes for fast tests.
    pub fn small() -> Self {
        DiscographyConfig {
            sizes: MusicSizes::small(),
            seed: 0xD15C,
        }
    }
}

fn column_counts(db: &Database, table: &str, attr: &str) -> (u64, u64) {
    let (t, a) = db.schema.resolve(table, attr).expect("known column");
    let values = db
        .instance
        .table(t)
        .column(a)
        .filter(|v| !v.is_null())
        .count() as u64;
    let distinct = db.instance.distinct_count(t, a) as u64;
    (values, distinct)
}

fn connection_work(scenario: &IntegrationScenario) -> Vec<ConnectionWork> {
    MappingModule::connections(scenario)
        .into_iter()
        .map(|c| ConnectionWork {
            target_table: scenario.target.schema.table(c.target_table).name.clone(),
            tables: c.source_tables.len() as u64,
            attributes: c.attributes as u64,
            primary_key: c.primary_key,
            foreign_keys: c.foreign_keys as u64,
        })
        .collect()
}

/// f1 → m2: flat dump into the medium schema. Second-based track lengths
/// must become milliseconds; NULL disc genres violate the target's NOT
/// NULL genre.
fn f1_m2(cfg: &DiscographyConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_f(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xF1));
    let target = build_m(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x2A));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("discs", "releases")
        .unwrap()
        .attr("discs", "title", "releases", "title")
        .unwrap()
        .attr("discs", "year", "releases", "year")
        .unwrap()
        .attr("discs", "artist", "artists_m", "name")
        .unwrap()
        .table("discs", "release_genres")
        .unwrap()
        .attr("discs", "genre", "release_genres", "genre")
        .unwrap()
        .table("disc_tracks", "tracks_m")
        .unwrap()
        .attr("disc_tracks", "title", "tracks_m", "title")
        .unwrap()
        .attr("disc_tracks", "seq", "tracks_m", "position")
        .unwrap()
        .attr("disc_tracks", "seconds", "tracks_m", "length_ms")
        .unwrap()
        .finish();
    let (sec_values, sec_distinct) = column_counts(&source, "disc_tracks", "seconds");
    let scenario =
        IntegrationScenario::single_source("f1-m2", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        multi_value_conflicts: vec![],
        detached_values: vec![],
        missing_values: vec![(
            "release_genres.genre".into(),
            sizes.missing_genres as u64,
        )],
        dangling_refs: vec![],
        conversions: vec![ConversionWork {
            location: "disc_tracks.seconds → tracks_m.length_ms".into(),
            values: sec_values,
            distinct: sec_distinct,
            critical: false,
        }],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// m1 → d2: medium into the deep schema — the mapping-dominated
/// scenario: seven connections, key generation nearly everywhere, and a
/// single small value problem (lower-case vs capitalised genre names).
fn m1_d2(cfg: &DiscographyConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_m(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x1D));
    let target = build_d(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xD2));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("artists_m", "artists_d")
        .unwrap()
        .attr("artists_m", "name", "artists_d", "name")
        .unwrap()
        .table("releases", "releases_d")
        .unwrap()
        .attr("releases", "title", "releases_d", "title")
        .unwrap()
        .attr("releases", "year", "releases_d", "year")
        .unwrap()
        .table("releases", "release_groups")
        .unwrap()
        .attr("releases", "title", "release_groups", "title")
        .unwrap()
        .table("tracks_m", "tracks_d")
        .unwrap()
        .attr("tracks_m", "title", "tracks_d", "title")
        .unwrap()
        .attr("tracks_m", "position", "tracks_d", "position")
        .unwrap()
        .table("tracks_m", "recordings")
        .unwrap()
        .attr("tracks_m", "length_ms", "recordings", "length_ms")
        .unwrap()
        .table("labels", "labels_d")
        .unwrap()
        .attr("labels", "name", "labels_d", "name")
        .unwrap()
        .table("release_genres", "genres_d")
        .unwrap()
        .attr("release_genres", "genre", "genres_d", "name")
        .unwrap()
        .finish();
    let (genre_values, genre_distinct) = column_counts(&source, "release_genres", "genre");
    let scenario =
        IntegrationScenario::single_source("m1-d2", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        conversions: vec![ConversionWork {
            location: "release_genres.genre → genres_d.name".into(),
            values: genre_values,
            distinct: genre_distinct,
            critical: false,
        }],
        ..ProblemInventory::default()
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// m1 → f2: denormalising into the flat schema. Multi-genre releases
/// collide with the single `genre` column, detached artists need disc
/// tuples, and millisecond lengths must become seconds.
fn m1_f2(cfg: &DiscographyConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_m(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0x1F));
    let target = build_f(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xF2));
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("releases", "discs")
        .unwrap()
        .attr("releases", "title", "discs", "title")
        .unwrap()
        .attr("releases", "year", "discs", "year")
        .unwrap()
        .attr("artists_m", "name", "discs", "artist")
        .unwrap()
        .attr("release_genres", "genre", "discs", "genre")
        .unwrap()
        .table("tracks_m", "disc_tracks")
        .unwrap()
        .attr("tracks_m", "title", "disc_tracks", "title")
        .unwrap()
        .attr("tracks_m", "position", "disc_tracks", "seq")
        .unwrap()
        .attr("tracks_m", "length_ms", "disc_tracks", "seconds")
        .unwrap()
        .finish();
    let (ms_values, ms_distinct) = column_counts(&source, "tracks_m", "length_ms");
    let scenario =
        IntegrationScenario::single_source("m1-f2", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        multi_value_conflicts: vec![(
            "discs.genre".into(),
            sizes.multi_genre_releases as u64,
        )],
        detached_values: vec![("discs.artist".into(), sizes.detached_artists as u64)],
        missing_values: vec![(
            "discs.title (new tuples)".into(),
            sizes.detached_artists as u64,
        )],
        dangling_refs: vec![],
        conversions: vec![ConversionWork {
            location: "tracks_m.length_ms → disc_tracks.seconds".into(),
            values: ms_values,
            distinct: ms_distinct,
            critical: false,
        }],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// d1 → d2: identical deep schemas — the music control scenario. With 16
/// relations the mapping alone is sizeable, which is exactly where the
/// attribute-counting baseline is strongest (paper §6.2).
fn d1_d2(cfg: &DiscographyConfig) -> (IntegrationScenario, GroundTruth) {
    let sizes = &cfg.sizes;
    let source = build_d(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xD1));
    let mut target = build_d(sizes, &mut StdRng::seed_from_u64(cfg.seed ^ 0xDD));
    target.schema.name = "d'".into();
    let tables = [
        "artists_d", "artist_aliases", "artist_credits_d", "credit_names", "release_groups",
        "releases_d", "mediums", "tracks_d", "recordings", "labels_d", "release_labels",
        "genres_d", "release_group_genres", "works", "work_recordings", "areas",
    ];
    let mut cb = CorrespondenceBuilder::new(&source, &target);
    for t in tables {
        cb = cb.table(t, t).unwrap();
    }
    for (t, a) in [
        ("artists_d", "name"),
        ("artists_d", "sort_name"),
        ("artists_d", "begin_year"),
        ("artist_aliases", "alias"),
        ("release_groups", "title"),
        ("releases_d", "title"),
        ("releases_d", "year"),
        ("releases_d", "status"),
        ("mediums", "format"),
        ("tracks_d", "title"),
        ("tracks_d", "position"),
        ("recordings", "title"),
        ("recordings", "length_ms"),
        ("labels_d", "name"),
        ("labels_d", "country"),
        ("release_labels", "catalog"),
        ("genres_d", "name"),
        ("works", "title"),
        ("areas", "name"),
    ] {
        cb = cb.attr(t, a, t, a).unwrap();
    }
    let correspondences = cb.finish();
    let scenario =
        IntegrationScenario::single_source("d1-d2", source, target, correspondences).unwrap();
    let inventory = ProblemInventory {
        connections: connection_work(&scenario),
        ..ProblemInventory::default()
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

/// All four music scenarios, in the paper's order.
pub fn discography_scenarios(cfg: &DiscographyConfig) -> Vec<(IntegrationScenario, GroundTruth)> {
    vec![f1_m2(cfg), m1_d2(cfg), m1_f2(cfg), d1_d2(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes::framework::EstimationModule;
    use efes::modules::{StructureModule, ValueModule};
    use efes::prelude::*;
    use efes::settings::Quality;
    use efes::task::TaskCategory;

    fn scenarios() -> Vec<(IntegrationScenario, GroundTruth)> {
        discography_scenarios(&DiscographyConfig::small())
    }

    #[test]
    fn all_scenarios_have_valid_sources() {
        for (s, _) in scenarios() {
            for (_, db) in s.iter_sources() {
                db.assert_valid();
            }
            s.target.assert_valid();
        }
    }

    #[test]
    fn f1_m2_detects_unit_mismatch_and_missing_genres() {
        let (s, _) = &scenarios()[0];
        let v = ValueModule::default();
        let report = v.assess(s).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.location.contains("seconds")),
            "seconds→length_ms must be flagged: {report:?}"
        );
        let st = StructureModule::default();
        let report = st.assess(s).unwrap();
        let sizes = MusicSizes::small();
        let missing = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Not null violated"))
            .expect("missing genres");
        assert_eq!(missing.int("violations"), Some(sizes.missing_genres as u64));
    }

    #[test]
    fn m1_f2_detects_multi_genre_and_detached_artists() {
        let (s, _) = &scenarios()[2];
        let st = StructureModule::default();
        let report = st.assess(s).unwrap();
        let sizes = MusicSizes::small();
        let multi = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Multiple attribute values"))
            .expect("multi-genre conflict");
        assert_eq!(
            multi.int("too-many"),
            Some(sizes.multi_genre_releases as u64)
        );
        let detached = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Value w/o enclosing tuple"))
            .expect("detached artists");
        assert_eq!(
            detached.int("violations"),
            Some(sizes.detached_artists as u64)
        );
    }

    #[test]
    fn m1_d2_is_mapping_dominated() {
        let (s, _) = &scenarios()[1];
        let est = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        let e = est.estimate(s).unwrap();
        let mapping = e.mapping_minutes();
        let cleaning = e.cleaning_minutes();
        assert!(
            mapping > cleaning,
            "m1-d2 must be mapping-dominated: mapping {mapping} vs cleaning {cleaning}"
        );
        // Many connections: at least six target tables are fed.
        let by_cat = e.by_category();
        assert!(by_cat[&TaskCategory::Mapping] > 0.0);
        let connections = e
            .tasks
            .iter()
            .filter(|t| t.task.category == TaskCategory::Mapping)
            .count();
        assert!(connections >= 6, "{connections}");
    }

    #[test]
    fn d1_d2_is_clean() {
        let (s, gt) = &scenarios()[3];
        assert!(gt.inventory.is_clean());
        let est = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        let e = est.estimate(s).unwrap();
        assert_eq!(
            e.cleaning_minutes(),
            0.0,
            "identical deep schemas must be clean: {:#?}",
            e.tasks
        );
        assert!(e.mapping_minutes() > 0.0);
    }

    #[test]
    fn genre_case_conversion_detected_in_m1_d2() {
        let (s, _) = &scenarios()[1];
        let v = ValueModule::default();
        let report = v.assess(s).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.location.contains("genre")),
            "lower-case vs capitalised genres must be flagged: {report:?}"
        );
    }
}
