//! The standard named-scenario registry: every case-study scenario of
//! the reproduction, registered under a stable name so services
//! (`efes-serve`) and tools can resolve scenarios by request.
//!
//! Names follow `<domain>-<pair>`: the four bibliographic scenarios as
//! `amalgam-s1-s2` … `amalgam-s4-s4`, the four discographic ones as
//! `discography-f1-m2` … `discography-d1-d2`, plus the paper's running
//! example as `music-example` (scaled-down sizes, fast) and
//! `music-example-paper` (the exact Figure 2 sizes). Generators are
//! seeded and deterministic, so a name always resolves to the same data.

use crate::amalgam::{amalgam_scenarios, AmalgamConfig};
use crate::discography::{discography_scenarios, DiscographyConfig};
use crate::music_example::{music_example_scenario, MusicExampleConfig};
use efes::api::ScenarioRegistry;

/// Descriptions of the four bibliographic pairs, in build order.
const AMALGAM: [(&str, &str); 4] = [
    ("amalgam-s1-s2", "bibliographic: normalised s1 into flat s2"),
    ("amalgam-s1-s3", "bibliographic: normalised s1 into partly-flat s3"),
    ("amalgam-s3-s4", "bibliographic: partly-flat s3 into keyword-heavy s4"),
    ("amalgam-s4-s4", "bibliographic: identical source and target schema"),
];

/// Descriptions of the four discographic pairs, in build order.
const DISCOGRAPHY: [(&str, &str); 4] = [
    ("discography-f1-m2", "music: flat f into medium-depth m"),
    ("discography-m1-d2", "music: medium-depth m into deep d"),
    ("discography-m1-f2", "music: medium-depth m into flat f"),
    ("discography-d1-d2", "music: near-identical deep schemas"),
];

/// The standard registry with every case-study scenario under its
/// conventional name. Case-study generators use their fast (small)
/// sizes so a long-running service answers interactively; the
/// `music-example-paper` entry keeps the paper's exact Figure 2 sizes.
pub fn standard_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(
        "music-example",
        "the paper's running example (Figure 2), scaled-down sizes",
        || music_example_scenario(&MusicExampleConfig::scaled_down()).0,
    );
    registry.register(
        "music-example-paper",
        "the paper's running example (Figure 2), exact paper sizes",
        || music_example_scenario(&MusicExampleConfig::paper()).0,
    );
    for (index, (name, description)) in AMALGAM.into_iter().enumerate() {
        registry.register(name, description, move || {
            amalgam_scenarios(&AmalgamConfig::small())
                .swap_remove(index)
                .0
        });
    }
    for (index, (name, description)) in DISCOGRAPHY.into_iter().enumerate() {
        registry.register(name, description, move || {
            discography_scenarios(&DiscographyConfig::small())
                .swap_remove(index)
                .0
        });
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_standard_names() {
        let reg = standard_registry();
        assert_eq!(reg.len(), 10);
        for (name, _) in AMALGAM.into_iter().chain(DISCOGRAPHY) {
            assert!(reg.contains(name), "missing {name}");
        }
        assert!(reg.contains("music-example"));
        assert!(reg.contains("music-example-paper"));
    }

    #[test]
    fn names_resolve_to_the_matching_scenario() {
        let reg = standard_registry();
        assert_eq!(reg.get("amalgam-s1-s2").unwrap().name, "s1-s2");
        assert_eq!(reg.get("amalgam-s4-s4").unwrap().name, "s4-s4");
        assert_eq!(reg.get("discography-m1-d2").unwrap().name, "m1-d2");
        assert_eq!(reg.get("music-example").unwrap().name, "music-example");
    }

    #[test]
    fn resolved_scenarios_are_valid_and_estimable() {
        use efes::prelude::*;
        let reg = standard_registry();
        let scenario = reg.get("amalgam-s1-s2").unwrap();
        let estimate = Estimator::with_default_modules(EstimationConfig::default())
            .estimate(&scenario)
            .unwrap();
        assert!(estimate.total_minutes() > 0.0);
    }
}
