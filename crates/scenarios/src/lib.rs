//! # efes-scenarios
//!
//! Case-study scenarios and ground truth for the EFES reproduction.
//!
//! The paper evaluates on two real-world case studies: the **Amalgam**
//! bibliographic dataset (four schemas) and a **Music** discographic
//! case study (three schemas derived from FreeDB/Discogs/MusicBrainz-
//! style datasets). Neither is redistributable in this repository, so
//! this crate generates faithful synthetic stand-ins (seeded,
//! deterministic) that reproduce the published schema shapes and the
//! *classes* of integration problems the paper reports, and an **oracle
//! integrator** that plays the role of the paper's human ground truth:
//! it knows exactly which problems the generators injected and prices
//! the required operations with a cost model *independent* of EFES's
//! effort functions (see DESIGN.md §4 for the substitution argument).
//!
//! * [`names`] — deterministic name/title/word pools;
//! * [`music_example`] — the running example of Figure 2, parameterised
//!   to reproduce Tables 2, 3, 5, 6 and 8 exactly;
//! * [`amalgam`] — four bibliographic schemas (s1…s4) + generators;
//! * [`discography`] — three music schemas (f: flat, m: medium, d: deep)
//!   + generators;
//! * [`ground_truth`] — the injected-problem inventory and the oracle
//!   cost model;
//! * [`evaluation`] — the eight evaluation scenarios, cross-validated
//!   calibration, and the Figure 6/7 series;
//! * [`registry`] — every case-study scenario under a stable name, for
//!   services that resolve scenarios by request (`efes-serve`).

#![warn(missing_docs)]

pub mod amalgam;
pub mod discography;
pub mod evaluation;
pub mod ground_truth;
pub mod music_example;
pub mod names;
pub mod registry;

pub use evaluation::{evaluate_domain, DomainEvaluation, ScenarioResult};
pub use ground_truth::{GroundTruth, OracleCostModel, ProblemInventory};
pub use music_example::{music_example_scenario, MusicExampleConfig};
pub use registry::standard_registry;
