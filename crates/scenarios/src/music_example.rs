//! The running example of the paper (Figure 2): the music-records
//! integration scenario, parameterised so the reproduction regenerates
//! Tables 2, 3, 5, 6 and 8 with the paper's exact numbers.

use crate::ground_truth::{ConnectionWork, ConversionWork, GroundTruth, OracleCostModel, ProblemInventory};
use crate::names;
use efes_relational::{
    CorrespondenceBuilder, DataType, Database, DatabaseBuilder, IntegrationScenario, Value,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Size parameters of the generated scenario.
#[derive(Debug, Clone)]
pub struct MusicExampleConfig {
    /// Albums with exactly one credited artist.
    pub single_artist_albums: usize,
    /// Albums with two or more credited artists — Table 3's 503
    /// violations of `κ(records→artist) = 1`.
    pub multi_artist_albums: usize,
    /// Artists credited on lists no album references — Table 3's 102
    /// violations of `κ(artist→records) = 1..*`.
    pub detached_artists: usize,
    /// Songs in the source — Table 6's 274,523 source values.
    pub songs: usize,
    /// Distinct song lengths — Table 6's 260,923 distinct values.
    pub distinct_lengths: usize,
    /// Pre-existing records in the target.
    pub target_records: usize,
    /// Tracks per pre-existing record.
    pub target_tracks_per_record: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MusicExampleConfig {
    /// The paper's exact numbers.
    pub fn paper() -> Self {
        MusicExampleConfig {
            single_artist_albums: 4397,
            multi_artist_albums: 503,
            detached_artists: 102,
            songs: 274_523,
            distinct_lengths: 260_923,
            target_records: 400,
            target_tracks_per_record: 9,
            seed: 0x0EDB_2015,
        }
    }

    /// A ~1/100 scale for tests: same problem classes, 100× faster.
    pub fn scaled_down() -> Self {
        MusicExampleConfig {
            single_artist_albums: 44,
            multi_artist_albums: 5,
            detached_artists: 2,
            songs: 2746,
            distinct_lengths: 2610,
            target_records: 10,
            target_tracks_per_record: 6,
            seed: 0x0EDB_2015,
        }
    }
}

fn build_source(cfg: &MusicExampleConfig, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("source")
        .table("albums", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("artist_list", DataType::Integer)
                .primary_key(&["id"])
                .not_null("name")
                .not_null("artist_list")
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        })
        .table("songs", |t| {
            t.attr("album", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("artist_list", DataType::Integer)
                .attr("length", DataType::Integer)
                .not_null("name")
                .foreign_key(&["album"], "albums", &["id"])
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        })
        .table("artist_lists", |t| t.attr("id", DataType::Integer).primary_key(&["id"]))
        .table("artist_credits", |t| {
            t.attr("artist_list", DataType::Integer)
                .attr("position", DataType::Integer)
                .attr("artist", DataType::Text)
                .primary_key(&["artist_list", "position"])
                .not_null("artist")
                .foreign_key(&["artist_list"], "artist_lists", &["id"])
        })
        .build()
        .unwrap();

    let total_albums = cfg.single_artist_albums + cfg.multi_artist_albums;

    // Artist lists: one per album, plus the detached ones.
    let total_lists = total_albums + cfg.detached_artists;
    for list in 0..total_lists {
        db.insert_by_name("artist_lists", vec![(list as i64).into()])
            .unwrap();
    }

    // Credits. Attached artists are drawn from the name pools (they may
    // repeat across albums — every such artist has at least one album);
    // detached artists get globally unique names so they truly have no
    // album anywhere.
    for album in 0..total_albums {
        let multi = album < cfg.multi_artist_albums;
        let count = if multi { 2 + (album % 3) } else { 1 };
        let mut used = Vec::new();
        for position in 0..count {
            // Distinct names within one list so multi-artist albums
            // really carry multiple distinct artist values.
            let name = loop {
                let (first, last) = names::full_name(rng);
                let candidate = format!("{first} {last}");
                if !used.contains(&candidate) {
                    break candidate;
                }
            };
            used.push(name.clone());
            db.insert_by_name(
                "artist_credits",
                vec![(album as i64).into(), (position as i64).into(), name.into()],
            )
            .unwrap();
        }
    }
    for (i, list) in (total_albums..total_lists).enumerate() {
        db.insert_by_name(
            "artist_credits",
            vec![
                (list as i64).into(),
                0.into(),
                format!("Session Artist #{i:04}").into(),
            ],
        )
        .unwrap();
    }

    // Albums. Multi-artist albums come first (lists 0..multi).
    for album in 0..total_albums {
        db.insert_by_name(
            "albums",
            vec![
                (album as i64).into(),
                names::title(rng).into(),
                (album as i64).into(),
            ],
        )
        .unwrap();
    }

    // Songs with millisecond lengths: exactly `distinct_lengths` distinct
    // values spread over the whole 2:00–8:00 range (so the durations stay
    // realistic at every scale), the remainder re-using earlier lengths.
    assert!(cfg.distinct_lengths <= cfg.songs);
    assert!(cfg.distinct_lengths <= 360_000, "length domain exhausted");
    let step = (360_000 / cfg.distinct_lengths as i64).max(1);
    for song in 0..cfg.songs {
        let album = (song % total_albums) as i64;
        let length: i64 = 120_000 + ((song % cfg.distinct_lengths) as i64) * step;
        db.insert_by_name(
            "songs",
            vec![
                album.into(),
                names::title(rng).into(),
                Value::Null,
                length.into(),
            ],
        )
        .unwrap();
    }
    db
}

fn build_target(cfg: &MusicExampleConfig, rng: &mut StdRng) -> Database {
    let mut db = DatabaseBuilder::new("target")
        // `genre` is nullable here: Table 5 repairs only `title` on the
        // 102 created record tuples, implying genre tolerated absence in
        // the authors' actual configuration (Figure 2a's NN annotation
        // notwithstanding — see EXPERIMENTS.md).
        .table("records", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("artist", DataType::Text)
                .attr("genre", DataType::Text)
                .primary_key(&["id"])
                .not_null("title")
                .not_null("artist")
        })
        .table("tracks", |t| {
            t.attr("record", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("duration", DataType::Text)
                .not_null("record")
                .not_null("title")
                .foreign_key(&["record"], "records", &["id"])
        })
        .build()
        .unwrap();
    for r in 0..cfg.target_records {
        let (first, last) = names::full_name(rng);
        db.insert_by_name(
            "records",
            vec![
                (r as i64).into(),
                names::title(rng).into(),
                format!("{first} {last}").into(),
                names::genre(rng).into(),
            ],
        )
        .unwrap();
        for _ in 0..cfg.target_tracks_per_record {
            let ms = names::length_millis(rng);
            db.insert_by_name(
                "tracks",
                vec![
                    (r as i64).into(),
                    names::title(rng).into(),
                    names::millis_to_mss(ms).into(),
                ],
            )
            .unwrap();
        }
    }
    db
}

/// Build the Figure 2 scenario with its ground truth.
pub fn music_example_scenario(cfg: &MusicExampleConfig) -> (IntegrationScenario, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let source = build_source(cfg, &mut rng);
    let target = build_target(cfg, &mut rng);
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("albums", "records")
        .unwrap()
        .attr("albums", "name", "records", "title")
        .unwrap()
        .attr("artist_credits", "artist", "records", "artist")
        .unwrap()
        .table("songs", "tracks")
        .unwrap()
        .attr("songs", "name", "tracks", "title")
        .unwrap()
        .attr("songs", "length", "tracks", "duration")
        .unwrap()
        .finish();
    let scenario =
        IntegrationScenario::single_source("music-example", source, target, correspondences)
            .unwrap();

    let inventory = ProblemInventory {
        connections: vec![
            ConnectionWork {
                target_table: "records".into(),
                tables: 3,
                attributes: 2,
                primary_key: true,
                foreign_keys: 0,
            },
            ConnectionWork {
                target_table: "tracks".into(),
                tables: 2,
                attributes: 2,
                primary_key: false,
                foreign_keys: 1,
            },
        ],
        multi_value_conflicts: vec![(
            "records.artist".into(),
            cfg.multi_artist_albums as u64,
        )],
        detached_values: vec![("records.artist".into(), cfg.detached_artists as u64)],
        missing_values: vec![("records.title".into(), cfg.detached_artists as u64)],
        dangling_refs: vec![],
        conversions: vec![ConversionWork {
            location: "length → duration".into(),
            values: cfg.songs as u64,
            distinct: cfg.distinct_lengths as u64,
            critical: false,
        }],
    };
    (
        scenario,
        GroundTruth {
            inventory,
            oracle: OracleCostModel::default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes::modules::{MappingModule, StructureModule, ValueModule};
    use efes::prelude::*;
    use efes::settings::Quality;
    use efes::task::TaskType;

    fn scenario() -> (IntegrationScenario, GroundTruth) {
        music_example_scenario(&MusicExampleConfig::scaled_down())
    }

    #[test]
    fn source_is_locally_valid() {
        let (s, _) = scenario();
        s.source(efes_relational::SourceId(0)).assert_valid();
        s.target.assert_valid();
    }

    #[test]
    fn structure_conflicts_match_config() {
        let (s, _) = scenario();
        let m = StructureModule::default();
        let report = m.assess(&s).unwrap();
        let cfg = MusicExampleConfig::scaled_down();
        let multi = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Multiple attribute values"))
            .expect("multi-artist conflict");
        assert_eq!(multi.int("violations"), Some(cfg.multi_artist_albums as u64));
        let detached = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Value w/o enclosing tuple"))
            .expect("detached artists conflict");
        assert_eq!(detached.int("violations"), Some(cfg.detached_artists as u64));
    }

    #[test]
    fn table5_shape_at_scale() {
        let (s, _) = scenario();
        let cfg = MusicExampleConfig::scaled_down();
        let m = StructureModule::default();
        let report = m.assess(&s).unwrap();
        let tasks = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::HighQuality))
            .unwrap();
        let find = |tt: TaskType| tasks.iter().find(|t| t.task_type == tt);
        assert_eq!(
            find(TaskType::MergeValues).unwrap().params.repetitions,
            cfg.multi_artist_albums as u64
        );
        assert_eq!(
            find(TaskType::AddTuples).unwrap().params.repetitions,
            cfg.detached_artists as u64
        );
        assert_eq!(
            find(TaskType::AddValues).unwrap().params.repetitions,
            cfg.detached_artists as u64
        );
    }

    #[test]
    fn value_heterogeneity_detected_with_counts() {
        let (s, _) = scenario();
        let cfg = MusicExampleConfig::scaled_down();
        let m = ValueModule::default();
        let report = m.assess(&s).unwrap();
        let het = report
            .findings
            .iter()
            .find(|f| f.location.contains("length"))
            .expect("length→duration heterogeneity");
        assert_eq!(het.int("source-values"), Some(cfg.songs as u64));
        assert_eq!(
            het.int("distinct-source-values"),
            Some(cfg.distinct_lengths as u64)
        );
    }

    #[test]
    fn table2_mapping_report() {
        let (s, _) = scenario();
        let conns = MappingModule::connections(&s);
        assert_eq!(conns.len(), 2);
        // records: albums + artist_lists + artist_credits.
        assert_eq!(conns[0].source_tables.len(), 3);
        assert_eq!(conns[0].attributes, 2);
        assert!(conns[0].primary_key);
        // tracks: songs + albums (anchor of the referenced records).
        assert_eq!(conns[1].attributes, 2);
        assert!(!conns[1].primary_key);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = scenario();
        let (b, _) = scenario();
        assert_eq!(a.sources[0].instance, b.sources[0].instance);
        assert_eq!(a.target.instance, b.target.instance);
    }

    #[test]
    fn ground_truth_prices_both_qualities() {
        let (_, gt) = scenario();
        assert!(gt.measured_total(Quality::HighQuality) > gt.measured_total(Quality::LowEffort));
        assert!(gt.measured_total(Quality::LowEffort) > 0.0);
    }
}
