//! Deterministic name pools for the synthetic case studies.
//!
//! All generators draw from these pools through a seeded RNG, so every
//! run of the reproduction produces byte-identical scenarios.

use rand::rngs::StdRng;
use rand::Rng;

/// First names for authors/artists.
pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Benjamin", "Carla", "Dmitri", "Elena", "Farid", "Grace", "Henrik", "Ingrid",
    "Jorge", "Katarina", "Liam", "Mireille", "Nikolai", "Oluwaseun", "Priya", "Quentin", "Rosa",
    "Stefan", "Tomoko", "Ulrich", "Valentina", "Wei", "Ximena", "Yusuf", "Zofia",
];

/// Family names.
pub const LAST_NAMES: &[&str] = &[
    "Abramov", "Bergström", "Chen", "Dubois", "Eriksen", "Fischer", "García", "Hoffmann",
    "Ivanova", "Jansen", "Kowalski", "Lindqvist", "Moreau", "Nakamura", "Okafor", "Petrov",
    "Quiroga", "Rossi", "Schneider", "Takahashi", "Ueda", "Vasquez", "Weber", "Xu", "Yamamoto",
    "Zhang",
];

/// Words used to assemble titles (papers, albums, songs).
pub const TITLE_WORDS: &[&str] = &[
    "adaptive", "broken", "crystal", "distant", "electric", "fading", "golden", "hollow",
    "infinite", "jagged", "kindred", "luminous", "midnight", "northern", "obsidian", "parallel",
    "quiet", "restless", "silver", "tangled", "uncharted", "velvet", "wandering", "crimson",
    "yearning", "zephyr", "echoes", "fragments", "horizons", "reflections", "shadows", "rivers",
    "gardens", "machines", "queries", "indices", "schemas", "streams", "graphs", "lattices",
];

/// Music genres — a small controlled vocabulary (domain-restricted).
pub const GENRES: &[&str] = &[
    "rock", "pop", "jazz", "blues", "classical", "electronic", "folk", "hip-hop", "metal",
    "reggae", "soul", "country",
];

/// Conference/venue names for the bibliographic domain.
pub const VENUES: &[(&str, &str)] = &[
    ("VLDB", "International Conference on Very Large Data Bases"),
    ("SIGMOD", "ACM SIGMOD International Conference on Management of Data"),
    ("ICDE", "IEEE International Conference on Data Engineering"),
    ("EDBT", "International Conference on Extending Database Technology"),
    ("CIKM", "Conference on Information and Knowledge Management"),
    ("PODS", "Symposium on Principles of Database Systems"),
    ("ICDT", "International Conference on Database Theory"),
    ("WWW", "The Web Conference"),
];

/// Record label names for the discographic domain.
pub const LABELS: &[&str] = &[
    "Bluebird Records", "Cascade Sound", "Driftwood Music", "Ember Audio", "Foxglove Records",
    "Granite Groove", "Harbor Lane", "Ivory Tower Records",
];

/// Draw a full name `First Last`.
pub fn full_name(rng: &mut StdRng) -> (String, String) {
    let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
    (first.to_owned(), last.to_owned())
}

/// Capitalise the first letter of a word.
fn capitalise(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Draw a 1–5 word Title-Case title.
pub fn title(rng: &mut StdRng) -> String {
    let words = rng.gen_range(1..=5);
    (0..words)
        .map(|_| capitalise(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Draw a genre.
pub fn genre(rng: &mut StdRng) -> String {
    GENRES[rng.gen_range(0..GENRES.len())].to_owned()
}

/// Draw a song length in milliseconds (2–8 minutes).
pub fn length_millis(rng: &mut StdRng) -> i64 {
    rng.gen_range(120_000..480_000)
}

/// Format milliseconds as the target's `m:ss` duration string.
pub fn millis_to_mss(ms: i64) -> String {
    let total_secs = ms / 1000;
    format!("{}:{:02}", total_secs / 60, total_secs % 60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(title(&mut a), title(&mut b));
        assert_eq!(full_name(&mut a), full_name(&mut b));
        assert_eq!(length_millis(&mut a), length_millis(&mut b));
    }

    #[test]
    fn titles_are_title_case() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = title(&mut rng);
            assert!(t.chars().next().unwrap().is_uppercase(), "{t}");
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn millis_format_matches_paper() {
        assert_eq!(millis_to_mss(283_000), "4:43");
        assert_eq!(millis_to_mss(415_000), "6:55");
        assert_eq!(millis_to_mss(206_000), "3:26");
    }

    #[test]
    fn lengths_are_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let l = length_millis(&mut rng);
            assert!((120_000..480_000).contains(&l));
        }
    }
}
