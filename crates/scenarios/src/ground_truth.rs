//! Ground-truth effort: the injected-problem inventory and the oracle
//! cost model.
//!
//! The paper's ground truth is a human integration specialist performing
//! each scenario with SQL + pgAdmin, stopwatch running. This
//! reproduction replaces the human with an **oracle**: the scenario
//! generators record exactly which integration problems they injected
//! (the [`ProblemInventory`]), and the [`OracleCostModel`] prices the
//! operations a practitioner would actually have to perform — with
//! functional forms deliberately *different* from EFES's Table 9
//! effort functions, plus deterministic per-item noise, so that EFES is
//! evaluated against an independent notion of realised effort rather
//! than against its own model (see DESIGN.md §4).

use efes::settings::Quality;
use efes::task::TaskCategory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mapping work for one target-table connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionWork {
    /// Target table name.
    pub target_table: String,
    /// Source tables that must be understood and joined.
    pub tables: u64,
    /// Attributes to copy.
    pub attributes: u64,
    /// Whether key generation is needed.
    pub primary_key: bool,
    /// Foreign keys to establish.
    pub foreign_keys: u64,
}

/// One value-conversion job (a `length → duration`-style format bridge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionWork {
    /// Location label.
    pub location: String,
    /// Values to convert.
    pub values: u64,
    /// Distinct values among them.
    pub distinct: u64,
    /// Whether the source values are uncastable without the conversion
    /// (critical — at low effort they must be dropped, not ignored).
    pub critical: bool,
}

/// Everything the generator injected into a scenario — the true work
/// list of the integration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProblemInventory {
    /// Mapping connections to write.
    pub connections: Vec<ConnectionWork>,
    /// (location, #elements with surplus values) — merge/keep-any work.
    pub multi_value_conflicts: Vec<(String, u64)>,
    /// (location, #values without an enclosing tuple) — add-tuples/drop
    /// work; creating tuples entails filling their other attributes.
    pub detached_values: Vec<(String, u64)>,
    /// (location, #missing required values) — add-values/reject work.
    pub missing_values: Vec<(String, u64)>,
    /// (location, #dangling references) — FK repair work.
    pub dangling_refs: Vec<(String, u64)>,
    /// Format conversions.
    pub conversions: Vec<ConversionWork>,
}

impl ProblemInventory {
    /// `true` iff the integration is a pure mapping job (identical
    /// schemas, clean data).
    pub fn is_clean(&self) -> bool {
        self.multi_value_conflicts.is_empty()
            && self.detached_values.is_empty()
            && self.missing_values.is_empty()
            && self.dangling_refs.is_empty()
            && self.conversions.is_empty()
    }
}

/// The oracle's cost model. All rates are minutes; per-item noise is a
/// deterministic hash of `(seed, location)`, uniform in
/// `[1−jitter, 1+jitter]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleCostModel {
    /// Noise seed (fixed per case study).
    pub seed: u64,
    /// Jitter half-width (default 0.15).
    pub jitter: f64,
}

impl Default for OracleCostModel {
    fn default() -> Self {
        OracleCostModel {
            seed: 0xEF35,
            jitter: 0.15,
        }
    }
}

impl OracleCostModel {
    fn noise(&self, location: &str) -> f64 {
        // FNV-1a over seed + location → uniform in [1−j, 1+j].
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed;
        for b in location.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 - self.jitter + 2.0 * self.jitter * unit
    }

    /// Price one scenario's true work list at a quality level, split by
    /// category. The functional forms model a human with SQL: flat costs
    /// for scriptable operations with mild logarithmic growth in volume,
    /// near-linear cost only where each item needs individual judgement
    /// (providing missing values).
    pub fn measured(
        &self,
        inventory: &ProblemInventory,
        quality: Quality,
    ) -> BTreeMap<TaskCategory, f64> {
        let mut out: BTreeMap<TaskCategory, f64> = BTreeMap::new();
        let mut add = |cat: TaskCategory, minutes: f64| {
            *out.entry(cat).or_insert(0.0) += minutes;
        };

        for c in &inventory.connections {
            // Understanding and joining source tables dominates; slightly
            // superlinear in the join size.
            let minutes = (4.0
                + 2.6 * (c.tables as f64).powf(1.1)
                + 0.9 * c.attributes as f64
                + if c.primary_key { 3.4 } else { 0.0 }
                + 2.8 * c.foreign_keys as f64)
                * self.noise(&c.target_table);
            add(TaskCategory::Mapping, minutes);
        }

        for (loc, count) in &inventory.multi_value_conflicts {
            let minutes = match quality {
                // Keep-any: one SQL DISTINCT ON / GROUP BY.
                Quality::LowEffort => 4.2,
                // Merging needs a concatenation/aggregation script and a
                // spot check that grows gently with volume.
                Quality::HighQuality => 11.0 + 1.4 * (1.0 + *count as f64).ln(),
            } * self.noise(loc);
            add(TaskCategory::CleaningStructure, minutes);
        }

        for (loc, count) in &inventory.detached_values {
            let minutes = match quality {
                // Simply not integrating them: a WHERE clause.
                Quality::LowEffort => 0.8,
                // Creating enclosing tuples: an INSERT…SELECT + check.
                Quality::HighQuality => 4.5 + 0.7 * (1.0 + *count as f64).ln(),
            } * self.noise(loc);
            add(TaskCategory::CleaningStructure, minutes);
        }

        for (loc, count) in &inventory.missing_values {
            let minutes = match quality {
                Quality::LowEffort => 4.8, // one DELETE
                // Each missing value needs individual research — the one
                // genuinely per-item human cost.
                Quality::HighQuality => 1.7 * *count as f64,
            } * self.noise(loc);
            add(TaskCategory::CleaningStructure, minutes);
        }

        for (loc, count) in &inventory.dangling_refs {
            let minutes = match quality {
                Quality::LowEffort => 4.5,
                Quality::HighQuality => 6.0 + 0.9 * (1.0 + *count as f64).ln(),
            } * self.noise(loc);
            add(TaskCategory::CleaningStructure, minutes);
        }

        for c in &inventory.conversions {
            let minutes = match quality {
                Quality::LowEffort => {
                    if c.critical {
                        7.5 // must be dropped: one UPDATE … SET NULL
                    } else {
                        0.0 // ignored
                    }
                }
                // A conversion script plus validation that grows with the
                // distinct-value diversity.
                Quality::HighQuality => 6.0 + 0.8 * (1.0 + c.distinct as f64).ln(),
            } * self.noise(&c.location);
            add(TaskCategory::CleaningValues, minutes);
        }

        out
    }
}

/// A scenario's ground truth: its true work list plus the oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The injected problems.
    pub inventory: ProblemInventory,
    /// The pricing oracle.
    pub oracle: OracleCostModel,
}

impl GroundTruth {
    /// Measured minutes per category at a quality level.
    pub fn measured(&self, quality: Quality) -> BTreeMap<TaskCategory, f64> {
        self.oracle.measured(&self.inventory, quality)
    }

    /// Measured total minutes.
    pub fn measured_total(&self, quality: Quality) -> f64 {
        self.measured(quality).values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory() -> ProblemInventory {
        ProblemInventory {
            connections: vec![ConnectionWork {
                target_table: "records".into(),
                tables: 3,
                attributes: 2,
                primary_key: true,
                foreign_keys: 0,
            }],
            multi_value_conflicts: vec![("records.artist".into(), 503)],
            detached_values: vec![("records.artist".into(), 102)],
            missing_values: vec![("records.title".into(), 102)],
            dangling_refs: vec![],
            conversions: vec![ConversionWork {
                location: "length → duration".into(),
                values: 274_523,
                distinct: 260_923,
                critical: false,
            }],
        }
    }

    #[test]
    fn high_quality_costs_more_than_low_effort() {
        let gt = GroundTruth {
            inventory: inventory(),
            oracle: OracleCostModel::default(),
        };
        let high = gt.measured_total(Quality::HighQuality);
        let low = gt.measured_total(Quality::LowEffort);
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn pricing_is_deterministic() {
        let gt = GroundTruth {
            inventory: inventory(),
            oracle: OracleCostModel::default(),
        };
        assert_eq!(
            gt.measured(Quality::HighQuality),
            gt.measured(Quality::HighQuality)
        );
    }

    #[test]
    fn noise_is_bounded_and_location_dependent() {
        let o = OracleCostModel::default();
        let a = o.noise("records.artist");
        let b = o.noise("records.title");
        assert!((0.85..=1.15).contains(&a));
        assert!((0.85..=1.15).contains(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn clean_inventory_measures_mapping_only() {
        let inv = ProblemInventory {
            connections: vec![ConnectionWork {
                target_table: "t".into(),
                tables: 1,
                attributes: 4,
                primary_key: false,
                foreign_keys: 0,
            }],
            ..ProblemInventory::default()
        };
        assert!(inv.is_clean());
        let gt = GroundTruth {
            inventory: inv,
            oracle: OracleCostModel::default(),
        };
        let m = gt.measured(Quality::HighQuality);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&TaskCategory::Mapping));
    }

    #[test]
    fn missing_values_dominate_at_high_quality() {
        // The per-item judgement cost must dwarf scriptable repairs, as
        // Table 5's 204-minute "Add missing values" row shows.
        let gt = GroundTruth {
            inventory: inventory(),
            oracle: OracleCostModel::default(),
        };
        let m = gt.measured(Quality::HighQuality);
        let structure = m[&TaskCategory::CleaningStructure];
        assert!(structure > 150.0, "{structure}");
    }
}
