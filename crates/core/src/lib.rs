//! # EFES — the Effort Estimation Framework
//!
//! A faithful Rust implementation of *Estimating Data Integration and
//! Cleaning Effort* (Sebastian Kruse, Paolo Papotti, Felix Naumann — EDBT
//! 2015): an extensible framework that, given a data-integration scenario
//! (source databases, a target database, correspondences), estimates the
//! human effort of integrating and cleaning — **without performing the
//! integration**.
//!
//! ## The two-phase pipeline (paper Figure 3)
//!
//! 1. **Complexity assessment** — objective, context-free. Every
//!    [`EstimationModule`] contributes a *data complexity detector* that
//!    scans the scenario and emits a granular [`ModuleReport`] of
//!    [`Finding`]s (e.g. "503 albums have more than one artist").
//! 2. **Effort estimation** — context-dependent. Each module's *task
//!    planner* converts its findings into concrete [`Task`]s at the
//!    requested result [`Quality`]; user-configurable
//!    [`EffortFunction`]s turn tasks into minutes.
//!
//! ## The three built-in modules
//!
//! * [`modules::MappingModule`] — §3: per (target table × source) mapping
//!   connections (source tables, copied attributes, key generation).
//! * [`modules::StructureModule`] — §4: structural conflicts via
//!   cardinality-constrained schema graphs (`efes-csg`), with repair
//!   simulation and ordering.
//! * [`modules::ValueModule`] — §5: value heterogeneities via profiling
//!   statistics (`efes-profiling`) and the Algorithm 1 decision model.
//!
//! ## Quick example
//!
//! ```
//! use efes::prelude::*;
//! use efes_relational::{DatabaseBuilder, DataType, CorrespondenceBuilder, IntegrationScenario};
//!
//! let source = DatabaseBuilder::new("src")
//!     .table("albums", |t| t.attr("name", DataType::Text))
//!     .rows("albums", vec![vec!["Second Helping".into()]])
//!     .build().unwrap();
//! let target = DatabaseBuilder::new("tgt")
//!     .table("records", |t| t.attr("title", DataType::Text))
//!     .build().unwrap();
//! let corrs = CorrespondenceBuilder::new(&source, &target)
//!     .table("albums", "records").unwrap()
//!     .attr("albums", "name", "records", "title").unwrap()
//!     .finish();
//! let scenario = IntegrationScenario::single_source("demo", source, target, corrs).unwrap();
//!
//! let estimator = Estimator::with_default_modules(EstimationConfig::default());
//! let estimate = estimator.estimate(&scenario).unwrap();
//! assert!(estimate.total_minutes() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod benefit;
pub mod calibration;
pub mod config;
pub mod effort;
pub mod estimate;
pub mod framework;
pub mod modules;
pub mod report;
pub mod settings;
pub mod task;

pub use api::{
    provenance, EstimateRequest, EstimateResponse, ScenarioInfo, ScenarioProvider,
    ScenarioRegistry,
};
pub use baseline::{AttributeCountingEstimator, HardenTask, HARDEN_TASKS};
pub use benefit::{cost_benefit_curve, CostBenefitPoint};
pub use calibration::{calibrate_scales, rmse, CalibratedScales, ScenarioOutcome};
pub use config::EstimationConfig;
pub use effort::{EffortFunction, EffortModel};
pub use efes_exec::{ExecutionMode, ExecutionPolicy, THREADS_ENV_VAR};
pub use estimate::{
    EffortEstimate, EstimatedTask, Estimator, ModuleSelection, PipelineTimings, StageTiming,
};
pub use framework::{AssessContext, EstimationModule, Finding, MetricValue, ModuleError, ModuleReport};
pub use settings::{ExecutionSettings, Quality, ToolSupport};
pub use task::{Task, TaskCategory, TaskParams, TaskType};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::api::{EstimateRequest, EstimateResponse, ScenarioRegistry};
    pub use crate::config::EstimationConfig;
    pub use crate::effort::{EffortFunction, EffortModel};
    pub use efes_exec::{ExecutionMode, ExecutionPolicy};
    pub use crate::estimate::{EffortEstimate, Estimator, ModuleSelection, PipelineTimings};
    pub use crate::framework::{AssessContext, EstimationModule, Finding, ModuleReport};
    pub use crate::settings::{ExecutionSettings, Quality};
    pub use crate::task::{Task, TaskCategory, TaskParams, TaskType};
}
