//! The attribute-counting baseline (Harden 2010, paper Table 1 and §6.2).
//!
//! *"For the latter he uses the number of source attributes and assigns
//! for each attribute a weighted set of tasks (Table 1). In sum, he
//! calculates slightly more than 8 hours of work for each source
//! attribute."*

use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardenTask {
    /// Task name.
    pub name: &'static str,
    /// Hours per source attribute.
    pub hours_per_attribute: f64,
    /// Whether the task is part of the *development of data
    /// transformations* (mapping-like) or surrounding work — used to
    /// split the baseline's estimate into mapping vs cleaning shares as
    /// Figures 6/7 plot it.
    pub is_mapping: bool,
}

/// Table 1 verbatim.
pub const HARDEN_TASKS: &[HardenTask] = &[
    HardenTask { name: "Requirements and Mapping", hours_per_attribute: 2.0, is_mapping: true },
    HardenTask { name: "High Level Design", hours_per_attribute: 0.1, is_mapping: true },
    HardenTask { name: "Technical Design", hours_per_attribute: 0.5, is_mapping: true },
    HardenTask { name: "Data Modeling", hours_per_attribute: 1.0, is_mapping: true },
    HardenTask { name: "Development and Unit Testing", hours_per_attribute: 1.0, is_mapping: false },
    HardenTask { name: "System Test", hours_per_attribute: 0.5, is_mapping: false },
    HardenTask { name: "User Acceptance Testing", hours_per_attribute: 0.25, is_mapping: false },
    HardenTask { name: "Production Support", hours_per_attribute: 0.2, is_mapping: false },
    HardenTask { name: "Tech Lead Support", hours_per_attribute: 0.5, is_mapping: false },
    HardenTask { name: "Project Management Support", hours_per_attribute: 0.5, is_mapping: false },
    HardenTask { name: "Product Owner Support", hours_per_attribute: 0.5, is_mapping: false },
    HardenTask { name: "Subject Matter Expert", hours_per_attribute: 0.5, is_mapping: false },
    HardenTask { name: "Data Steward Support", hours_per_attribute: 0.5, is_mapping: false },
];

/// Total hours per attribute in Table 1 (≈ 8.05).
pub fn harden_total_hours_per_attribute() -> f64 {
    HARDEN_TASKS.iter().map(|t| t.hours_per_attribute).sum()
}

/// A baseline estimate, split as the figures plot it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineEstimate {
    /// Source attributes counted.
    pub attributes: usize,
    /// Estimated mapping minutes.
    pub mapping_minutes: f64,
    /// Estimated cleaning minutes.
    pub cleaning_minutes: f64,
}

impl BaselineEstimate {
    /// Total minutes.
    pub fn total_minutes(&self) -> f64 {
        self.mapping_minutes + self.cleaning_minutes
    }
}

/// The attribute-counting estimator.
///
/// The raw Harden model predicts `8.05 h × #attributes` — three orders of
/// magnitude above the case studies' measured minutes (it was built for
/// enterprise ETL programmes). Like the paper (§6.2), we therefore
/// *calibrate* it: the per-attribute minute rates are fitted on the
/// training domain by [`crate::calibration`], preserving Table 1's
/// mapping/cleaning proportions as the split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeCountingEstimator {
    /// Minutes of mapping effort per source attribute.
    pub mapping_minutes_per_attribute: f64,
    /// Minutes of cleaning effort per source attribute.
    pub cleaning_minutes_per_attribute: f64,
}

impl AttributeCountingEstimator {
    /// The uncalibrated model: Table 1's hours converted to minutes.
    pub fn uncalibrated() -> Self {
        let mapping: f64 = HARDEN_TASKS
            .iter()
            .filter(|t| t.is_mapping)
            .map(|t| t.hours_per_attribute)
            .sum();
        let cleaning: f64 = HARDEN_TASKS
            .iter()
            .filter(|t| !t.is_mapping)
            .map(|t| t.hours_per_attribute)
            .sum();
        AttributeCountingEstimator {
            mapping_minutes_per_attribute: mapping * 60.0,
            cleaning_minutes_per_attribute: cleaning * 60.0,
        }
    }

    /// A calibrated model with a given total minute rate, keeping
    /// Table 1's mapping share (≈ 44.7 %).
    pub fn with_total_rate(minutes_per_attribute: f64) -> Self {
        let total = harden_total_hours_per_attribute();
        let mapping_share = HARDEN_TASKS
            .iter()
            .filter(|t| t.is_mapping)
            .map(|t| t.hours_per_attribute)
            .sum::<f64>()
            / total;
        AttributeCountingEstimator {
            mapping_minutes_per_attribute: minutes_per_attribute * mapping_share,
            cleaning_minutes_per_attribute: minutes_per_attribute * (1.0 - mapping_share),
        }
    }

    /// Count the source attributes of a scenario — the model's only
    /// input. Attributes of tables without any correspondence do not
    /// reach the target and are not counted (the kindest reading of the
    /// baseline).
    pub fn counted_attributes(scenario: &IntegrationScenario) -> usize {
        scenario
            .iter_sources()
            .map(|(sid, db)| {
                let mapped_tables: std::collections::BTreeSet<_> = scenario
                    .correspondences
                    .table_correspondences(sid)
                    .map(|(st, _)| st)
                    .chain(
                        scenario
                            .correspondences
                            .attribute_correspondences(sid)
                            .map(|(sa, _)| sa.table),
                    )
                    .collect();
                mapped_tables
                    .iter()
                    .map(|t| db.schema.table(*t).arity())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Estimate a scenario.
    pub fn estimate(&self, scenario: &IntegrationScenario) -> BaselineEstimate {
        self.estimate_attributes(Self::counted_attributes(scenario))
    }

    /// Estimate from a pre-counted attribute number.
    pub fn estimate_attributes(&self, attributes: usize) -> BaselineEstimate {
        BaselineEstimate {
            attributes,
            mapping_minutes: self.mapping_minutes_per_attribute * attributes as f64,
            cleaning_minutes: self.cleaning_minutes_per_attribute * attributes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    #[test]
    fn table1_sums_to_slightly_more_than_8_hours() {
        let total = harden_total_hours_per_attribute();
        assert!((total - 8.05).abs() < 1e-9, "{total}");
    }

    #[test]
    fn uncalibrated_model_matches_table1() {
        let m = AttributeCountingEstimator::uncalibrated();
        assert!((m.mapping_minutes_per_attribute - 3.6 * 60.0).abs() < 1e-9);
        assert!(
            (m.mapping_minutes_per_attribute + m.cleaning_minutes_per_attribute - 8.05 * 60.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn counting_ignores_unmapped_tables() {
        let source = DatabaseBuilder::new("s")
            .table("used", |t| t.attr("a", DataType::Text).attr("b", DataType::Text))
            .table("unused", |t| t.attr("c", DataType::Text))
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("t")
            .table("tt", |t| t.attr("x", DataType::Text))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .attr("used", "a", "tt", "x")
            .unwrap()
            .finish();
        let sc = efes_relational::IntegrationScenario::single_source("x", source, target, corrs)
            .unwrap();
        assert_eq!(AttributeCountingEstimator::counted_attributes(&sc), 2);
        let est = AttributeCountingEstimator::with_total_rate(10.0).estimate(&sc);
        assert!((est.total_minutes() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_is_flat_in_data_problems() {
        // The baseline's defining weakness: it cannot see data-level
        // heterogeneity, so any two scenarios with equal attribute counts
        // estimate identically.
        let m = AttributeCountingEstimator::with_total_rate(8.0);
        let mk = |vals: Vec<efes_relational::Value>| {
            let source = DatabaseBuilder::new("s")
                .table("t", |t| t.attr("a", DataType::Text))
                .rows("t", vals.into_iter().map(|v| vec![v]).collect())
                .build()
                .unwrap();
            let target = DatabaseBuilder::new("g")
                .table("t", |t| t.attr("a", DataType::Text))
                .build()
                .unwrap();
            let corrs = CorrespondenceBuilder::new(&source, &target)
                .attr("t", "a", "t", "a")
                .unwrap()
                .finish();
            efes_relational::IntegrationScenario::single_source("x", source, target, corrs)
                .unwrap()
        };
        let clean = mk(vec!["a".into(), "b".into()]);
        let dirty = mk(vec![efes_relational::Value::Null, "%%%garbage%%%".into()]);
        assert_eq!(
            m.estimate(&clean).total_minutes(),
            m.estimate(&dirty).total_minutes()
        );
    }
}
