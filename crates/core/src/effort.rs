//! Effort-calculation functions (paper §3.4 and Table 9).
//!
//! *"The user specifies in advance for each task type an effort-
//! calculation function that can incorporate task parameters. [...] The
//! framework uses these functions to estimate the effort for each of the
//! tasks."*

use crate::settings::{ExecutionSettings, ToolSupport};
use crate::task::{Task, TaskParams, TaskType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A parameterised effort-calculation function, in minutes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EffortFunction {
    /// A flat cost, e.g. `Reject tuples = 5` (one SQL statement handles
    /// any number of tuples).
    Constant(f64),
    /// `per · #repetitions`, e.g. `Aggregate values = 3·#repetitions`.
    PerRepetition(f64),
    /// `per · #values`, e.g. `Add values = 2·#values`.
    PerValue(f64),
    /// `per · #dist-vals`, e.g. `Generalize values = 0.5·#dist-vals`.
    PerDistinctValue(f64),
    /// Table 9's `Convert values`: a flat cost below a distinct-count
    /// threshold (enumerable by hand / CASE expression), per-distinct
    /// above it.
    Thresholded {
        /// Distinct-value threshold.
        threshold: u64,
        /// Cost when `#dist-vals < threshold`.
        below: f64,
        /// Per-distinct cost otherwise.
        per_distinct_above: f64,
    },
    /// Table 9's `Write mapping = 3·#FKs + 3·#PKs + #atts + 3·#tables`.
    MappingFormula {
        /// Minutes per source table to understand and join.
        per_table: f64,
        /// Minutes per attribute to copy.
        per_attr: f64,
        /// Minutes per primary key to generate.
        per_pk: f64,
        /// Minutes per foreign key to establish.
        per_fk: f64,
    },
    /// No effort (e.g. `Delete detached values = 0`: simply not
    /// integrating them).
    Zero,
}

impl EffortFunction {
    /// Evaluate the function on a task's parameters.
    pub fn evaluate(&self, p: &TaskParams) -> f64 {
        match self {
            EffortFunction::Constant(c) => *c,
            EffortFunction::PerRepetition(per) => per * p.repetitions as f64,
            EffortFunction::PerValue(per) => per * p.values as f64,
            EffortFunction::PerDistinctValue(per) => per * p.distinct_values as f64,
            EffortFunction::Thresholded {
                threshold,
                below,
                per_distinct_above,
            } => {
                if p.distinct_values < *threshold {
                    *below
                } else {
                    per_distinct_above * p.distinct_values as f64
                }
            }
            EffortFunction::MappingFormula {
                per_table,
                per_attr,
                per_pk,
                per_fk,
            } => {
                per_table * p.tables as f64
                    + per_attr * p.attributes as f64
                    + per_pk * p.pks as f64
                    + per_fk * p.fks as f64
            }
            EffortFunction::Zero => 0.0,
        }
    }

    /// Human-readable rendering for the Table 9 regeneration.
    pub fn describe(&self) -> String {
        match self {
            EffortFunction::Constant(c) => format!("{c}"),
            EffortFunction::PerRepetition(per) => format!("{per} · #repetitions"),
            EffortFunction::PerValue(per) => format!("{per} · #values"),
            EffortFunction::PerDistinctValue(per) => format!("{per} · #dist-vals"),
            EffortFunction::Thresholded {
                threshold,
                below,
                per_distinct_above,
            } => format!(
                "(if #dist-vals < {threshold}) {below}, (else) {per_distinct_above} · #dist-vals"
            ),
            EffortFunction::MappingFormula {
                per_table,
                per_attr,
                per_pk,
                per_fk,
            } => format!(
                "{per_fk} · #FKs + {per_pk} · #PKs + {per_attr} · #atts + {per_table} · #tables"
            ),
            EffortFunction::Zero => "0".to_owned(),
        }
    }
}

/// The effort model: one effort function per task type, per-category
/// calibration scales, and the execution-settings multiplier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EffortModel {
    functions: BTreeMap<TaskType, EffortFunction>,
    /// Calibration scale per task category (fitted by cross-validation in
    /// the experiments; 1.0 = uncalibrated).
    pub scales: BTreeMap<crate::task::TaskCategory, f64>,
}

impl EffortModel {
    /// The effort-calculation functions of Table 9 — the experimental
    /// configuration of §6.1 (manual SQL + pgAdmin, SQL-fluent user who
    /// has not seen the data).
    pub fn table9() -> Self {
        use EffortFunction::*;
        use TaskType::*;
        let mut functions = BTreeMap::new();
        functions.insert(AggregateValues, PerRepetition(3.0));
        functions.insert(
            ConvertValues,
            Thresholded {
                threshold: 120,
                below: 30.0,
                per_distinct_above: 0.25,
            },
        );
        functions.insert(GeneralizeValues, PerDistinctValue(0.5));
        functions.insert(RefineValues, PerValue(0.5));
        functions.insert(DropValues, Constant(10.0));
        functions.insert(AddValues, PerValue(2.0));
        functions.insert(CreateEnclosingTuples, Constant(10.0));
        functions.insert(DeleteDetachedValues, Zero);
        functions.insert(RejectTuples, Constant(5.0));
        functions.insert(KeepAnyValue, Constant(5.0));
        functions.insert(AddTuples, Constant(5.0));
        functions.insert(AggregateTuples, Constant(5.0));
        functions.insert(DeleteDanglingValues, Constant(5.0));
        functions.insert(AddReferencedValues, Constant(5.0));
        functions.insert(DeleteDanglingTuples, Constant(5.0));
        functions.insert(UnlinkAllButOneTuple, Constant(5.0));
        functions.insert(SetValuesToNull, Constant(5.0));
        // Table 5 prices "Merge values ×503" at 15 minutes: one
        // aggregation script regardless of repetition count.
        functions.insert(MergeValues, Constant(15.0));
        functions.insert(
            WriteMapping,
            MappingFormula {
                per_table: 3.0,
                per_attr: 1.0,
                per_pk: 3.0,
                per_fk: 3.0,
            },
        );
        EffortModel {
            functions,
            scales: BTreeMap::new(),
        }
    }

    /// Adapt the model to the available tooling: a mapping tool collapses
    /// `Write mapping` to a constant (paper Example 3.8's
    /// `effort = 2 mins`).
    pub fn for_settings(settings: &ExecutionSettings) -> Self {
        let mut m = Self::table9();
        if settings.tools == ToolSupport::MappingTool {
            m.set(TaskType::WriteMapping, EffortFunction::Constant(2.0));
        }
        m
    }

    /// Override one task type's function.
    pub fn set(&mut self, task_type: TaskType, f: EffortFunction) {
        self.functions.insert(task_type, f);
    }

    /// The function for a task type, if configured.
    pub fn function(&self, task_type: &TaskType) -> Option<&EffortFunction> {
        self.functions.get(task_type)
    }

    /// All configured functions in stable order (Table 9 regeneration).
    pub fn iter(&self) -> impl Iterator<Item = (&TaskType, &EffortFunction)> {
        self.functions.iter()
    }

    /// Price a task in minutes: base function × category scale ×
    /// settings multiplier. Unconfigured task types price at 0 — custom
    /// modules must register their functions.
    pub fn minutes_for(&self, task: &Task, settings: &ExecutionSettings) -> f64 {
        let base = self
            .functions
            .get(&task.task_type)
            .map(|f| f.evaluate(&task.params))
            .unwrap_or(0.0);
        let scale = self.scales.get(&task.category).copied().unwrap_or(1.0);
        base * scale * settings.multiplier()
    }
}

impl Default for EffortModel {
    fn default() -> Self {
        Self::table9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Quality;
    use crate::task::TaskCategory;

    fn settings() -> ExecutionSettings {
        ExecutionSettings::default()
    }

    #[test]
    fn table5_effort_values_reproduce() {
        let m = EffortModel::table9();
        let s = settings();
        // Add tuples (records) ×102 → 5 mins.
        let add_tuples = Task::new(
            TaskType::AddTuples,
            Quality::HighQuality,
            TaskParams::repeated(102),
            "records",
            "structure",
        );
        assert_eq!(m.minutes_for(&add_tuples, &s), 5.0);
        // Add missing values (title) ×102 → 204 mins (2·#values).
        let add_values = Task::new(
            TaskType::AddValues,
            Quality::HighQuality,
            TaskParams::repeated(102),
            "title",
            "structure",
        );
        assert_eq!(m.minutes_for(&add_values, &s), 204.0);
        // Merge values ×503 → 15 mins.
        let merge = Task::new(
            TaskType::MergeValues,
            Quality::HighQuality,
            TaskParams::repeated(503),
            "title",
            "structure",
        );
        assert_eq!(m.minutes_for(&merge, &s), 15.0);
        // Table 5 total: 224 mins.
        assert_eq!(
            m.minutes_for(&add_tuples, &s) + m.minutes_for(&add_values, &s) + m.minutes_for(&merge, &s),
            224.0
        );
    }

    #[test]
    fn example_3_8_mapping_effort() {
        // Example 3.8: effort = 3·tables + 1·attributes + 3·PKs over two
        // connections (records: 3 tables/2 attrs/1 PK, tracks: 3/2/0)
        // → 25 minutes total, FKs not counted in the example.
        let m = EffortModel::table9();
        let s = settings();
        let records = Task::new(
            TaskType::WriteMapping,
            Quality::HighQuality,
            TaskParams {
                tables: 3,
                attributes: 2,
                pks: 1,
                ..TaskParams::default()
            },
            "records",
            "mapping",
        );
        let tracks = Task::new(
            TaskType::WriteMapping,
            Quality::HighQuality,
            TaskParams {
                tables: 3,
                attributes: 2,
                ..TaskParams::default()
            },
            "tracks",
            "mapping",
        );
        assert_eq!(m.minutes_for(&records, &s) + m.minutes_for(&tracks, &s), 25.0);
    }

    #[test]
    fn mapping_tool_collapses_write_mapping() {
        let s = ExecutionSettings {
            tools: ToolSupport::MappingTool,
            ..ExecutionSettings::default()
        };
        let m = EffortModel::for_settings(&s);
        let t = Task::new(
            TaskType::WriteMapping,
            Quality::HighQuality,
            TaskParams {
                tables: 30,
                attributes: 100,
                pks: 5,
                fks: 9,
                ..TaskParams::default()
            },
            "x",
            "mapping",
        );
        assert_eq!(m.minutes_for(&t, &s), 2.0);
    }

    #[test]
    fn convert_values_threshold() {
        let f = EffortFunction::Thresholded {
            threshold: 120,
            below: 30.0,
            per_distinct_above: 0.25,
        };
        assert_eq!(
            f.evaluate(&TaskParams {
                distinct_values: 100,
                ..TaskParams::default()
            }),
            30.0
        );
        assert_eq!(
            f.evaluate(&TaskParams {
                distinct_values: 1000,
                ..TaskParams::default()
            }),
            250.0
        );
    }

    #[test]
    fn scales_and_settings_multiply() {
        let mut m = EffortModel::table9();
        m.scales.insert(TaskCategory::CleaningStructure, 0.5);
        let s = ExecutionSettings {
            criticality_factor: 2.0,
            ..ExecutionSettings::default()
        };
        let t = Task::new(
            TaskType::RejectTuples,
            Quality::LowEffort,
            TaskParams::repeated(1),
            "x",
            "structure",
        );
        assert_eq!(m.minutes_for(&t, &s), 5.0 * 0.5 * 2.0);
    }

    #[test]
    fn unknown_custom_task_prices_zero() {
        let m = EffortModel::table9();
        let t = Task::new(
            TaskType::Custom("resolve-duplicates".into()),
            Quality::HighQuality,
            TaskParams::repeated(100),
            "x",
            "custom",
        );
        assert_eq!(m.minutes_for(&t, &settings()), 0.0);
    }

    #[test]
    fn describe_renders_table9_rows() {
        let m = EffortModel::table9();
        let f = m.function(&TaskType::WriteMapping).unwrap();
        assert_eq!(f.describe(), "3 · #FKs + 3 · #PKs + 1 · #atts + 3 · #tables");
        let f = m.function(&TaskType::ConvertValues).unwrap();
        assert!(f.describe().contains("120"));
    }
}
