//! Human-readable rendering of complexity reports and effort estimates —
//! simple fixed-width tables in the style of the paper's Tables 2–8.

use crate::estimate::EffortEstimate;
use crate::framework::ModuleReport;

/// Render a plain-text table from a header and rows.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(n) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.push_str(&" ".repeat(widths[i].saturating_sub(cell.chars().count())));
        }
        line.trim_end().to_owned()
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Render one module's complexity report.
pub fn render_report(report: &ModuleReport) -> String {
    let mut out = format!("== Complexity report: {} ==\n", report.module);
    if report.findings.is_empty() {
        out.push_str("  (no findings)\n");
        return out;
    }
    for f in &report.findings {
        out.push_str(&format!("  [{}] {}\n    {}\n", f.kind, f.location, f.note));
        for (k, v) in &f.metrics {
            out.push_str(&format!("    {k}: {v}\n"));
        }
    }
    out
}

/// Render an effort estimate in the style of Tables 5/8: one row per
/// task, then the total.
pub fn render_estimate(estimate: &EffortEstimate) -> String {
    let rows: Vec<Vec<String>> = estimate
        .tasks
        .iter()
        .map(|t| {
            vec![
                format!("{} ({})", t.task.task_type.label(), t.task.location),
                t.task.params.repetitions.to_string(),
                t.task.category.label().to_owned(),
                format!("{:.0} mins", t.minutes),
            ]
        })
        .collect();
    let mut out = format!("== Effort estimate: {} ==\n", estimate.scenario);
    out.push_str(&text_table(
        &["Task", "Repetitions", "Category", "Effort"],
        &rows,
    ));
    out.push_str(&format!("\nTotal  {:.0} mins\n", estimate.total_minutes()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Finding;

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["Task", "Effort"],
            &[
                vec!["Add tuples".into(), "5 mins".into()],
                vec!["Merge".into(), "15 mins".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Task"));
        assert!(lines[2].contains("Add tuples"));
    }

    #[test]
    fn render_report_includes_metrics() {
        let mut r = ModuleReport::new("structure");
        r.push(Finding::new("structural-conflict", "records→artist", "too many").with_int("violations", 503));
        let s = render_report(&r);
        assert!(s.contains("structural-conflict"));
        assert!(s.contains("violations: 503"));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let s = render_report(&ModuleReport::new("values"));
        assert!(s.contains("no findings"));
    }
}

/// The schema-difficulty map — the paper's §1/§3.3 visualization
/// application: *"support for data visualization, i.e., highlight parts
/// of the schemas that are hard to integrate."*
///
/// Aggregates every module's findings per location and renders the
/// locations ranked by a difficulty score (violation counts weigh by
/// magnitude; heterogeneities by 1 − fit).
pub fn render_difficulty_map(reports: &[ModuleReport]) -> String {
    use std::collections::BTreeMap;
    let mut scores: BTreeMap<String, (f64, Vec<String>)> = BTreeMap::new();
    for report in reports {
        for f in &report.findings {
            let weight = if let Some(v) = f.int("violations") {
                (1.0 + v as f64).ln()
            } else if let Some(fit) = f.float("score") {
                // Heterogeneity scores: farther below the 0.9 threshold →
                // harder. Counts (critical rule) score by magnitude.
                if fit > 1.0 {
                    (1.0 + fit).ln()
                } else {
                    1.0 + (0.9 - fit).max(0.0) * 5.0
                }
            } else {
                1.0
            };
            let entry = scores.entry(f.location.clone()).or_default();
            entry.0 += weight;
            entry.1.push(f.note.clone());
        }
    }
    if scores.is_empty() {
        return "== Schema difficulty map ==\n  (no integration problems detected)\n".to_owned();
    }
    let mut ranked: Vec<(String, (f64, Vec<String>))> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1 .0.partial_cmp(&a.1 .0).unwrap_or(std::cmp::Ordering::Equal));
    let max = ranked[0].1 .0.max(1e-9);
    let mut out = String::from("== Schema difficulty map (hardest first) ==\n");
    for (location, (score, notes)) in &ranked {
        let cells = ((score / max) * 24.0).round().max(1.0) as usize;
        out.push_str(&format!(
            "  {:45} {:5.1} |{}\n",
            location,
            score,
            "█".repeat(cells)
        ));
        for n in notes {
            out.push_str(&format!("      · {n}\n"));
        }
    }
    out
}

#[cfg(test)]
mod difficulty_tests {
    use super::*;
    use crate::framework::Finding;

    #[test]
    fn difficulty_map_ranks_by_severity() {
        let mut r = ModuleReport::new("structure");
        r.push(
            Finding::new("structural-conflict", "records.artist", "many artists")
                .with_int("violations", 503),
        );
        r.push(
            Finding::new("structural-conflict", "records.title", "few gaps")
                .with_int("violations", 2),
        );
        let map = render_difficulty_map(&[r]);
        let artist_pos = map.find("records.artist").unwrap();
        let title_pos = map.find("records.title").unwrap();
        assert!(artist_pos < title_pos, "{map}");
        assert!(map.contains('█'));
    }

    #[test]
    fn empty_reports_render_placeholder() {
        let map = render_difficulty_map(&[ModuleReport::new("values")]);
        assert!(map.contains("no integration problems"));
    }
}
