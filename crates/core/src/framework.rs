//! The estimation-module abstraction (paper §3.2, Figure 3).
//!
//! *"It handles different kinds of integration challenges by accepting a
//! dedicated estimation module to cope with each of them independently.
//! Such modularity makes it easier to revise and refine individual
//! modules and establishes the desired extensibility by plugging new
//! ones."*

use crate::config::EstimationConfig;
use crate::task::Task;
use efes_exec::{ExecutionMode, RunContext};
use efes_profiling::ProfileCache;
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A metric value inside a finding — keeps complexity reports structured
/// and serialisable without fixing their shape (*"There is no formal
/// definition for such a report; rather, it can be tailored to the
/// specific, needed complexity indicators."*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// An integer count (violations, repetitions, tables, …).
    Int(u64),
    /// A real-valued score (fit values, ratios).
    Float(f64),
    /// A textual annotation (cardinalities, patterns).
    Text(String),
    /// A boolean flag (e.g. "primary key needed").
    Flag(bool),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v:.3}"),
            MetricValue::Text(v) => write!(f, "{v}"),
            MetricValue::Flag(v) => write!(f, "{}", if *v { "yes" } else { "no" }),
        }
    }
}

/// One entry of a data complexity report: a concrete, located integration
/// problem (the paper's granularity requirement: *"it is important to
/// know which source and/or target attributes are cause of problems and
/// how"*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Machine-readable kind, e.g. `structural-conflict`,
    /// `value-heterogeneity`, `mapping-connection`.
    pub kind: String,
    /// Where the problem sits, e.g. `records ← albums` or
    /// `length → duration`.
    pub location: String,
    /// Structured metrics (violation counts, fit values, …).
    pub metrics: BTreeMap<String, MetricValue>,
    /// One-line human-readable description.
    pub note: String,
}

impl Finding {
    /// Create a finding.
    pub fn new(kind: impl Into<String>, location: impl Into<String>, note: impl Into<String>) -> Self {
        Finding {
            kind: kind.into(),
            location: location.into(),
            metrics: BTreeMap::new(),
            note: note.into(),
        }
    }

    /// Attach an integer metric (builder style).
    pub fn with_int(mut self, key: &str, value: u64) -> Self {
        self.metrics.insert(key.to_owned(), MetricValue::Int(value));
        self
    }

    /// Attach a float metric.
    pub fn with_float(mut self, key: &str, value: f64) -> Self {
        self.metrics.insert(key.to_owned(), MetricValue::Float(value));
        self
    }

    /// Attach a text metric.
    pub fn with_text(mut self, key: &str, value: impl Into<String>) -> Self {
        self.metrics
            .insert(key.to_owned(), MetricValue::Text(value.into()));
        self
    }

    /// Attach a boolean metric.
    pub fn with_flag(mut self, key: &str, value: bool) -> Self {
        self.metrics.insert(key.to_owned(), MetricValue::Flag(value));
        self
    }

    /// Read an integer metric.
    pub fn int(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(MetricValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read a float metric.
    pub fn float(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(MetricValue::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read a flag metric.
    pub fn flag(&self, key: &str) -> Option<bool> {
        match self.metrics.get(key) {
            Some(MetricValue::Flag(v)) => Some(*v),
            _ => None,
        }
    }

    /// Read a text metric.
    pub fn text(&self, key: &str) -> Option<&str> {
        match self.metrics.get(key) {
            Some(MetricValue::Text(v)) => Some(v),
            _ => None,
        }
    }
}

/// The data complexity report of one module for one scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleReport {
    /// The producing module's name.
    pub module: String,
    /// The findings, in deterministic order.
    pub findings: Vec<Finding>,
}

impl ModuleReport {
    /// An empty report for a module.
    pub fn new(module: impl Into<String>) -> Self {
        ModuleReport {
            module: module.into(),
            findings: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Findings of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }
}

/// Errors raised by estimation modules.
#[derive(Debug, Clone)]
pub enum ModuleError {
    /// The scenario is malformed for this module.
    InvalidScenario(String),
    /// The module's planner could not produce a consistent plan (e.g. an
    /// infinite cleaning loop, §4.2).
    PlanningFailed(String),
    /// The run was cancelled (deadline expiry or caller abandonment)
    /// while this stage was executing; the payload names the stage. Not
    /// a failure of the scenario — the caller stopped wanting the
    /// answer, and the stage aborted at its next checkpoint.
    Cancelled(String),
}

impl ModuleError {
    /// A [`ModuleError::Cancelled`] attributed to `stage`.
    pub fn cancelled(stage: impl Into<String>) -> Self {
        ModuleError::Cancelled(stage.into())
    }

    /// Whether this error is a cooperative cancellation (as opposed to
    /// a genuine scenario/planning failure).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ModuleError::Cancelled(_))
    }
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::InvalidScenario(m) => write!(f, "invalid scenario: {m}"),
            ModuleError::PlanningFailed(m) => write!(f, "planning failed: {m}"),
            ModuleError::Cancelled(stage) => write!(f, "cancelled in stage {stage}"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// Shared per-run state handed to modules during assessment: the column
/// profile cache (so modules stop recomputing identical statistics) and
/// the execution mode (so modules can fan their inner loops out over the
/// same thread budget the estimator uses).
#[derive(Debug, Clone)]
pub struct AssessContext {
    /// Memoized per-column [`efes_profiling::AttributeProfile`]s, shared
    /// by every module of one estimation run.
    pub cache: Arc<ProfileCache>,
    /// How modules should execute their independent inner units.
    pub mode: ExecutionMode,
    /// Cancellation and deadline scope of the run. Modules poll this at
    /// checkpoints inside long loops and bail with
    /// [`ModuleError::Cancelled`] when it fires; the unbounded default
    /// never fires, so direct callers see no behaviour change.
    pub run: RunContext,
}

impl AssessContext {
    /// A standalone context: fresh cache, sequential execution, no
    /// cancellation. Used when a module's `assess` is called directly
    /// rather than via the estimator.
    pub fn standalone() -> Self {
        AssessContext {
            cache: Arc::new(ProfileCache::new()),
            mode: ExecutionMode::Sequential,
            run: RunContext::unbounded(),
        }
    }

    /// A context with a fresh cache under the given mode.
    pub fn with_mode(mode: ExecutionMode) -> Self {
        AssessContext {
            cache: Arc::new(ProfileCache::new()),
            mode,
            run: RunContext::unbounded(),
        }
    }

    /// Scope this context to the given run (builder style).
    pub fn with_run(mut self, run: RunContext) -> Self {
        self.run = run;
        self
    }

    /// Map a cancellation from `run` into a [`ModuleError::Cancelled`]
    /// attributed to `stage`.
    pub fn check(&self, stage: &str) -> Result<(), ModuleError> {
        self.run.check().map_err(|_| ModuleError::cancelled(stage))
    }
}

/// An estimation module: a *data complexity detector* plus a *task
/// planner* (Figure 3).
///
/// Custom modules implement this trait and are registered with the
/// [`crate::estimate::Estimator`]; the `examples/custom_module.rs`
/// example plugs a duplicate-detection effort module this way.
///
/// `Send + Sync` is required so the estimator can assess modules on
/// worker threads; modules are stateless detectors in practice, so the
/// bound costs implementors nothing.
pub trait EstimationModule: Send + Sync {
    /// Stable module name, used in reports and task attribution.
    fn name(&self) -> &str;

    /// Phase 1 — complexity assessment: extract complexity indicators
    /// from the scenario. Must not depend on execution settings or
    /// expected quality (the paper keeps this phase objective).
    fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError>;

    /// Phase 1, context-aware variant: like [`assess`](Self::assess) but
    /// with access to the run's shared [`AssessContext`]. Modules that
    /// profile columns or fan out inner loops override this; the default
    /// ignores the context and delegates to `assess`, so existing custom
    /// modules keep working unchanged. The report must not depend on
    /// `ctx` — the context only changes *how fast* it is produced.
    fn assess_with(
        &self,
        scenario: &IntegrationScenario,
        ctx: &AssessContext,
    ) -> Result<ModuleReport, ModuleError> {
        let _ = ctx;
        self.assess(scenario)
    }

    /// Phase 2 — task planning: convert the module's own report into
    /// concrete tasks under the given configuration.
    fn plan(
        &self,
        scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError>;

    /// Phase 2, context-aware variant: like [`plan`](Self::plan) but with
    /// access to the run's [`AssessContext`], so planners that re-derive
    /// expensive evidence (e.g. conflict detection over large instances)
    /// can honour cancellation checkpoints. The default ignores the
    /// context and delegates to `plan`, so existing custom modules keep
    /// working unchanged. The plan must not depend on `ctx`.
    fn plan_with(
        &self,
        scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
        ctx: &AssessContext,
    ) -> Result<Vec<Task>, ModuleError> {
        let _ = ctx;
        self.plan(scenario, report, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_metrics_round_trip() {
        let f = Finding::new("structural-conflict", "records→artist", "too many artists")
            .with_int("violations", 503)
            .with_float("fit", 0.42)
            .with_flag("primary-key", true)
            .with_text("prescribed", "1");
        assert_eq!(f.int("violations"), Some(503));
        assert_eq!(f.float("fit"), Some(0.42));
        assert_eq!(f.flag("primary-key"), Some(true));
        assert_eq!(f.text("prescribed"), Some("1"));
        assert_eq!(f.int("missing"), None);
        assert_eq!(f.int("fit"), None); // wrong type reads as None
    }

    #[test]
    fn report_filters_by_kind() {
        let mut r = ModuleReport::new("test");
        r.push(Finding::new("a", "x", ""));
        r.push(Finding::new("b", "y", ""));
        r.push(Finding::new("a", "z", ""));
        assert_eq!(r.of_kind("a").count(), 2);
        assert_eq!(r.of_kind("b").count(), 1);
        assert_eq!(r.of_kind("c").count(), 0);
    }

    #[test]
    fn metric_display() {
        assert_eq!(MetricValue::Int(7).to_string(), "7");
        assert_eq!(MetricValue::Flag(false).to_string(), "no");
        assert_eq!(MetricValue::Float(0.5).to_string(), "0.500");
    }
}
