//! Execution settings and expected result quality (paper §3.4).

use serde::{Deserialize, Serialize};

pub use efes_csg::Quality;

/// Level of tool support available to the integration practitioner.
///
/// Paper Example 3.6/3.8: *"if a tool can generate this mapping
/// automatically based on the correspondences (e.g., \[18\]), then a
/// constant value, such as effort = 2 mins, can reflect this
/// circumstance."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ToolSupport {
    /// Manual SQL + a basic admin tool — the experimental setup of §6.1.
    ManualSql,
    /// A second-generation mapping tool (++Spicy-class) generates
    /// executable mappings from correspondences.
    MappingTool,
}

/// The execution settings of §3.4 (ii): *"the circumstances under which
/// the data integration shall be conducted"*.
///
/// All scalar factors are multipliers on estimated minutes; 1.0 is the
/// calibration baseline (an SQL-fluent practitioner who has not seen the
/// datasets, integrating non-critical data — the paper's own setup).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionSettings {
    /// Practitioner expertise: < 1.0 for experts, > 1.0 for novices.
    pub expertise_factor: f64,
    /// Familiarity with the data: > 1.0 when the data is unknown.
    pub familiarity_factor: f64,
    /// Criticality of errors: *"integrating medical prescriptions
    /// requires more attention (and therefore effort) than integrating
    /// music tracks"*.
    pub criticality_factor: f64,
    /// Available tooling.
    pub tools: ToolSupport,
}

impl Default for ExecutionSettings {
    fn default() -> Self {
        ExecutionSettings {
            expertise_factor: 1.0,
            familiarity_factor: 1.0,
            criticality_factor: 1.0,
            tools: ToolSupport::ManualSql,
        }
    }
}

impl ExecutionSettings {
    /// The combined multiplier applied to every task's base minutes.
    pub fn multiplier(&self) -> f64 {
        self.expertise_factor * self.familiarity_factor * self.criticality_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_neutral() {
        assert_eq!(ExecutionSettings::default().multiplier(), 1.0);
    }

    #[test]
    fn factors_multiply() {
        let s = ExecutionSettings {
            expertise_factor: 2.0,
            familiarity_factor: 1.5,
            criticality_factor: 2.0,
            tools: ToolSupport::ManualSql,
        };
        assert!((s.multiplier() - 6.0).abs() < 1e-12);
    }
}
