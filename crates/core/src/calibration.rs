//! Calibration and evaluation: least-squares scale fitting and the
//! root-mean-square error of §6.2.
//!
//! *"To obtain fair calibrations of EFES and this baseline model, we
//! employed cross validation: We used the effort measurements from the
//! bibliographic domain to calibrate the parameters [...] for the
//! estimation of the music domain scenarios, and vice versa."*

use crate::task::TaskCategory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One scenario's outcome: estimated category breakdown vs measured
/// category breakdown (in minutes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name (e.g. `"s1-s2 (high qual.)"`).
    pub name: String,
    /// Estimated minutes per category (uncalibrated).
    pub estimated: BTreeMap<TaskCategory, f64>,
    /// Measured minutes per category (ground truth).
    pub measured: BTreeMap<TaskCategory, f64>,
}

impl ScenarioOutcome {
    /// Total estimated minutes.
    pub fn estimated_total(&self) -> f64 {
        self.estimated.values().sum()
    }

    /// Total measured minutes.
    pub fn measured_total(&self) -> f64 {
        self.measured.values().sum()
    }
}

/// Fitted per-category scale factors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibratedScales {
    /// Scale per category; missing categories default to 1.0.
    pub scales: BTreeMap<TaskCategory, f64>,
}

impl CalibratedScales {
    /// Apply the scales to an estimated breakdown.
    pub fn apply(&self, estimated: &BTreeMap<TaskCategory, f64>) -> f64 {
        estimated
            .iter()
            .map(|(c, v)| v * self.scales.get(c).copied().unwrap_or(1.0))
            .sum()
    }
}

/// Fit one scale per category by least squares over the training
/// outcomes: `s_c = Σ m_i·e_i / Σ e_i²` minimises
/// `Σ (m_i − s·e_i)²` per category. Categories without signal keep 1.0.
pub fn calibrate_scales(training: &[ScenarioOutcome]) -> CalibratedScales {
    let mut num: BTreeMap<TaskCategory, f64> = BTreeMap::new();
    let mut den: BTreeMap<TaskCategory, f64> = BTreeMap::new();
    for o in training {
        for (c, e) in &o.estimated {
            let m = o.measured.get(c).copied().unwrap_or(0.0);
            *num.entry(*c).or_insert(0.0) += m * e;
            *den.entry(*c).or_insert(0.0) += e * e;
        }
    }
    let mut scales = BTreeMap::new();
    for (c, d) in den {
        if d > 1e-9 {
            scales.insert(c, (num[&c] / d).max(0.0));
        }
    }
    CalibratedScales { scales }
}

/// The paper's evaluation metric (§6.2):
///
/// ```text
/// rmse = sqrt( Σ_s ((measured(s) − estimated(s)) / measured(s))² / #scenarios )
/// ```
///
/// `pairs` holds `(measured, estimated)` totals per scenario.
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let sum: f64 = pairs
        .iter()
        .map(|(measured, estimated)| {
            if *measured == 0.0 {
                // A zero-effort scenario estimated as zero contributes
                // nothing; any estimate against zero measured effort is
                // an infinite relative error — cap it at 1 per scenario.
                if *estimated == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                ((measured - estimated) / measured).powi(2)
            }
        })
        .sum();
    (sum / pairs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, est: &[(TaskCategory, f64)], meas: &[(TaskCategory, f64)]) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.into(),
            estimated: est.iter().copied().collect(),
            measured: meas.iter().copied().collect(),
        }
    }

    #[test]
    fn perfect_estimates_fit_scale_one() {
        let training = vec![
            outcome(
                "a",
                &[(TaskCategory::Mapping, 30.0)],
                &[(TaskCategory::Mapping, 30.0)],
            ),
            outcome(
                "b",
                &[(TaskCategory::Mapping, 60.0)],
                &[(TaskCategory::Mapping, 60.0)],
            ),
        ];
        let s = calibrate_scales(&training);
        assert!((s.scales[&TaskCategory::Mapping] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn systematic_bias_is_corrected() {
        // Estimates are consistently half the measured effort → scale 2.
        let training = vec![outcome(
            "a",
            &[(TaskCategory::CleaningValues, 10.0)],
            &[(TaskCategory::CleaningValues, 20.0)],
        )];
        let s = calibrate_scales(&training);
        assert!((s.scales[&TaskCategory::CleaningValues] - 2.0).abs() < 1e-9);
        let applied = s.apply(&[(TaskCategory::CleaningValues, 15.0)].into_iter().collect());
        assert!((applied - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_categories_default_to_one() {
        let s = calibrate_scales(&[]);
        let applied = s.apply(&[(TaskCategory::Mapping, 25.0)].into_iter().collect());
        assert!((applied - 25.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Two scenarios: relative errors 0.5 and 0 → rmse = sqrt(0.25/2).
        let pairs = [(100.0, 50.0), (40.0, 40.0)];
        assert!((rmse(&pairs) - (0.25f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_handles_zero_measured() {
        assert_eq!(rmse(&[(0.0, 0.0)]), 0.0);
        assert_eq!(rmse(&[(0.0, 10.0)]), 1.0);
        assert_eq!(rmse(&[]), 0.0);
    }

    #[test]
    fn lower_rmse_means_better() {
        let good = [(100.0, 95.0), (200.0, 210.0)];
        let bad = [(100.0, 300.0), (200.0, 50.0)];
        assert!(rmse(&good) < rmse(&bad));
    }
}
