//! The built-in estimation modules: mapping (§3), structural conflicts
//! (§4), value heterogeneities (§5).

mod mapping;
mod structure;
mod values;

pub use mapping::{MappingConnection, MappingModule};
pub use structure::StructureModule;
pub use values::{HeterogeneityKind, ValueModule};
