//! The structural-conflicts estimation module (paper §4) — wraps the
//! `efes-csg` structure conflict detector and structure repair planner
//! into the framework interface.

use crate::config::EstimationConfig;
use crate::framework::{AssessContext, EstimationModule, Finding, ModuleError, ModuleReport};
use crate::task::{Task, TaskParams, TaskType};
use efes_csg::planner::{PlannedRepair, PlannerOptions, StructureTaskKind};
use efes_csg::{
    database_to_csg_ctx, detect_conflicts_ctx, match_relationships_with, plan_repairs,
    NodeCorrespondences,
};
use efes_exec::{parallel_map, ExecutionMode, RunContext};
use efes_relational::{IntegrationScenario, SourceId};

/// The structure module.
#[derive(Debug, Clone, Default)]
pub struct StructureModule {
    /// Planner options (task adaptations, pessimism, iteration cap).
    pub planner_options: PlannerOptions,
}

/// Map the CSG-level repair task onto the framework task type priced by
/// Table 9. `CreateEnclosingTuples` is priced as Table 5's "Add tuples";
/// `DropValues` as "Delete detached values" (skipping them is free);
/// `AddMissingValues` as "Add values" (2·#values).
fn task_type_of(kind: StructureTaskKind) -> TaskType {
    match kind {
        StructureTaskKind::RejectTuples => TaskType::RejectTuples,
        StructureTaskKind::AddMissingValues => TaskType::AddValues,
        StructureTaskKind::SetValuesToNull => TaskType::SetValuesToNull,
        StructureTaskKind::AggregateTuples => TaskType::AggregateTuples,
        StructureTaskKind::KeepAnyValue => TaskType::KeepAnyValue,
        StructureTaskKind::MergeValues => TaskType::MergeValues,
        StructureTaskKind::DropValues => TaskType::DeleteDetachedValues,
        StructureTaskKind::CreateEnclosingTuples => TaskType::AddTuples,
        StructureTaskKind::DeleteDanglingValues => TaskType::DeleteDanglingValues,
        StructureTaskKind::AddReferencedValues => TaskType::AddReferencedValues,
    }
}

impl StructureModule {
    /// Run detection for every source and return the per-source plans as
    /// well — used directly by the Figure 5 / Table 5 regeneration.
    pub fn plan_for_source(
        &self,
        scenario: &IntegrationScenario,
        source: SourceId,
        config: &EstimationConfig,
    ) -> Result<Vec<PlannedRepair>, ModuleError> {
        self.plan_for_source_ctx(scenario, source, config, &RunContext::unbounded())
    }

    /// Like [`plan_for_source`](Self::plan_for_source), but scoped to
    /// `run`: the conflict re-derivation (the expensive part of planning
    /// on large sources) aborts at its next checkpoint when `run` fires.
    pub fn plan_for_source_ctx(
        &self,
        scenario: &IntegrationScenario,
        source: SourceId,
        config: &EstimationConfig,
        run: &RunContext,
    ) -> Result<Vec<PlannedRepair>, ModuleError> {
        let mode = config.execution.mode();
        let cancelled = || ModuleError::cancelled("structure");
        let target_conv = database_to_csg_ctx(&scenario.target, run).map_err(|_| cancelled())?;
        let source_conv =
            database_to_csg_ctx(scenario.source(source), run).map_err(|_| cancelled())?;
        let corr =
            NodeCorrespondences::from_scenario(scenario, source, &target_conv, &source_conv);
        let matches = match_relationships_with(&target_conv.csg, &source_conv.csg, &corr, mode);
        let conflicts = detect_conflicts_ctx(&target_conv, &source_conv, &matches, run)
            .map_err(|_| ModuleError::cancelled("structure"))?;
        let mut opts = self.planner_options.clone();
        opts.max_iterations = config.max_repair_iterations;
        plan_repairs(&target_conv, &matches, &conflicts, config.quality, &opts)
            .map_err(|e| ModuleError::PlanningFailed(e.to_string()))
    }

    /// Detect conflicts for one source, returning its findings in
    /// deterministic order, or `Err` when `run` is cancelled mid-sweep.
    fn assess_source(
        &self,
        scenario: &IntegrationScenario,
        sid: SourceId,
        mode: ExecutionMode,
        run: &RunContext,
    ) -> Result<Vec<Finding>, ModuleError> {
        let source = scenario.source(sid);
        let cancelled = || ModuleError::cancelled("structure");
        let target_conv = database_to_csg_ctx(&scenario.target, run).map_err(|_| cancelled())?;
        let source_conv = database_to_csg_ctx(source, run).map_err(|_| cancelled())?;
        let corr = NodeCorrespondences::from_scenario(scenario, sid, &target_conv, &source_conv);
        let matches = match_relationships_with(&target_conv.csg, &source_conv.csg, &corr, mode);
        Ok(detect_conflicts_ctx(&target_conv, &source_conv, &matches, run)
            .map_err(|_| ModuleError::cancelled("structure"))?
            .into_iter()
            .map(|c| {
                Finding::new(
                    "structural-conflict",
                    format!("{} [{}]", c.constraint_label, source.name()),
                    format!(
                        "{}: inferred source cardinality {} violates prescribed {}",
                        c.kind.label(),
                        c.inferred,
                        c.prescribed
                    ),
                )
                .with_int("violations", c.violation_count)
                .with_int("too-few", c.too_few)
                .with_int("too-many", c.too_many)
                .with_int("source", sid.0 as u64)
                .with_int("target-rel", c.target_rel as u64)
                .with_text("prescribed", c.prescribed.to_string())
                .with_text("inferred", c.inferred.to_string())
                .with_text("conflict-kind", c.kind.label())
            })
            .collect())
    }
}

impl EstimationModule for StructureModule {
    fn name(&self) -> &str {
        "structure"
    }

    fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
        self.assess_with(scenario, &AssessContext::standalone())
    }

    /// Sources are independent, so they fan out under `ctx.mode`; within
    /// one source the relationship matching fans out as well. Findings
    /// come back in source order, identical to a sequential pass.
    fn assess_with(
        &self,
        scenario: &IntegrationScenario,
        ctx: &AssessContext,
    ) -> Result<ModuleReport, ModuleError> {
        let sids: Vec<SourceId> = scenario.iter_sources().map(|(sid, _)| sid).collect();
        let mut report = ModuleReport::new(self.name());
        for findings in parallel_map(ctx.mode, sids, |sid| {
            self.assess_source(scenario, sid, ctx.mode, &ctx.run)
        }) {
            report.findings.extend(findings?);
        }
        Ok(report)
    }

    fn plan(
        &self,
        scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError> {
        self.plan_with(scenario, report, config, &AssessContext::standalone())
    }

    fn plan_with(
        &self,
        scenario: &IntegrationScenario,
        _report: &ModuleReport,
        config: &EstimationConfig,
        ctx: &AssessContext,
    ) -> Result<Vec<Task>, ModuleError> {
        // The planner re-derives conflicts per source: the repair
        // simulation needs the full match context, not just the findings.
        let mut tasks = Vec::new();
        for (sid, _) in scenario.iter_sources() {
            for repair in self.plan_for_source_ctx(scenario, sid, config, &ctx.run)? {
                let task_type = task_type_of(repair.kind);
                tasks.push(Task::new(
                    task_type,
                    config.quality,
                    TaskParams::repeated(repair.repetitions),
                    repair.location.clone(),
                    self.name(),
                ));
            }
        }
        Ok(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Quality;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    /// Source with 3 multi-artist albums and 2 detached artists, shaped
    /// like the paper's Figure 2: the artist_lists indirection keeps the
    /// source locally valid while producing both conflict kinds.
    fn scenario() -> IntegrationScenario {
        let mut source = DatabaseBuilder::new("src")
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("name", DataType::Text)
                    .attr("artist_list", DataType::Integer)
                    .primary_key(&["id"])
                    .not_null("name")
                    .not_null("artist_list")
                    .foreign_key(&["artist_list"], "artist_lists", &["id"])
            })
            .table("artist_lists", |t| t.attr("id", DataType::Integer).primary_key(&["id"]))
            .table("credits", |t| {
                t.attr("artist_list", DataType::Integer)
                    .attr("artist", DataType::Text)
                    .not_null("artist")
                    .foreign_key(&["artist_list"], "artist_lists", &["id"])
            })
            .build()
            .unwrap();
        for i in 0..3i64 {
            source.insert_by_name("artist_lists", vec![i.into()]).unwrap();
            source
                .insert_by_name(
                    "albums",
                    vec![i.into(), format!("Album {i}").into(), i.into()],
                )
                .unwrap();
            // Two artists per album → multiple-attribute-values conflicts.
            source
                .insert_by_name("credits", vec![i.into(), format!("Artist A{i}").into()])
                .unwrap();
            source
                .insert_by_name("credits", vec![i.into(), format!("Artist B{i}").into()])
                .unwrap();
        }
        // Two artists on lists no album references → detached artists.
        for (list, name) in [(90i64, "Loner 1"), (91, "Loner 2")] {
            source.insert_by_name("artist_lists", vec![list.into()]).unwrap();
            source
                .insert_by_name("credits", vec![list.into(), name.into()])
                .unwrap();
        }
        source.assert_valid();

        let target = DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("title", DataType::Text)
                    .attr("artist", DataType::Text)
                    .not_null("title")
                    .not_null("artist")
            })
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .attr("credits", "artist", "records", "artist")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("structure-test", source, target, corrs).unwrap()
    }

    #[test]
    fn assess_reports_conflicts_with_counts() {
        let m = StructureModule::default();
        let report = m.assess(&scenario()).unwrap();
        assert!(!report.findings.is_empty());
        let multi = report
            .findings
            .iter()
            .find(|f| f.text("conflict-kind") == Some("Multiple attribute values"));
        assert!(multi.is_some(), "{report:?}");
        assert_eq!(multi.unwrap().int("violations"), Some(3));
    }

    #[test]
    fn high_quality_plan_contains_merges() {
        let m = StructureModule::default();
        let s = scenario();
        let report = m.assess(&s).unwrap();
        let cfg = EstimationConfig::for_quality(Quality::HighQuality);
        let tasks = m.plan(&s, &report, &cfg).unwrap();
        assert!(tasks.iter().any(|t| t.task_type == TaskType::MergeValues));
        let merge = tasks
            .iter()
            .find(|t| t.task_type == TaskType::MergeValues)
            .unwrap();
        assert_eq!(merge.params.repetitions, 3);
    }

    #[test]
    fn low_effort_plan_contains_cheap_tasks() {
        let m = StructureModule::default();
        let s = scenario();
        let report = m.assess(&s).unwrap();
        let cfg = EstimationConfig::for_quality(Quality::LowEffort);
        let tasks = m.plan(&s, &report, &cfg).unwrap();
        assert!(tasks.iter().any(|t| t.task_type == TaskType::KeepAnyValue));
        assert!(!tasks.iter().any(|t| t.task_type == TaskType::MergeValues));
    }

    #[test]
    fn identical_schemas_produce_no_tasks() {
        let db = DatabaseBuilder::new("same")
            .table("t", |t| {
                t.attr("id", DataType::Integer)
                    .attr("x", DataType::Text)
                    .primary_key(&["id"])
            })
            .rows(
                "t",
                vec![
                    vec![1.into(), "a".into()],
                    vec![2.into(), "b".into()],
                    vec![3.into(), "c".into()],
                ],
            )
            .build()
            .unwrap();
        let mut target = db.clone();
        target.schema.name = "tgt".into();
        let corrs = CorrespondenceBuilder::new(&db, &target)
            .table("t", "t")
            .unwrap()
            .attr("t", "id", "t", "id")
            .unwrap()
            .attr("t", "x", "t", "x")
            .unwrap()
            .finish();
        let s = IntegrationScenario::single_source("identical", db, target, corrs).unwrap();
        let m = StructureModule::default();
        let report = m.assess(&s).unwrap();
        assert!(report.findings.is_empty());
        let tasks = m
            .plan(&s, &report, &EstimationConfig::default())
            .unwrap();
        assert!(tasks.is_empty());
    }
}
