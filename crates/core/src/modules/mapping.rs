//! The mapping estimation module (paper §3.3, Table 2).
//!
//! *"For each table in the target schema and each source database that
//! provides data for that table, some connection has to be established to
//! fetch the source data and write it into the target table. [...] every
//! connection can be described in terms of certain metrics, such as the
//! number of source tables to be queried, the number of attributes that
//! must be copied, and whether new IDs for a primary key need to be
//! generated."*

use crate::config::EstimationConfig;
use crate::framework::{EstimationModule, Finding, ModuleError, ModuleReport};
use crate::task::{Task, TaskParams, TaskType};
use efes_relational::schema::TableId;
use efes_relational::{ConstraintKind, Database, IntegrationScenario, SourceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One mapping connection: a row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingConnection {
    /// The source database.
    pub source: SourceId,
    /// The target table being populated.
    pub target_table: TableId,
    /// The source tables that must be queried (including join
    /// intermediates).
    pub source_tables: Vec<TableId>,
    /// Number of attributes to copy.
    pub attributes: usize,
    /// Whether new primary-key values must be generated.
    pub primary_key: bool,
    /// Number of target foreign keys this connection must establish.
    pub foreign_keys: usize,
}

/// The mapping module.
#[derive(Debug, Clone, Default)]
pub struct MappingModule;

impl MappingModule {
    /// Compute the mapping connections of a scenario — the content of a
    /// Table 2-style report.
    pub fn connections(scenario: &IntegrationScenario) -> Vec<MappingConnection> {
        let mut out = Vec::new();
        for (sid, source) in scenario.iter_sources() {
            for tt in 0..scenario.target.schema.table_count() {
                let tt = TableId(tt);
                let feeding = scenario.correspondences.source_tables_feeding(sid, tt);
                if feeding.is_empty() {
                    continue;
                }
                // Copied attributes: attribute correspondences into tt.
                let attributes = scenario
                    .correspondences
                    .attribute_correspondences(sid)
                    .filter(|(_, ta)| ta.table == tt)
                    .count();
                // Does the target table's primary key receive source
                // values? If no correspondence covers a PK attribute, new
                // ids must be generated.
                let primary_key = match scenario.target.constraints.primary_key(tt) {
                    Some(pk_attrs) => {
                        let covered: BTreeSet<_> = scenario
                            .correspondences
                            .attribute_correspondences(sid)
                            .filter(|(_, ta)| ta.table == tt)
                            .map(|(_, ta)| ta.attr)
                            .collect();
                        !pk_attrs.iter().all(|a| covered.contains(a))
                    }
                    None => false,
                };
                // Source tables: the feeding tables, closed under join
                // intermediates on the source FK graph, plus the anchors
                // of target tables referenced by FKs from tt.
                let mut tables: BTreeSet<TableId> = feeding.iter().copied().collect();
                let mut fks = 0usize;
                for c in scenario.target.constraints.foreign_keys_from(tt) {
                    if let ConstraintKind::ForeignKey { to_table, .. } = &c.kind {
                        fks += 1;
                        // The referenced target table's anchor (its table
                        // correspondence) must be joined in to resolve the
                        // reference.
                        if let Some((anchor, _)) = scenario
                            .correspondences
                            .table_correspondences(sid)
                            .find(|(_, t)| t == to_table)
                        {
                            tables.insert(anchor);
                        }
                    }
                }
                close_over_join_paths(source, &mut tables);
                out.push(MappingConnection {
                    source: sid,
                    target_table: tt,
                    source_tables: tables.into_iter().collect(),
                    attributes,
                    primary_key,
                    foreign_keys: fks,
                });
            }
        }
        out
    }
}

/// Connect the chosen source tables into one join tree: repeatedly add
/// intermediate tables lying on shortest FK paths between disconnected
/// components of the selection.
fn close_over_join_paths(source: &Database, tables: &mut BTreeSet<TableId>) {
    if tables.len() < 2 {
        return;
    }
    // Build the undirected FK adjacency of the source schema.
    let n = source.schema.table_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in source.constraints.foreign_keys() {
        if let ConstraintKind::ForeignKey {
            from_table,
            to_table,
            ..
        } = &c.kind
        {
            adj[from_table.0].push(to_table.0);
            adj[to_table.0].push(from_table.0);
        }
    }
    // Repeatedly connect the first table to any not-yet-reached selected
    // table via BFS, absorbing the path.
    loop {
        let selected: Vec<usize> = tables.iter().map(|t| t.0).collect();
        // Find the connected component of the first selected table within
        // the current selection ∪ path candidates.
        let root = selected[0];
        let mut reached = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        reached[root] = true;
        queue.push_back(root);
        while let Some(cur) = queue.pop_front() {
            for &next in &adj[cur] {
                if !reached[next] {
                    reached[next] = true;
                    parent[next] = Some(cur);
                    queue.push_back(next);
                }
            }
        }
        // Which selected tables are unreachable at all? They stay as
        // separate connections (cross products) — nothing to add.
        let component: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|t| reached[*t])
            .collect();
        // Is every reachable selected table already connected within the
        // selection only? Check by walking parents and collecting the
        // needed intermediates.
        let mut added = false;
        for &t in &component[1..] {
            let mut cur = t;
            while let Some(p) = parent[cur] {
                if !tables.contains(&TableId(p)) {
                    tables.insert(TableId(p));
                    added = true;
                }
                cur = p;
                if cur == root {
                    break;
                }
            }
        }
        if !added {
            break;
        }
    }
}

impl EstimationModule for MappingModule {
    fn name(&self) -> &str {
        "mapping"
    }

    fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
        let mut report = ModuleReport::new(self.name());
        for conn in Self::connections(scenario) {
            let source = scenario.source(conn.source);
            let target_table = &scenario.target.schema.table(conn.target_table).name;
            let source_names: Vec<&str> = conn
                .source_tables
                .iter()
                .map(|t| source.schema.table(*t).name.as_str())
                .collect();
            report.push(
                Finding::new(
                    "mapping-connection",
                    format!("{} ← {}", target_table, source.name()),
                    format!(
                        "populate `{}` from {} source table(s): {}",
                        target_table,
                        conn.source_tables.len(),
                        source_names.join(", ")
                    ),
                )
                .with_int("source-tables", conn.source_tables.len() as u64)
                .with_int("attributes", conn.attributes as u64)
                .with_flag("primary-key", conn.primary_key)
                .with_int("foreign-keys", conn.foreign_keys as u64),
            );
        }
        Ok(report)
    }

    fn plan(
        &self,
        _scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError> {
        let mut tasks = Vec::new();
        for f in report.of_kind("mapping-connection") {
            let params = TaskParams {
                tables: f.int("source-tables").unwrap_or(0),
                attributes: f.int("attributes").unwrap_or(0),
                pks: u64::from(f.flag("primary-key").unwrap_or(false)),
                fks: f.int("foreign-keys").unwrap_or(0),
                repetitions: 1,
                ..TaskParams::default()
            };
            tasks.push(Task::new(
                TaskType::WriteMapping,
                config.quality,
                params,
                f.location.clone(),
                self.name(),
            ));
        }
        Ok(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    /// The Figure 2 source schema (albums, songs, artist_lists,
    /// artist_credits) with the visible correspondences.
    fn scenario() -> IntegrationScenario {
        let source = DatabaseBuilder::new("source")
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("name", DataType::Text)
                    .attr("artist_list", DataType::Integer)
                    .primary_key(&["id"])
                    .not_null("name")
                    .not_null("artist_list")
                    .foreign_key(&["artist_list"], "artist_lists", &["id"])
            })
            .table("songs", |t| {
                t.attr("album", DataType::Integer)
                    .attr("name", DataType::Text)
                    .attr("artist_list", DataType::Integer)
                    .attr("length", DataType::Integer)
                    .not_null("name")
                    .foreign_key(&["album"], "albums", &["id"])
                    .foreign_key(&["artist_list"], "artist_lists", &["id"])
            })
            .table("artist_lists", |t| {
                t.attr("id", DataType::Integer).primary_key(&["id"])
            })
            .table("artist_credits", |t| {
                t.attr("artist_list", DataType::Integer)
                    .attr("position", DataType::Integer)
                    .attr("artist", DataType::Text)
                    .primary_key(&["artist_list", "position"])
                    .not_null("artist")
                    .foreign_key(&["artist_list"], "artist_lists", &["id"])
            })
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("target")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("artist", DataType::Text)
                    .attr("genre", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
                    .not_null("artist")
                    .not_null("genre")
            })
            .table("tracks", |t| {
                t.attr("record", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("duration", DataType::Text)
                    .not_null("record")
                    .not_null("title")
                    .foreign_key(&["record"], "records", &["id"])
            })
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .attr("artist_credits", "artist", "records", "artist")
            .unwrap()
            .table("songs", "tracks")
            .unwrap()
            .attr("songs", "name", "tracks", "title")
            .unwrap()
            .attr("songs", "length", "tracks", "duration")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("music", source, target, corrs).unwrap()
    }

    #[test]
    fn table2_records_connection() {
        let conns = MappingModule::connections(&scenario());
        let records = conns.iter().find(|c| c.target_table == TableId(0)).unwrap();
        // "the three source tables albums, artist_lists, and
        // artist_credits have to be combined, two attributes must be
        // copied, and unique id values [...] must be generated."
        assert_eq!(records.source_tables.len(), 3);
        assert_eq!(records.attributes, 2);
        assert!(records.primary_key);
    }

    #[test]
    fn table2_tracks_connection() {
        let conns = MappingModule::connections(&scenario());
        let tracks = conns.iter().find(|c| c.target_table == TableId(1)).unwrap();
        assert_eq!(tracks.attributes, 2);
        assert!(!tracks.primary_key);
        // songs + the records anchor (albums) — joined directly via
        // songs.album → albums.id.
        assert!(tracks.source_tables.len() >= 2);
        assert_eq!(tracks.foreign_keys, 1);
    }

    #[test]
    fn report_and_plan_round_trip() {
        let s = scenario();
        let m = MappingModule;
        let report = m.assess(&s).unwrap();
        assert_eq!(report.findings.len(), 2);
        let tasks = m.plan(&s, &report, &EstimationConfig::default()).unwrap();
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.task_type == TaskType::WriteMapping));
        let records_task = &tasks[0];
        assert_eq!(records_task.params.tables, 3);
        assert_eq!(records_task.params.attributes, 2);
        assert_eq!(records_task.params.pks, 1);
    }

    #[test]
    fn tables_without_correspondences_get_no_connection() {
        let source = DatabaseBuilder::new("s")
            .table("a", |t| t.attr("x", DataType::Integer))
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("t")
            .table("used", |t| t.attr("x", DataType::Integer))
            .table("unused", |t| t.attr("y", DataType::Integer))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .attr("a", "x", "used", "x")
            .unwrap()
            .finish();
        let sc = IntegrationScenario::single_source("x", source, target, corrs).unwrap();
        let conns = MappingModule::connections(&sc);
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].target_table, TableId(0));
        assert!(!conns[0].primary_key);
    }
}
