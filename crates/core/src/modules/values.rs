//! The value-heterogeneity estimation module (paper §5): the **value fit
//! detector** (Algorithm 1 over profiling statistics) and the **value
//! transformation planner** (Table 7).

use crate::config::EstimationConfig;
use crate::framework::{AssessContext, EstimationModule, Finding, ModuleError, ModuleReport};
use crate::settings::Quality;
use crate::task::{Task, TaskParams, TaskType};
use efes_exec::parallel_map;
use efes_profiling::{AttributeProfile, DbTag, FillStatus, ProfileKey};
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};

/// The value heterogeneity types of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityKind {
    /// `substantiallyFewerSourceValues` fired.
    TooFewSourceElements,
    /// `hasIncompatibleValues` fired: some source values cannot even be
    /// cast to the target datatype.
    DifferentRepresentationsCritical,
    /// Source domain-restricted, target not: *too coarse-grained source
    /// values* (Table 7's "Too general").
    TooCoarseGrained,
    /// Target domain-restricted, source not: *too fine-grained source
    /// values* (Table 7's "Too specific").
    TooFineGrained,
    /// `domainSpecificDifferences`: the importance-weighted fit fell
    /// below the threshold.
    DifferentRepresentations,
}

impl HeterogeneityKind {
    /// Paper wording.
    pub fn label(self) -> &'static str {
        match self {
            HeterogeneityKind::TooFewSourceElements => "Too few source elements",
            HeterogeneityKind::DifferentRepresentationsCritical => {
                "Different value representations (critical)"
            }
            HeterogeneityKind::TooCoarseGrained => "Too coarse-grained source values",
            HeterogeneityKind::TooFineGrained => "Too fine-grained source values",
            HeterogeneityKind::DifferentRepresentations => "Different value representations",
        }
    }

    fn as_key(self) -> &'static str {
        match self {
            HeterogeneityKind::TooFewSourceElements => "too-few",
            HeterogeneityKind::DifferentRepresentationsCritical => "different-critical",
            HeterogeneityKind::TooCoarseGrained => "too-coarse",
            HeterogeneityKind::TooFineGrained => "too-fine",
            HeterogeneityKind::DifferentRepresentations => "different",
        }
    }

    fn from_key(key: &str) -> Option<Self> {
        Some(match key {
            "too-few" => HeterogeneityKind::TooFewSourceElements,
            "different-critical" => HeterogeneityKind::DifferentRepresentationsCritical,
            "too-coarse" => HeterogeneityKind::TooCoarseGrained,
            "too-fine" => HeterogeneityKind::TooFineGrained,
            "different" => HeterogeneityKind::DifferentRepresentations,
            _ => return None,
        })
    }
}

/// The value module.
#[derive(Debug, Clone)]
pub struct ValueModule {
    /// Fit threshold below which `domainSpecificDifferences` fires —
    /// *"we found 0.9 to be a good threshold"* (§5.1).
    pub fit_threshold: f64,
    /// Margin for `substantiallyFewerSourceValues` (absolute fill-ratio
    /// difference).
    pub fewer_values_margin: f64,
}

impl Default for ValueModule {
    fn default() -> Self {
        ValueModule {
            fit_threshold: 0.9,
            fewer_values_margin: 0.2,
        }
    }
}

impl ValueModule {
    /// Algorithm 1 for one attribute correspondence: profile both ends
    /// (through the shared cache) and emit the heterogeneity findings.
    fn assess_correspondence(
        &self,
        scenario: &IntegrationScenario,
        ctx: &AssessContext,
        sid: efes_relational::SourceId,
        source: &efes_relational::Database,
        sa: efes_relational::AttrRef,
        ta: efes_relational::AttrRef,
    ) -> Result<Vec<Finding>, ModuleError> {
        let target_type = scenario
            .target
            .schema
            .table(ta.table)
            .attribute(ta.attr)
            .datatype;
        let cancelled = || ModuleError::cancelled("values");
        let source_profile = ctx
            .cache
            .of_attribute_sharded_ctx(
                &ctx.run,
                source,
                ProfileKey {
                    db: DbTag::source(sid.0 as u32),
                    table: sa.table,
                    attr: sa.attr,
                    reference_type: target_type,
                },
                ctx.mode,
            )
            .map_err(|_| cancelled())?;
        let target_profile = ctx
            .cache
            .of_attribute_sharded_ctx(
                &ctx.run,
                &scenario.target,
                ProfileKey {
                    db: DbTag::TARGET,
                    table: ta.table,
                    attr: ta.attr,
                    reference_type: target_type,
                },
                ctx.mode,
            )
            .map_err(|_| cancelled())?;
        let location = format!(
            "{} → {}",
            source.schema.qualified(sa.table, sa.attr),
            scenario.target.schema.qualified(ta.table, ta.attr)
        );
        let source_values = source.instance.table(sa.table).len() as u64;
        let distinct = source.instance.distinct_count(sa.table, sa.attr) as u64;

        let mut heterogeneities: Vec<(HeterogeneityKind, f64)> = Vec::new();
        // Rule 1: substantiallyFewerSourceValues.
        if FillStatus::substantially_fewer(
            &source_profile.fill,
            &target_profile.fill,
            self.fewer_values_margin,
        ) {
            heterogeneities.push((
                HeterogeneityKind::TooFewSourceElements,
                source_profile.fill.presence_ratio(),
            ));
        }
        // Rule 2: hasIncompatibleValues.
        if source_profile.fill.has_incompatible() {
            heterogeneities.push((
                HeterogeneityKind::DifferentRepresentationsCritical,
                source_profile.fill.incompatible as f64,
            ));
        }
        // Rules 3–5: domain granularity, then domain-specific
        // differences. An empty target column cannot designate
        // characteristics, so the fit rule only applies when the
        // target carries data.
        let target_has_data = target_profile.fill.total > 0;
        let src_restricted = source_profile.domain_restricted();
        let tgt_restricted = target_has_data && target_profile.domain_restricted();
        // Granularity rules additionally require a real disparity
        // in domain sizes (≥ 3×): a borderline restricted/open
        // classification with similar distinct counts is a format
        // question (rule 5), not a granularity one.
        let src_distinct = source_profile.constancy.distinct.max(1);
        let tgt_distinct = target_profile.constancy.distinct.max(1);
        if target_has_data
            && src_restricted
            && !tgt_restricted
            && tgt_distinct >= 3 * src_distinct
        {
            heterogeneities.push((HeterogeneityKind::TooCoarseGrained, 0.0));
        } else if target_has_data
            && !src_restricted
            && tgt_restricted
            && src_distinct >= 3 * tgt_distinct
        {
            heterogeneities.push((HeterogeneityKind::TooFineGrained, 0.0));
        } else if target_has_data {
            let fit = AttributeProfile::fit_against(&source_profile, &target_profile);
            if fit.overall < self.fit_threshold {
                heterogeneities.push((HeterogeneityKind::DifferentRepresentations, fit.overall));
            }
        }

        Ok(heterogeneities
            .into_iter()
            .map(|(kind, score)| {
                Finding::new(
                    "value-heterogeneity",
                    location.clone(),
                    kind.label().to_owned(),
                )
                .with_text("heterogeneity", kind.as_key())
                .with_int("source-values", source_values)
                .with_int("distinct-source-values", distinct)
                .with_float("score", score)
            })
            .collect())
    }
}

impl EstimationModule for ValueModule {
    fn name(&self) -> &str {
        "values"
    }

    /// Algorithm 1, per attribute correspondence.
    fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
        self.assess_with(scenario, &AssessContext::standalone())
    }

    /// Correspondences are independent of each other, so they fan out
    /// under `ctx.mode`; findings are flattened back in correspondence
    /// order, keeping the report identical to a sequential pass.
    fn assess_with(
        &self,
        scenario: &IntegrationScenario,
        ctx: &AssessContext,
    ) -> Result<ModuleReport, ModuleError> {
        let units: Vec<_> = scenario
            .iter_sources()
            .flat_map(|(sid, source)| {
                scenario
                    .correspondences
                    .attribute_correspondences(sid)
                    .map(move |(sa, ta)| (sid, source, sa, ta))
            })
            .collect();
        let mut report = ModuleReport::new(self.name());
        for findings in parallel_map(ctx.mode, units, |(sid, source, sa, ta)| {
            self.assess_correspondence(scenario, ctx, sid, source, sa, ta)
        }) {
            report.findings.extend(findings?);
        }
        Ok(report)
    }

    /// Table 7: tasks per heterogeneity and quality. *"for a low-effort
    /// integration result, value heterogeneities can in most cases be
    /// simply ignored"* — the `-` cells plan nothing.
    fn plan(
        &self,
        _scenario: &IntegrationScenario,
        report: &ModuleReport,
        config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError> {
        let mut tasks = Vec::new();
        for f in report.of_kind("value-heterogeneity") {
            let Some(kind) = f.text("heterogeneity").and_then(HeterogeneityKind::from_key)
            else {
                continue;
            };
            let params = TaskParams {
                values: f.int("source-values").unwrap_or(0),
                distinct_values: f.int("distinct-source-values").unwrap_or(0),
                repetitions: 1,
                ..TaskParams::default()
            };
            let task_type = match (kind, config.quality) {
                (HeterogeneityKind::TooFewSourceElements, Quality::LowEffort) => None,
                (HeterogeneityKind::TooFewSourceElements, Quality::HighQuality) => {
                    Some(TaskType::AddValues)
                }
                (HeterogeneityKind::DifferentRepresentationsCritical, Quality::LowEffort) => {
                    Some(TaskType::DropValues)
                }
                (HeterogeneityKind::DifferentRepresentationsCritical, Quality::HighQuality) => {
                    Some(TaskType::ConvertValues)
                }
                (HeterogeneityKind::DifferentRepresentations, Quality::LowEffort) => None,
                (HeterogeneityKind::DifferentRepresentations, Quality::HighQuality) => {
                    Some(TaskType::ConvertValues)
                }
                (HeterogeneityKind::TooFineGrained, Quality::LowEffort) => None,
                (HeterogeneityKind::TooFineGrained, Quality::HighQuality) => {
                    Some(TaskType::GeneralizeValues)
                }
                (HeterogeneityKind::TooCoarseGrained, Quality::LowEffort) => None,
                (HeterogeneityKind::TooCoarseGrained, Quality::HighQuality) => {
                    Some(TaskType::RefineValues)
                }
            };
            if let Some(tt) = task_type {
                // "Add values" for too-few-elements repairs the *missing*
                // values, not every row.
                let mut params = params;
                if kind == HeterogeneityKind::TooFewSourceElements {
                    let missing = ((1.0 - f.float("score").unwrap_or(0.0))
                        * params.values as f64)
                        .round() as u64;
                    params.values = missing;
                    params.distinct_values = params.distinct_values.min(missing);
                }
                tasks.push(Task::new(
                    tt,
                    config.quality,
                    params,
                    f.location.clone(),
                    self.name(),
                ));
            }
        }
        Ok(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder, Database, Value};

    /// songs.length (millisecond integers) vs tracks.duration (m:ss
    /// strings with pre-existing target data) — Example 3.3.
    fn scenario() -> IntegrationScenario {
        const SRC_TITLES: &[&str] = &[
            "Sweet Home Alabama",
            "I Need You",
            "Don't Ask Me No Questions",
            "Workin' for MCA",
            "The Ballad of Curtis Loew",
            "Swamp Music",
            "The Needle and the Spoon",
            "Call Me the Breeze",
            "Hands Up",
            "Labor Day",
            "Anxiety",
            "Lose Yourself",
            "Without Me",
            "Rolling in the Deep",
            "Someone Like You",
            "Set Fire to the Rain",
            "Turning Tables",
            "Rumour Has It",
            "Take It or Leave It",
            "One and Only",
        ];
        const TGT_TITLES: &[&str] = &[
            "Smells Like Teen Spirit",
            "Come as You Are",
            "Lithium",
            "In Bloom",
            "Gloria",
            "Redondo Beach",
            "Birdland",
            "Free Money",
            "Kimberly",
            "Break It Up",
        ];
        let mut source = DatabaseBuilder::new("src")
            .table("songs", |t| {
                t.attr("name", DataType::Text).attr("length", DataType::Integer)
            })
            .build()
            .unwrap();
        for (i, title) in SRC_TITLES.iter().enumerate() {
            source
                .insert_by_name(
                    "songs",
                    vec![(*title).into(), (180_000 + i as i64 * 7411).into()],
                )
                .unwrap();
        }
        let mut target = DatabaseBuilder::new("tgt")
            .table("tracks", |t| {
                t.attr("title", DataType::Text).attr("duration", DataType::Text)
            })
            .build()
            .unwrap();
        for (i, title) in TGT_TITLES.iter().enumerate() {
            let i = i as i64;
            target
                .insert_by_name(
                    "tracks",
                    vec![
                        (*title).into(),
                        format!("{}:{:02}", 3 + i % 4, (i * 13) % 60).into(),
                    ],
                )
                .unwrap();
        }
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("songs", "tracks")
            .unwrap()
            .attr("songs", "name", "tracks", "title")
            .unwrap()
            .attr("songs", "length", "tracks", "duration")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("values-test", source, target, corrs).unwrap()
    }

    #[test]
    fn detects_length_duration_heterogeneity() {
        let m = ValueModule::default();
        let report = m.assess(&scenario()).unwrap();
        let het = report
            .findings
            .iter()
            .find(|f| f.location.contains("length"))
            .expect("length→duration heterogeneity");
        assert_eq!(het.text("heterogeneity"), Some("different"));
        assert_eq!(het.int("source-values"), Some(20));
        assert_eq!(het.int("distinct-source-values"), Some(20));
        // name → title must NOT be flagged: free text fits free text.
        assert!(report
            .findings
            .iter()
            .all(|f| !f.location.contains("songs.name")));
    }

    #[test]
    fn table7_high_quality_converts_low_effort_ignores() {
        let m = ValueModule::default();
        let s = scenario();
        let report = m.assess(&s).unwrap();
        let high = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::HighQuality))
            .unwrap();
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].task_type, TaskType::ConvertValues);
        let low = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::LowEffort))
            .unwrap();
        assert!(low.is_empty(), "uncritical heterogeneities are ignored at low effort");
    }

    fn single_column_db(name: &str, dt: DataType, values: Vec<Value>) -> Database {
        let mut b = DatabaseBuilder::new(name).table("t", |t| t.attr("a", dt));
        b = b.rows("t", values.into_iter().map(|v| vec![v]).collect());
        b.build().unwrap()
    }

    fn pair_scenario(source: Database, target: Database) -> IntegrationScenario {
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("t", "t")
            .unwrap()
            .attr("t", "a", "t", "a")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("pair", source, target, corrs).unwrap()
    }

    #[test]
    fn critical_heterogeneity_for_uncastable_values() {
        // Text durations cannot be cast into an integer target column.
        let source = single_column_db(
            "s",
            DataType::Text,
            vec!["4:43".into(), "6:55".into(), "3:26".into()],
        );
        let target = single_column_db("t", DataType::Integer, vec![215900.into(), 238100.into()]);
        let m = ValueModule::default();
        let s = pair_scenario(source, target);
        let report = m.assess(&s).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.text("heterogeneity") == Some("different-critical")));
        // Low effort on critical: Drop values (10 mins), not ignored.
        let low = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::LowEffort))
            .unwrap();
        assert!(low.iter().any(|t| t.task_type == TaskType::DropValues));
    }

    #[test]
    fn too_few_source_values_detected() {
        let source = single_column_db(
            "s",
            DataType::Text,
            vec!["x".into(), Value::Null, Value::Null, Value::Null],
        );
        let target = single_column_db(
            "t",
            DataType::Text,
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        );
        let m = ValueModule::default();
        let s = pair_scenario(source, target);
        let report = m.assess(&s).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.text("heterogeneity") == Some("too-few")));
        let high = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::HighQuality))
            .unwrap();
        let add = high.iter().find(|t| t.task_type == TaskType::AddValues).unwrap();
        assert_eq!(add.params.values, 3); // the three missing values
    }

    #[test]
    fn granularity_mismatch_detected() {
        // Source: a tiny label vocabulary; target: free-form strings.
        let source = single_column_db(
            "s",
            DataType::Text,
            (0..40).map(|i| ["rock", "pop"][i % 2].into()).collect(),
        );
        let target = single_column_db(
            "t",
            DataType::Text,
            (0..40).map(|i| format!("Free text value number {i}").into()).collect(),
        );
        let m = ValueModule::default();
        let s = pair_scenario(source, target);
        let report = m.assess(&s).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.text("heterogeneity") == Some("too-coarse")));
        let high = m
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::HighQuality))
            .unwrap();
        assert!(high.iter().any(|t| t.task_type == TaskType::RefineValues));
    }

    #[test]
    fn identical_columns_report_nothing() {
        let data: Vec<Value> = (0..30).map(|i| format!("{}:{:02}", 3 + i % 5, i % 60).into()).collect();
        let source = single_column_db("s", DataType::Text, data.clone());
        let target = single_column_db("t", DataType::Text, data);
        let m = ValueModule::default();
        let s = pair_scenario(source, target);
        let report = m.assess(&s).unwrap();
        assert!(report.findings.is_empty(), "{report:?}");
    }
}
