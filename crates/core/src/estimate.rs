//! The estimator: orchestrates modules through both phases and totals the
//! effort (paper Figure 3, bottom box).

use crate::config::EstimationConfig;
use crate::framework::{AssessContext, EstimationModule, ModuleError, ModuleReport};
use crate::modules::{MappingModule, StructureModule, ValueModule};
use crate::task::{Task, TaskCategory};
use efes_exec::{parallel_map_ref, timed, RunContext};
use efes_profiling::ProfileCache;
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One priced task inside an estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedTask {
    /// The planned task.
    pub task: Task,
    /// Its priced effort in minutes.
    pub minutes: f64,
}

/// Wall-clock time of one pipeline stage (one module's assess + plan +
/// price pass).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTiming {
    /// Stage name — the module name for per-module stages.
    pub stage: String,
    /// Elapsed wall-clock milliseconds.
    pub millis: f64,
}

/// Per-run instrumentation of the estimation pipeline: how long each
/// stage took, under what thread budget, and how the shared profile
/// cache performed. Diagnostics only — never part of the estimate's
/// identity, never serialised.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineTimings {
    /// Per-module stage timings, in module registration order.
    pub stages: Vec<StageTiming>,
    /// End-to-end wall-clock milliseconds for the whole run.
    pub total_millis: f64,
    /// The worker-thread budget the run executed under.
    pub threads: usize,
    /// Profile-cache lookups served from memory.
    pub cache_hits: u64,
    /// Profile-cache lookups that computed a fresh profile.
    pub cache_misses: u64,
}

impl PipelineTimings {
    /// Render as a small aligned table, one row per stage plus a total
    /// row — the format the repro binary's speedup report prints.
    pub fn table(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            out.push_str(&format!("  {:<12} {:>9.2} ms\n", s.stage, s.millis));
        }
        out.push_str(&format!(
            "  {:<12} {:>9.2} ms  ({} thread{}, cache {} hit{} / {} miss{})\n",
            "total",
            self.total_millis,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.cache_hits,
            if self.cache_hits == 1 { "" } else { "s" },
            self.cache_misses,
            if self.cache_misses == 1 { "" } else { "es" },
        ));
        out
    }
}

/// The final effort estimate: priced tasks plus the per-category
/// breakdown the figures stack.
///
/// Equality (`PartialEq`) covers the estimate's *content* — scenario,
/// tasks, reports — and deliberately ignores [`EffortEstimate::timings`]:
/// two runs of the same scenario are the same estimate no matter how the
/// pipeline was scheduled. The determinism tests rely on this.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EffortEstimate {
    /// The scenario name.
    pub scenario: String,
    /// All priced tasks, in planning order.
    pub tasks: Vec<EstimatedTask>,
    /// The complexity reports that produced them (phase-1 output,
    /// preserved for the user: granularity).
    pub reports: Vec<ModuleReport>,
    /// Wall-clock instrumentation of the run that produced this
    /// estimate. Excluded from equality and serialisation.
    #[serde(skip)]
    pub timings: PipelineTimings,
}

impl PartialEq for EffortEstimate {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.tasks == other.tasks
            && self.reports == other.reports
    }
}

impl EffortEstimate {
    /// Total effort in minutes.
    pub fn total_minutes(&self) -> f64 {
        self.tasks.iter().map(|t| t.minutes).sum()
    }

    /// Effort per category (the Figure 6/7 stacking).
    pub fn by_category(&self) -> BTreeMap<TaskCategory, f64> {
        let mut out = BTreeMap::new();
        for t in &self.tasks {
            *out.entry(t.task.category).or_insert(0.0) += t.minutes;
        }
        out
    }

    /// Effort of one category in minutes.
    pub fn category_minutes(&self, category: TaskCategory) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.task.category == category)
            .map(|t| t.minutes)
            .sum()
    }

    /// Mapping effort (Figure 6/7 series).
    pub fn mapping_minutes(&self) -> f64 {
        self.category_minutes(TaskCategory::Mapping)
    }

    /// Total cleaning effort (structure + values + other).
    pub fn cleaning_minutes(&self) -> f64 {
        self.total_minutes() - self.mapping_minutes()
    }
}

/// Which built-in modules to run — the ablation switchboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSelection {
    /// Run the mapping module (§3).
    pub mapping: bool,
    /// Run the structural-conflicts module (§4).
    pub structure: bool,
    /// Run the value-heterogeneities module (§5).
    pub values: bool,
}

impl ModuleSelection {
    /// All three modules (the paper's configuration).
    pub fn all() -> Self {
        ModuleSelection {
            mapping: true,
            structure: true,
            values: true,
        }
    }

    /// Only the mapping module — roughly what a schema-only estimator
    /// can see.
    pub fn mapping_only() -> Self {
        ModuleSelection {
            mapping: true,
            structure: false,
            values: false,
        }
    }

    /// Short display label, e.g. `mapping+structure`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.mapping {
            parts.push("mapping");
        }
        if self.structure {
            parts.push("structure");
        }
        if self.values {
            parts.push("values");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// The estimator: a set of registered modules plus a configuration.
pub struct Estimator {
    modules: Vec<Box<dyn EstimationModule>>,
    config: EstimationConfig,
}

impl Estimator {
    /// An estimator with no modules (register with
    /// [`Estimator::register`]).
    pub fn new(config: EstimationConfig) -> Self {
        Estimator {
            modules: Vec::new(),
            config,
        }
    }

    /// An estimator with the paper's three modules: mapping, structure,
    /// values.
    pub fn with_default_modules(config: EstimationConfig) -> Self {
        Self::with_selected_modules(config, ModuleSelection::all())
    }

    /// An estimator with a chosen subset of the built-in modules — the
    /// handle for ablation studies (which module contributes how much
    /// estimation accuracy).
    pub fn with_selected_modules(config: EstimationConfig, selection: ModuleSelection) -> Self {
        let mut e = Self::new(config);
        if selection.mapping {
            e.register(Box::new(MappingModule));
        }
        if selection.structure {
            e.register(Box::new(StructureModule::default()));
        }
        if selection.values {
            e.register(Box::new(ValueModule::default()));
        }
        e
    }

    /// Plug an estimation module (the paper's extensibility requirement).
    pub fn register(&mut self, module: Box<dyn EstimationModule>) {
        self.modules.push(module);
    }

    /// Access the configuration.
    pub fn config(&self) -> &EstimationConfig {
        &self.config
    }

    /// Mutable access (e.g. to switch quality between runs).
    pub fn config_mut(&mut self) -> &mut EstimationConfig {
        &mut self.config
    }

    /// Phase 1 only: run every module's complexity detector.
    ///
    /// Modules run concurrently under the configured execution policy and
    /// share one profile cache; reports come back in registration order
    /// regardless of scheduling.
    pub fn assess(&self, scenario: &IntegrationScenario) -> Result<Vec<ModuleReport>, ModuleError> {
        let ctx = AssessContext::with_mode(self.config.execution.mode());
        parallel_map_ref(ctx.mode, &self.modules, |m| m.assess_with(scenario, &ctx))
            .into_iter()
            .collect()
    }

    /// Both phases: assess, plan, price.
    ///
    /// Each module's full pass (assess → plan → price) is an independent
    /// unit, fanned out under the configured execution policy; all
    /// modules share one [`efes_profiling::ProfileCache`]. Results are
    /// reassembled in registration order, so the estimate is
    /// byte-identical to a sequential run. Per-module wall-clock times
    /// land in [`EffortEstimate::timings`].
    pub fn estimate(&self, scenario: &IntegrationScenario) -> Result<EffortEstimate, ModuleError> {
        self.estimate_with_cache(scenario, Arc::new(ProfileCache::new()))
    }

    /// Like [`estimate`](Self::estimate), but profiling goes through the
    /// given cache instead of a fresh per-run one.
    ///
    /// This is the long-running-service entry point: a server keeps one
    /// (optionally [bounded](ProfileCache::bounded)) cache per registered
    /// scenario, so repeated requests against the same immutable scenario
    /// skip all column profiling. The caller must not share one cache
    /// across *different* scenarios — [`efes_profiling::DbTag`]s are only
    /// unambiguous relative to a fixed scenario. The estimate itself is
    /// byte-identical to the fresh-cache path (cached profiles equal
    /// freshly computed ones); only
    /// [`PipelineTimings::cache_hits`]/[`PipelineTimings::cache_misses`]
    /// differ, reporting the shared cache's *cumulative* counters.
    pub fn estimate_with_cache(
        &self,
        scenario: &IntegrationScenario,
        cache: Arc<ProfileCache>,
    ) -> Result<EffortEstimate, ModuleError> {
        self.estimate_with_cache_ctx(scenario, cache, RunContext::unbounded())
    }

    /// Like [`estimate_with_cache`](Self::estimate_with_cache), but the
    /// whole run is scoped to `run`: every module stage polls the
    /// context at cheap checkpoints inside its long loops and aborts
    /// with [`ModuleError::Cancelled`] (naming the stage) within
    /// milliseconds of the token firing or the deadline passing. An
    /// aborted run leaves the shared cache clean — in-flight profile
    /// fills are rolled back, never published partially. When `run`
    /// never fires, the estimate is byte-identical to
    /// [`estimate`](Self::estimate).
    pub fn estimate_with_cache_ctx(
        &self,
        scenario: &IntegrationScenario,
        cache: Arc<ProfileCache>,
        run: RunContext,
    ) -> Result<EffortEstimate, ModuleError> {
        let ctx = AssessContext {
            cache,
            mode: self.config.execution.mode(),
            run,
        };
        type StageOut = Result<(ModuleReport, Vec<EstimatedTask>, StageTiming), ModuleError>;
        let (per_module, total_millis) = timed(|| {
            parallel_map_ref(ctx.mode, &self.modules, |module| -> StageOut {
                let (out, millis) = timed(|| -> Result<_, ModuleError> {
                    ctx.check(module.name())?;
                    let report = module.assess_with(scenario, &ctx)?;
                    let tasks = module.plan_with(scenario, &report, &self.config, &ctx)?;
                    let priced = tasks
                        .into_iter()
                        .map(|task| {
                            let minutes = self
                                .config
                                .effort_model
                                .minutes_for(&task, &self.config.settings);
                            EstimatedTask { task, minutes }
                        })
                        .collect();
                    Ok((report, priced))
                });
                let (report, priced) = out?;
                let timing = StageTiming {
                    stage: module.name().to_owned(),
                    millis,
                };
                Ok((report, priced, timing))
            })
        });

        let mut estimate = EffortEstimate {
            scenario: scenario.name.clone(),
            ..EffortEstimate::default()
        };
        for stage in per_module {
            let (report, priced, timing) = stage?;
            estimate.tasks.extend(priced);
            estimate.reports.push(report);
            estimate.timings.stages.push(timing);
        }
        estimate.timings.total_millis = total_millis;
        estimate.timings.threads = ctx.mode.threads();
        estimate.timings.cache_hits = ctx.cache.hits();
        estimate.timings.cache_misses = ctx.cache.misses();
        Ok(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Finding;
    use crate::settings::Quality;
    use crate::task::{TaskParams, TaskType};
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    fn tiny_scenario() -> IntegrationScenario {
        let source = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .rows("albums", vec![vec!["A".into()], vec!["B".into()]])
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("tiny", source, target, corrs).unwrap()
    }

    #[test]
    fn default_modules_produce_an_estimate() {
        let e = Estimator::with_default_modules(EstimationConfig::default());
        let est = e.estimate(&tiny_scenario()).unwrap();
        // A clean 1:1 scenario costs exactly the mapping connection.
        assert!(est.total_minutes() > 0.0);
        assert_eq!(est.cleaning_minutes(), 0.0);
        assert_eq!(est.reports.len(), 3);
        assert_eq!(est.mapping_minutes(), est.total_minutes());
    }

    #[test]
    fn category_breakdown_sums_to_total() {
        let e = Estimator::with_default_modules(EstimationConfig::default());
        let est = e.estimate(&tiny_scenario()).unwrap();
        let sum: f64 = est.by_category().values().sum();
        assert!((sum - est.total_minutes()).abs() < 1e-9);
    }

    /// A custom module: estimates duplicate-resolution effort — the
    /// extensibility path the paper requires.
    struct DuplicateModule;

    impl EstimationModule for DuplicateModule {
        fn name(&self) -> &str {
            "duplicates"
        }
        fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
            let mut r = ModuleReport::new(self.name());
            let rows: u64 = scenario
                .iter_sources()
                .map(|(_, db)| db.instance.row_count() as u64)
                .sum();
            r.push(
                Finding::new("possible-duplicates", "all sources", "pairwise comparisons")
                    .with_int("comparisons", rows * rows.saturating_sub(1) / 2),
            );
            Ok(r)
        }
        fn plan(
            &self,
            _scenario: &IntegrationScenario,
            report: &ModuleReport,
            config: &EstimationConfig,
        ) -> Result<Vec<Task>, ModuleError> {
            Ok(report
                .of_kind("possible-duplicates")
                .map(|f| {
                    Task::new(
                        TaskType::Custom("resolve-duplicates".into()),
                        config.quality,
                        TaskParams::repeated(f.int("comparisons").unwrap_or(0)),
                        f.location.clone(),
                        self.name(),
                    )
                })
                .collect())
        }
    }

    #[test]
    fn custom_modules_plug_in() {
        let mut cfg = EstimationConfig::for_quality(Quality::HighQuality);
        cfg.effort_model.set(
            TaskType::Custom("resolve-duplicates".into()),
            crate::effort::EffortFunction::PerRepetition(0.1),
        );
        let mut e = Estimator::with_default_modules(cfg);
        e.register(Box::new(DuplicateModule));
        let est = e.estimate(&tiny_scenario()).unwrap();
        assert_eq!(est.reports.len(), 4);
        let custom = est
            .tasks
            .iter()
            .find(|t| matches!(t.task.task_type, TaskType::Custom(_)))
            .unwrap();
        assert!((custom.minutes - 0.1).abs() < 1e-12); // 1 comparison pair
    }
}
