//! The estimator: orchestrates modules through both phases and totals the
//! effort (paper Figure 3, bottom box).

use crate::config::EstimationConfig;
use crate::framework::{EstimationModule, ModuleError, ModuleReport};
use crate::modules::{MappingModule, StructureModule, ValueModule};
use crate::task::{Task, TaskCategory};
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One priced task inside an estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedTask {
    /// The planned task.
    pub task: Task,
    /// Its priced effort in minutes.
    pub minutes: f64,
}

/// The final effort estimate: priced tasks plus the per-category
/// breakdown the figures stack.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EffortEstimate {
    /// The scenario name.
    pub scenario: String,
    /// All priced tasks, in planning order.
    pub tasks: Vec<EstimatedTask>,
    /// The complexity reports that produced them (phase-1 output,
    /// preserved for the user: granularity).
    pub reports: Vec<ModuleReport>,
}

impl EffortEstimate {
    /// Total effort in minutes.
    pub fn total_minutes(&self) -> f64 {
        self.tasks.iter().map(|t| t.minutes).sum()
    }

    /// Effort per category (the Figure 6/7 stacking).
    pub fn by_category(&self) -> BTreeMap<TaskCategory, f64> {
        let mut out = BTreeMap::new();
        for t in &self.tasks {
            *out.entry(t.task.category).or_insert(0.0) += t.minutes;
        }
        out
    }

    /// Effort of one category in minutes.
    pub fn category_minutes(&self, category: TaskCategory) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.task.category == category)
            .map(|t| t.minutes)
            .sum()
    }

    /// Mapping effort (Figure 6/7 series).
    pub fn mapping_minutes(&self) -> f64 {
        self.category_minutes(TaskCategory::Mapping)
    }

    /// Total cleaning effort (structure + values + other).
    pub fn cleaning_minutes(&self) -> f64 {
        self.total_minutes() - self.mapping_minutes()
    }
}

/// Which built-in modules to run — the ablation switchboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSelection {
    /// Run the mapping module (§3).
    pub mapping: bool,
    /// Run the structural-conflicts module (§4).
    pub structure: bool,
    /// Run the value-heterogeneities module (§5).
    pub values: bool,
}

impl ModuleSelection {
    /// All three modules (the paper's configuration).
    pub fn all() -> Self {
        ModuleSelection {
            mapping: true,
            structure: true,
            values: true,
        }
    }

    /// Only the mapping module — roughly what a schema-only estimator
    /// can see.
    pub fn mapping_only() -> Self {
        ModuleSelection {
            mapping: true,
            structure: false,
            values: false,
        }
    }

    /// Short display label, e.g. `mapping+structure`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.mapping {
            parts.push("mapping");
        }
        if self.structure {
            parts.push("structure");
        }
        if self.values {
            parts.push("values");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// The estimator: a set of registered modules plus a configuration.
pub struct Estimator {
    modules: Vec<Box<dyn EstimationModule>>,
    config: EstimationConfig,
}

impl Estimator {
    /// An estimator with no modules (register with
    /// [`Estimator::register`]).
    pub fn new(config: EstimationConfig) -> Self {
        Estimator {
            modules: Vec::new(),
            config,
        }
    }

    /// An estimator with the paper's three modules: mapping, structure,
    /// values.
    pub fn with_default_modules(config: EstimationConfig) -> Self {
        Self::with_selected_modules(config, ModuleSelection::all())
    }

    /// An estimator with a chosen subset of the built-in modules — the
    /// handle for ablation studies (which module contributes how much
    /// estimation accuracy).
    pub fn with_selected_modules(config: EstimationConfig, selection: ModuleSelection) -> Self {
        let mut e = Self::new(config);
        if selection.mapping {
            e.register(Box::new(MappingModule));
        }
        if selection.structure {
            e.register(Box::new(StructureModule::default()));
        }
        if selection.values {
            e.register(Box::new(ValueModule::default()));
        }
        e
    }

    /// Plug an estimation module (the paper's extensibility requirement).
    pub fn register(&mut self, module: Box<dyn EstimationModule>) {
        self.modules.push(module);
    }

    /// Access the configuration.
    pub fn config(&self) -> &EstimationConfig {
        &self.config
    }

    /// Mutable access (e.g. to switch quality between runs).
    pub fn config_mut(&mut self) -> &mut EstimationConfig {
        &mut self.config
    }

    /// Phase 1 only: run every module's complexity detector.
    pub fn assess(&self, scenario: &IntegrationScenario) -> Result<Vec<ModuleReport>, ModuleError> {
        self.modules.iter().map(|m| m.assess(scenario)).collect()
    }

    /// Both phases: assess, plan, price.
    pub fn estimate(&self, scenario: &IntegrationScenario) -> Result<EffortEstimate, ModuleError> {
        let mut estimate = EffortEstimate {
            scenario: scenario.name.clone(),
            ..EffortEstimate::default()
        };
        for module in &self.modules {
            let report = module.assess(scenario)?;
            let tasks = module.plan(scenario, &report, &self.config)?;
            for task in tasks {
                let minutes = self
                    .config
                    .effort_model
                    .minutes_for(&task, &self.config.settings);
                estimate.tasks.push(EstimatedTask { task, minutes });
            }
            estimate.reports.push(report);
        }
        Ok(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Finding;
    use crate::settings::Quality;
    use crate::task::{TaskParams, TaskType};
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    fn tiny_scenario() -> IntegrationScenario {
        let source = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .rows("albums", vec![vec!["A".into()], vec!["B".into()]])
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("tiny", source, target, corrs).unwrap()
    }

    #[test]
    fn default_modules_produce_an_estimate() {
        let e = Estimator::with_default_modules(EstimationConfig::default());
        let est = e.estimate(&tiny_scenario()).unwrap();
        // A clean 1:1 scenario costs exactly the mapping connection.
        assert!(est.total_minutes() > 0.0);
        assert_eq!(est.cleaning_minutes(), 0.0);
        assert_eq!(est.reports.len(), 3);
        assert_eq!(est.mapping_minutes(), est.total_minutes());
    }

    #[test]
    fn category_breakdown_sums_to_total() {
        let e = Estimator::with_default_modules(EstimationConfig::default());
        let est = e.estimate(&tiny_scenario()).unwrap();
        let sum: f64 = est.by_category().values().sum();
        assert!((sum - est.total_minutes()).abs() < 1e-9);
    }

    /// A custom module: estimates duplicate-resolution effort — the
    /// extensibility path the paper requires.
    struct DuplicateModule;

    impl EstimationModule for DuplicateModule {
        fn name(&self) -> &str {
            "duplicates"
        }
        fn assess(&self, scenario: &IntegrationScenario) -> Result<ModuleReport, ModuleError> {
            let mut r = ModuleReport::new(self.name());
            let rows: u64 = scenario
                .iter_sources()
                .map(|(_, db)| db.instance.row_count() as u64)
                .sum();
            r.push(
                Finding::new("possible-duplicates", "all sources", "pairwise comparisons")
                    .with_int("comparisons", rows * rows.saturating_sub(1) / 2),
            );
            Ok(r)
        }
        fn plan(
            &self,
            _scenario: &IntegrationScenario,
            report: &ModuleReport,
            config: &EstimationConfig,
        ) -> Result<Vec<Task>, ModuleError> {
            Ok(report
                .of_kind("possible-duplicates")
                .map(|f| {
                    Task::new(
                        TaskType::Custom("resolve-duplicates".into()),
                        config.quality,
                        TaskParams::repeated(f.int("comparisons").unwrap_or(0)),
                        f.location.clone(),
                        self.name(),
                    )
                })
                .collect())
        }
    }

    #[test]
    fn custom_modules_plug_in() {
        let mut cfg = EstimationConfig::for_quality(Quality::HighQuality);
        cfg.effort_model.set(
            TaskType::Custom("resolve-duplicates".into()),
            crate::effort::EffortFunction::PerRepetition(0.1),
        );
        let mut e = Estimator::with_default_modules(cfg);
        e.register(Box::new(DuplicateModule));
        let est = e.estimate(&tiny_scenario()).unwrap();
        assert_eq!(est.reports.len(), 4);
        let custom = est
            .tasks
            .iter()
            .find(|t| matches!(t.task.task_type, TaskType::Custom(_)))
            .unwrap();
        assert!((custom.minutes - 0.1).abs() < 1e-12); // 1 comparison pair
    }
}
