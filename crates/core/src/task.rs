//! The task model: typed integration/cleaning tasks with parameters
//! (paper §3.4: *"Each of these tasks is of a certain type, is expected to
//! deliver a certain result quality, and comprises an arbitrary set of
//! parameters, such as on how many tuples it has to be executed."*).

use crate::settings::Quality;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The broad effort category a task belongs to — the stacking dimension
/// of Figures 6 and 7 (Mapping / Cleaning (Structure) / Cleaning
/// (Values)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskCategory {
    /// Writing executable mappings.
    Mapping,
    /// Repairing structural conflicts.
    CleaningStructure,
    /// Resolving value heterogeneities.
    CleaningValues,
    /// Other cleaning work (custom modules).
    CleaningOther,
}

impl TaskCategory {
    /// Display label as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            TaskCategory::Mapping => "Mapping",
            TaskCategory::CleaningStructure => "Cleaning (Structure)",
            TaskCategory::CleaningValues => "Cleaning (Values)",
            TaskCategory::CleaningOther => "Cleaning",
        }
    }
}

/// The task types of the paper's Tables 4, 7 and 9, plus an open variant
/// for custom modules.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskType {
    // --- mapping (§3, Table 2/9) ---
    /// Write an executable mapping for one connection.
    WriteMapping,

    // --- structural cleaning (§4, Tables 4/5/9) ---
    /// Reject tuples that violate a constraint (low effort).
    RejectTuples,
    /// Add values — Table 9's `Add values 2·#values`; fixes not-null
    /// violations at high quality (Table 5's "Add missing values").
    AddValues,
    /// Set surplus values to null (unique violated, low effort).
    SetValuesToNull,
    /// Aggregate tuples sharing a key (unique violated, high quality).
    AggregateTuples,
    /// Keep an arbitrary value (multiple attribute values, low effort).
    KeepAnyValue,
    /// Merge multiple values into one (multiple attribute values, high
    /// quality) — Table 5.
    MergeValues,
    /// Aggregate values — Table 9's `3·#repetitions` variant of merging.
    AggregateValues,
    /// Skip detached values during integration (low effort; free).
    DeleteDetachedValues,
    /// Create tuples to host detached values — Table 5's "Add tuples".
    AddTuples,
    /// Create enclosing tuples (Table 9's separately-priced variant).
    CreateEnclosingTuples,
    /// Delete dangling FK values (low effort).
    DeleteDanglingValues,
    /// Add missing referenced values (high quality).
    AddReferencedValues,
    /// Delete dangling tuples (Table 9 extra).
    DeleteDanglingTuples,
    /// Unlink all but one tuple (Table 9 extra).
    UnlinkAllButOneTuple,

    // --- value cleaning (§5, Tables 7/8/9) ---
    /// Convert values into the target representation.
    ConvertValues,
    /// Drop values with an incompatible representation.
    DropValues,
    /// Generalise too-specific values.
    GeneralizeValues,
    /// Refine too-general values.
    RefineValues,

    // --- extensibility ---
    /// A task type introduced by a custom estimation module.
    Custom(String),
}

impl TaskType {
    /// Display name (Table 5/8 style).
    pub fn label(&self) -> &str {
        match self {
            TaskType::WriteMapping => "Write mapping",
            TaskType::RejectTuples => "Reject tuples",
            TaskType::AddValues => "Add missing values",
            TaskType::SetValuesToNull => "Set values to null",
            TaskType::AggregateTuples => "Aggregate tuples",
            TaskType::KeepAnyValue => "Keep any value",
            TaskType::MergeValues => "Merge values",
            TaskType::AggregateValues => "Aggregate values",
            TaskType::DeleteDetachedValues => "Delete detached values",
            TaskType::AddTuples => "Add tuples",
            TaskType::CreateEnclosingTuples => "Create enclosing tuples",
            TaskType::DeleteDanglingValues => "Delete dangling values",
            TaskType::AddReferencedValues => "Add referenced values",
            TaskType::DeleteDanglingTuples => "Delete dangling tuples",
            TaskType::UnlinkAllButOneTuple => "Unlink all but one tuple",
            TaskType::ConvertValues => "Convert values",
            TaskType::DropValues => "Drop values",
            TaskType::GeneralizeValues => "Generalize values",
            TaskType::RefineValues => "Refine values",
            TaskType::Custom(name) => name,
        }
    }

    /// The category a built-in task type reports under.
    pub fn category(&self) -> TaskCategory {
        match self {
            TaskType::WriteMapping => TaskCategory::Mapping,
            TaskType::ConvertValues
            | TaskType::DropValues
            | TaskType::GeneralizeValues
            | TaskType::RefineValues => TaskCategory::CleaningValues,
            TaskType::Custom(_) => TaskCategory::CleaningOther,
            _ => TaskCategory::CleaningStructure,
        }
    }
}

/// Numeric task parameters consumed by the effort-calculation functions
/// (Table 9's `#repetitions`, `#values`, `#dist-vals`, `#tables`,
/// `#atts`, `#PKs`, `#FKs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskParams {
    /// How often the task must be performed.
    pub repetitions: u64,
    /// Number of values involved.
    pub values: u64,
    /// Number of distinct values involved.
    pub distinct_values: u64,
    /// Number of source tables (mapping connections).
    pub tables: u64,
    /// Number of attributes to copy (mapping connections).
    pub attributes: u64,
    /// Number of primary keys to generate (mapping connections).
    pub pks: u64,
    /// Number of foreign keys to establish (mapping connections).
    pub fks: u64,
}

impl TaskParams {
    /// Parameters for a task repeated `n` times over `n` values.
    pub fn repeated(n: u64) -> Self {
        TaskParams {
            repetitions: n,
            values: n,
            distinct_values: n,
            ..TaskParams::default()
        }
    }
}

/// A planned task: the unit the effort-calculation functions price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// The task type.
    pub task_type: TaskType,
    /// Category for the Figure 6/7 breakdown.
    pub category: TaskCategory,
    /// The quality level the task is expected to deliver.
    pub quality: Quality,
    /// Numeric parameters.
    pub params: TaskParams,
    /// Human-readable location, e.g. `records ← albums` or `title`.
    pub location: String,
    /// Which module proposed the task.
    pub module: String,
}

impl Task {
    /// Create a task; the category defaults from the task type.
    pub fn new(
        task_type: TaskType,
        quality: Quality,
        params: TaskParams,
        location: impl Into<String>,
        module: impl Into<String>,
    ) -> Self {
        let category = task_type.category();
        Task {
            task_type,
            category,
            quality,
            params,
            location: location.into(),
            module: module.into(),
        }
    }

    /// Override the category (custom modules).
    pub fn with_category(mut self, category: TaskCategory) -> Self {
        self.category = category;
        self
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.task_type.label(), self.location)?;
        if self.params.repetitions > 1 {
            write!(f, " ×{}", self.params.repetitions)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_modules() {
        assert_eq!(TaskType::WriteMapping.category(), TaskCategory::Mapping);
        assert_eq!(TaskType::MergeValues.category(), TaskCategory::CleaningStructure);
        assert_eq!(TaskType::ConvertValues.category(), TaskCategory::CleaningValues);
        assert_eq!(
            TaskType::Custom("find-duplicates".into()).category(),
            TaskCategory::CleaningOther
        );
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(TaskType::AddValues.label(), "Add missing values");
        assert_eq!(TaskType::AddTuples.label(), "Add tuples");
        assert_eq!(TaskType::ConvertValues.label(), "Convert values");
    }

    #[test]
    fn display_includes_repetitions() {
        let t = Task::new(
            TaskType::MergeValues,
            Quality::HighQuality,
            TaskParams::repeated(503),
            "title",
            "structure",
        );
        assert_eq!(t.to_string(), "Merge values (title) ×503");
    }

    #[test]
    fn with_category_overrides() {
        let t = Task::new(
            TaskType::Custom("x".into()),
            Quality::LowEffort,
            TaskParams::default(),
            "loc",
            "m",
        )
        .with_category(TaskCategory::Mapping);
        assert_eq!(t.category, TaskCategory::Mapping);
    }
}
