//! The serving API surface: a registry of named scenarios and the
//! serializable request/response protocol spoken by `efes-serve`.
//!
//! The estimation pipeline is a natural request/response workload — a
//! client names a scenario, picks estimator settings, and receives the
//! priced estimate — but the library types were built for in-process
//! use. This module adds the service-shaped layer: a
//! [`ScenarioRegistry`] resolving names to lazily-built, shared
//! [`IntegrationScenario`]s, and [`EstimateRequest`] /
//! [`EstimateResponse`] as the JSON wire protocol. The registry lives
//! here rather than in `efes-scenarios` so any crate (including user
//! code with custom scenarios) can register entries without depending
//! on the case-study generators.

use crate::estimate::{EffortEstimate, EstimatedTask, ModuleSelection};
use crate::settings::Quality;
use efes_relational::IntegrationScenario;
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

type BuildFn = Box<dyn Fn() -> IntegrationScenario + Send + Sync>;

struct RegistryEntry {
    description: String,
    build: BuildFn,
    cached: OnceLock<Arc<IntegrationScenario>>,
}

/// Where a listed scenario came from.
pub mod provenance {
    /// Compiled into the binary via [`super::ScenarioRegistry`].
    pub const STATIC: &str = "static";
    /// Uploaded at run time through `POST /scenarios`.
    pub const UPLOADED: &str = "uploaded";
}

/// A named scenario's listing entry — the `GET /scenarios` payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioInfo {
    /// The registered name, as accepted by [`EstimateRequest::scenario`].
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// `"static"` for compiled-in scenarios, `"uploaded"` for entries
    /// ingested through `POST /scenarios` (see [`provenance`]).
    pub provenance: String,
    /// Whether the scenario is materialised in memory: static entries
    /// build lazily on first estimate, uploaded entries are always
    /// resident.
    pub cached: bool,
    /// Approximate resident size of the scenario's data in bytes —
    /// reported for uploaded entries (which count against the ingest
    /// budget), `null` for static ones.
    pub resident_bytes: Option<u64>,
}

impl ScenarioInfo {
    /// A listing entry for a compiled-in scenario.
    pub fn of_static(name: impl Into<String>, description: impl Into<String>, cached: bool) -> Self {
        ScenarioInfo {
            name: name.into(),
            description: description.into(),
            provenance: provenance::STATIC.to_owned(),
            cached,
            resident_bytes: None,
        }
    }

    /// A listing entry for an uploaded scenario.
    pub fn of_uploaded(
        name: impl Into<String>,
        description: impl Into<String>,
        resident_bytes: u64,
    ) -> Self {
        ScenarioInfo {
            name: name.into(),
            description: description.into(),
            provenance: provenance::UPLOADED.to_owned(),
            cached: true,
            resident_bytes: Some(resident_bytes),
        }
    }
}

/// One lookup surface over every scenario source a server can resolve
/// names against — the compiled-in [`ScenarioRegistry`], the dynamic
/// upload registry layered on top of it in `efes-ingest`, or any other
/// composition. `efes-serve` routes all scenario resolution through
/// this trait, so swapping the backing store never touches a handler.
pub trait ScenarioProvider: Send + Sync {
    /// Resolve a name to its (shared, immutable) scenario.
    fn get(&self, name: &str) -> Option<Arc<IntegrationScenario>>;

    /// Whether `name` resolves, without materialising anything.
    fn contains(&self, name: &str) -> bool;

    /// Listing entries for every resolvable scenario, sorted by name.
    fn infos(&self) -> Vec<ScenarioInfo>;
}

/// A registry of named, lazily-constructed integration scenarios.
///
/// Construction runs at most once per entry (generators are seeded and
/// deterministic, so the cached instance is *the* scenario); the result
/// is shared as an `Arc` so concurrent estimation requests profile the
/// same immutable databases.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: BTreeMap<String, RegistryEntry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `build` under `name`, replacing any previous entry.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        build: impl Fn() -> IntegrationScenario + Send + Sync + 'static,
    ) {
        self.entries.insert(
            name.into(),
            RegistryEntry {
                description: description.into(),
                build: Box::new(build),
                cached: OnceLock::new(),
            },
        );
    }

    /// Resolve a name, building (and caching) the scenario on first use.
    pub fn get(&self, name: &str) -> Option<Arc<IntegrationScenario>> {
        let entry = self.entries.get(name)?;
        Some(Arc::clone(
            entry.cached.get_or_init(|| Arc::new((entry.build)())),
        ))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Listing entries for every registered scenario, in sorted order.
    /// `cached` reports whether the lazy build has run.
    pub fn infos(&self) -> Vec<ScenarioInfo> {
        self.entries
            .iter()
            .map(|(name, e)| {
                ScenarioInfo::of_static(name, &e.description, e.cached.get().is_some())
            })
            .collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ScenarioProvider for ScenarioRegistry {
    fn get(&self, name: &str) -> Option<Arc<IntegrationScenario>> {
        ScenarioRegistry::get(self, name)
    }

    fn contains(&self, name: &str) -> bool {
        ScenarioRegistry::contains(self, name)
    }

    fn infos(&self) -> Vec<ScenarioInfo> {
        ScenarioRegistry::infos(self)
    }
}

// `RegistryEntry` holds a closure, so `#[derive(Debug)]` is unavailable;
// render the registry as its name list instead.
impl fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// An estimation request: which scenario to price, under which settings.
///
/// Wire format is a JSON object; only `"scenario"` is required —
/// `"quality"` (`"HighQuality"` / `"LowEffort"`), `"modules"`
/// (`{"mapping":…,"structure":…,"values":…}`), `"deadline_ms"` and
/// `"include_tasks"` are optional and default as documented on the
/// fields.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRequest {
    /// Name of a registered scenario.
    pub scenario: String,
    /// Expected result quality. Default: [`Quality::HighQuality`].
    pub quality: Quality,
    /// Which estimation modules to run. Default: all three.
    pub modules: ModuleSelection,
    /// Per-request deadline in milliseconds; the server clamps it to its
    /// configured maximum. Default: the server's default deadline.
    pub deadline_ms: Option<u64>,
    /// Whether to return the full priced task list (can be large).
    /// Default: `false` — totals and per-category breakdown only.
    pub include_tasks: bool,
}

impl EstimateRequest {
    /// A request for `scenario` with default settings.
    pub fn new(scenario: impl Into<String>) -> Self {
        EstimateRequest {
            scenario: scenario.into(),
            quality: Quality::HighQuality,
            modules: ModuleSelection::all(),
            deadline_ms: None,
            include_tasks: false,
        }
    }
}

impl Serialize for EstimateRequest {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                Content::Str("scenario".into()),
                Content::Str(self.scenario.clone()),
            ),
            (Content::Str("quality".into()), self.quality.to_content()),
            (Content::Str("modules".into()), self.modules.to_content()),
            (
                Content::Str("deadline_ms".into()),
                self.deadline_ms.to_content(),
            ),
            (
                Content::Str("include_tasks".into()),
                self.include_tasks.to_content(),
            ),
        ])
    }
}

impl Deserialize for EstimateRequest {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `EstimateRequest`"))?;
        let scenario = match content_get(map, "scenario") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("EstimateRequest", "scenario")),
        };
        let mut request = EstimateRequest::new(scenario);
        if let Some(v) = content_get(map, "quality") {
            request.quality = Quality::from_content(v)?;
        }
        if let Some(v) = content_get(map, "modules") {
            request.modules = ModuleSelection::from_content(v)?;
        }
        if let Some(v) = content_get(map, "deadline_ms") {
            request.deadline_ms = Option::<u64>::from_content(v)?;
        }
        if let Some(v) = content_get(map, "include_tasks") {
            request.include_tasks = bool::from_content(v)?;
        }
        Ok(request)
    }
}

/// The estimation response: effort totals, the per-category breakdown,
/// and (on request) the full priced task list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateResponse {
    /// The scenario that was priced.
    pub scenario: String,
    /// The quality level the estimate was produced at.
    pub quality: Quality,
    /// Label of the modules that ran, e.g. `mapping+structure+values`.
    pub modules: String,
    /// Total estimated effort in minutes.
    pub total_minutes: f64,
    /// Mapping effort in minutes.
    pub mapping_minutes: f64,
    /// Cleaning effort (structure + values + other) in minutes.
    pub cleaning_minutes: f64,
    /// Per-category minutes, keyed by category label.
    pub by_category: BTreeMap<String, f64>,
    /// Number of planned tasks.
    pub task_count: u64,
    /// Number of complexity findings across all module reports.
    pub finding_count: u64,
    /// The priced tasks, when [`EstimateRequest::include_tasks`] was set.
    pub tasks: Option<Vec<EstimatedTask>>,
}

impl EstimateResponse {
    /// Build the response for `estimate`, produced under `request`.
    pub fn from_estimate(estimate: &EffortEstimate, request: &EstimateRequest) -> Self {
        EstimateResponse {
            scenario: estimate.scenario.clone(),
            quality: request.quality,
            modules: request.modules.label(),
            total_minutes: estimate.total_minutes(),
            mapping_minutes: estimate.mapping_minutes(),
            cleaning_minutes: estimate.cleaning_minutes(),
            by_category: estimate
                .by_category()
                .into_iter()
                .map(|(c, m)| (c.label().to_owned(), m))
                .collect(),
            task_count: estimate.tasks.len() as u64,
            finding_count: estimate
                .reports
                .iter()
                .map(|r| r.findings.len() as u64)
                .sum(),
            tasks: request
                .include_tasks
                .then(|| estimate.tasks.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder};

    fn tiny_scenario() -> IntegrationScenario {
        let source = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .rows("albums", vec![vec!["A".into()]])
            .build()
            .unwrap();
        let target = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("tiny", source, target, corrs).unwrap()
    }

    #[test]
    fn registry_builds_lazily_and_caches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let mut reg = ScenarioRegistry::new();
        reg.register("tiny", "a tiny scenario", || {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            tiny_scenario()
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 0);
        let a = reg.get("tiny").unwrap();
        let b = reg.get("tiny").unwrap();
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["tiny"]);
        assert_eq!(reg.infos()[0].description, "a tiny scenario");
    }

    #[test]
    fn request_defaults_apply_to_missing_fields() {
        let req: EstimateRequest =
            serde_json::from_str(r#"{"scenario":"music-example"}"#).unwrap();
        assert_eq!(req.scenario, "music-example");
        assert_eq!(req.quality, Quality::HighQuality);
        assert_eq!(req.modules, ModuleSelection::all());
        assert_eq!(req.deadline_ms, None);
        assert!(!req.include_tasks);
    }

    #[test]
    fn request_round_trips_with_overrides() {
        let mut req = EstimateRequest::new("amalgam-s1-s2");
        req.quality = Quality::LowEffort;
        req.modules = ModuleSelection::mapping_only();
        req.deadline_ms = Some(2500);
        req.include_tasks = true;
        let json = serde_json::to_string(&req).unwrap();
        let back: EstimateRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_without_scenario_is_rejected() {
        let err = serde_json::from_str::<EstimateRequest>(r#"{"quality":"LowEffort"}"#)
            .unwrap_err();
        assert!(err.to_string().contains("scenario"));
    }

    #[test]
    fn response_matches_library_totals() {
        use crate::config::EstimationConfig;
        use crate::estimate::Estimator;
        let scenario = tiny_scenario();
        let estimate = Estimator::with_default_modules(EstimationConfig::default())
            .estimate(&scenario)
            .unwrap();
        let resp = EstimateResponse::from_estimate(&estimate, &EstimateRequest::new("tiny"));
        assert_eq!(resp.total_minutes, estimate.total_minutes());
        assert_eq!(resp.mapping_minutes, estimate.mapping_minutes());
        assert_eq!(resp.task_count as usize, estimate.tasks.len());
        assert!(resp.tasks.is_none());
        let json = serde_json::to_string(&resp).unwrap();
        let back: EstimateResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
