//! The estimation configuration: quality level, execution settings,
//! effort model, planner options.
//!
//! The prototype took these via an XML file; this implementation uses
//! JSON (see [`EstimationConfig::to_json`] / [`EstimationConfig::from_json`]).

use crate::effort::EffortModel;
use crate::settings::{ExecutionSettings, Quality};
use efes_exec::ExecutionPolicy;
use serde::{Deserialize, Serialize};

/// Everything the effort-estimation phase needs beyond the scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimationConfig {
    /// Expected result quality (drives task selection, Tables 4/7).
    pub quality: Quality,
    /// Execution settings (§3.4 (ii)).
    pub settings: ExecutionSettings,
    /// Effort-calculation functions (Table 9 by default).
    pub effort_model: EffortModel,
    /// Iteration cap for the structure repair simulation.
    pub max_repair_iterations: usize,
    /// How the pipeline executes independent units (modules,
    /// correspondences, relationships). Deliberately not serialised: the
    /// estimate must not depend on it, so it is machine-local state, not
    /// part of a shareable configuration file.
    #[serde(skip)]
    pub execution: ExecutionPolicy,
}

impl Default for EstimationConfig {
    fn default() -> Self {
        EstimationConfig {
            quality: Quality::HighQuality,
            settings: ExecutionSettings::default(),
            effort_model: EffortModel::table9(),
            max_repair_iterations: 1000,
            execution: ExecutionPolicy::default(),
        }
    }
}

impl EstimationConfig {
    /// A configuration for a given quality with the Table 9 functions.
    pub fn for_quality(quality: Quality) -> Self {
        EstimationConfig {
            quality,
            ..EstimationConfig::default()
        }
    }

    /// Builder-style override of the execution policy.
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// Serialise to pretty JSON (the configuration-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effort::EffortFunction;
    use crate::task::TaskType;

    #[test]
    fn json_round_trip() {
        let mut cfg = EstimationConfig::for_quality(Quality::LowEffort);
        cfg.settings.criticality_factor = 2.5;
        cfg.effort_model
            .set(TaskType::WriteMapping, EffortFunction::Constant(2.0));
        let json = cfg.to_json();
        let back = EstimationConfig::from_json(&json).unwrap();
        assert_eq!(back.quality, Quality::LowEffort);
        assert_eq!(back.settings.criticality_factor, 2.5);
        assert_eq!(
            back.effort_model.function(&TaskType::WriteMapping),
            Some(&EffortFunction::Constant(2.0))
        );
    }

    #[test]
    fn execution_policy_is_not_serialised() {
        let cfg = EstimationConfig::default().with_execution(ExecutionPolicy::Threads(7));
        assert!(!cfg.to_json().contains("execution"));
        let back = EstimationConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.execution, ExecutionPolicy::default());
    }

    #[test]
    fn default_is_high_quality_table9() {
        let cfg = EstimationConfig::default();
        assert_eq!(cfg.quality, Quality::HighQuality);
        assert!(cfg.effort_model.function(&TaskType::ConvertValues).is_some());
    }
}
