//! Cost-benefit analysis — the paper's §7 outlook: *"This integration
//! would allow to plot cost-benefit graphs for the integration: the more
//! effort, the better the quality of the result."*
//!
//! The *cost* axis is the effort estimate. The *benefit* axis is the
//! fraction of source information the plan retains: low-effort plans
//! reject tuples, drop detached values and discard unconvertible
//! representations; high-quality plans repair instead. Benefit is
//! computed from the planned tasks themselves, so custom modules
//! participate automatically.

use crate::estimate::{EffortEstimate, Estimator};
use crate::framework::ModuleError;
use crate::settings::Quality;
use crate::task::TaskType;
use efes_relational::IntegrationScenario;
use serde::{Deserialize, Serialize};

/// One point of the cost-benefit curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBenefitPoint {
    /// The expected result quality this point was planned for.
    pub quality: Quality,
    /// Estimated effort in minutes (the cost axis).
    pub effort_minutes: f64,
    /// Fraction of source items retained by the plan, in `[0,1]`
    /// (the benefit axis).
    pub retained_fraction: f64,
    /// Absolute number of source items the plan discards.
    pub discarded_items: u64,
}

/// Count the source items a plan discards: repetitions of the
/// data-destroying task types (Table 4's low-effort column plus the
/// value-dropping tasks of Table 7).
pub fn discarded_items(estimate: &EffortEstimate) -> u64 {
    estimate
        .tasks
        .iter()
        .filter(|t| {
            matches!(
                t.task.task_type,
                TaskType::RejectTuples
                    | TaskType::DeleteDetachedValues
                    | TaskType::DropValues
                    | TaskType::SetValuesToNull
                    | TaskType::DeleteDanglingValues
                    | TaskType::DeleteDanglingTuples
                    | TaskType::KeepAnyValue // surplus values are lost
                    | TaskType::UnlinkAllButOneTuple
            )
        })
        .map(|t| {
            if t.task.task_type == TaskType::DropValues {
                // Dropping a representation discards every affected value.
                t.task.params.values.max(t.task.params.repetitions)
            } else {
                t.task.params.repetitions
            }
        })
        .sum()
}

/// Total source items at stake: every row of every source database.
fn source_items(scenario: &IntegrationScenario) -> u64 {
    scenario
        .iter_sources()
        .map(|(_, db)| db.instance.row_count() as u64)
        .sum()
}

/// Compute the two-point cost-benefit curve of a scenario: one point per
/// expected quality. The estimator factory receives the quality and must
/// return a configured estimator (so callers control modules, effort
/// functions and settings).
pub fn cost_benefit_curve(
    scenario: &IntegrationScenario,
    mut estimator_for: impl FnMut(Quality) -> Estimator,
) -> Result<Vec<CostBenefitPoint>, ModuleError> {
    let total = source_items(scenario).max(1);
    let mut out = Vec::new();
    for quality in [Quality::LowEffort, Quality::HighQuality] {
        let estimate = estimator_for(quality).estimate(scenario)?;
        let discarded = discarded_items(&estimate);
        out.push(CostBenefitPoint {
            quality,
            effort_minutes: estimate.total_minutes(),
            retained_fraction: 1.0 - (discarded.min(total) as f64 / total as f64),
            discarded_items: discarded,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimationConfig;
    use crate::estimate::Estimator;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder, Value};

    /// A source with 6 albums, 2 of them without a title (NN violated in
    /// the target): low effort rejects them, high quality repairs them.
    fn scenario() -> IntegrationScenario {
        let mut source = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .build()
            .unwrap();
        for i in 0..6 {
            let name: Value = if i < 2 {
                Value::Null
            } else {
                format!("Album number {i} with a proper title").into()
            };
            source.insert_by_name("albums", vec![name]).unwrap();
        }
        let target = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text).not_null("title"))
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("cb", source, target, corrs).unwrap()
    }

    #[test]
    fn curve_trades_effort_for_retention() {
        let s = scenario();
        let curve = cost_benefit_curve(&s, |q| {
            Estimator::with_default_modules(EstimationConfig::for_quality(q))
        })
        .unwrap();
        assert_eq!(curve.len(), 2);
        let low = &curve[0];
        let high = &curve[1];
        // More effort …
        assert!(high.effort_minutes > low.effort_minutes);
        // … buys more retained data.
        assert!(high.retained_fraction > low.retained_fraction);
        assert_eq!(low.discarded_items, 2);
        assert_eq!(high.discarded_items, 0);
        assert_eq!(high.retained_fraction, 1.0);
        assert!((low.retained_fraction - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn clean_scenarios_retain_everything_at_both_qualities() {
        let source = DatabaseBuilder::new("s")
            .table("t", |t| t.attr("x", DataType::Text))
            .rows("t", vec![vec!["a".into()], vec!["b".into()]])
            .build()
            .unwrap();
        let mut target = source.clone();
        target.schema.name = "t2".into();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("t", "t")
            .unwrap()
            .attr("t", "x", "t", "x")
            .unwrap()
            .finish();
        let s = IntegrationScenario::single_source("clean", source, target, corrs).unwrap();
        let curve = cost_benefit_curve(&s, |q| {
            Estimator::with_default_modules(EstimationConfig::for_quality(q))
        })
        .unwrap();
        assert!(curve.iter().all(|p| p.retained_fraction == 1.0));
    }
}
