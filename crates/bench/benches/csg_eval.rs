//! Counting evaluator vs materialising BTreeSet oracle on the conflict
//! detector's hot question — per-domain-element link counts for every
//! matched relationship expression — over a pinned 10⁵-row synthetic
//! scenario. The counting path is what `detect_conflicts` runs in
//! production; the reference path is the PR-1 evaluator kept as the
//! differential-test oracle. Both must agree byte-for-byte (asserted
//! once at setup), so the benchmark measures pure evaluation strategy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efes_csg::{database_to_csg, match_relationships, CsgInstance, NodeCorrespondences, RelExpr};
use efes_exec::RunContext;
use efes_relational::SourceId;
use efes_synth::SynthConfig;

const ROWS: usize = 100_000;

/// The pinned scenario: same shape as the `bench_scale` sweep so the
/// numbers line up with the committed BENCH_scale.json points.
fn pinned_workload() -> (CsgInstance, Vec<(RelExpr, efes_csg::NodeId)>) {
    let mut cfg = SynthConfig::default().with_rows(ROWS);
    cfg.shape.tables = 2;
    cfg.shape.payload_attrs = 3;
    cfg.shape.fanout = 2;
    cfg.shape.sources = 1;
    let out = efes_synth::generate(&cfg);
    let scenario = out.scenario;

    let target_conv = database_to_csg(&scenario.target);
    let source_conv = database_to_csg(scenario.source(SourceId(0)));
    let corr = NodeCorrespondences::from_scenario(&scenario, SourceId(0), &target_conv, &source_conv);
    let matches = match_relationships(&target_conv.csg, &source_conv.csg, &corr);
    let work: Vec<(RelExpr, efes_csg::NodeId)> = matches
        .iter()
        .filter_map(|m| {
            let domain = m.source_expr.start(&source_conv.csg)?;
            Some((m.source_expr.clone(), domain))
        })
        .collect();
    assert!(!work.is_empty(), "matching produced no expressions to evaluate");
    (source_conv.instance, work)
}

fn bench_csg_eval(c: &mut Criterion) {
    let (instance, work) = pinned_workload();
    let run = RunContext::unbounded();
    let ck = run.checkpoint();

    // Differential check up front: the two strategies must agree.
    for (expr, domain) in &work {
        assert_eq!(
            instance.count_eval(expr, *domain),
            instance
                .link_counts_reference_ctx(expr, *domain, &ck)
                .expect("unbounded context never cancels"),
        );
    }

    let mut group = c.benchmark_group("csg_eval");
    group.sample_size(10);
    group.bench_function("counting_100k", |b| {
        b.iter(|| {
            for (expr, domain) in &work {
                black_box(instance.count_eval(black_box(expr), *domain));
            }
        })
    });
    group.bench_function("btreeset_reference_100k", |b| {
        b.iter(|| {
            for (expr, domain) in &work {
                black_box(
                    instance
                        .link_counts_reference_ctx(black_box(expr), *domain, &ck)
                        .expect("unbounded context never cancels"),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_csg_eval);
criterion_main!(benches);
