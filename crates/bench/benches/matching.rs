//! Schema-matcher benchmarks: string similarities, the combined matcher,
//! and similarity flooding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efes_matching::{
    jaro_winkler, levenshtein, similarity_flooding, similarity_flooding_reference,
    trigram_jaccard, CombinedMatcher, FloodingConfig, MatcherConfig, PrunePolicy,
};
use efes_scenarios::discography::schemas::{build_f, build_m, MusicSizes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matching(c: &mut Criterion) {
    c.bench_function("similarity/levenshtein", |b| {
        b.iter(|| levenshtein(black_box("artist_credits"), black_box("credit_names")))
    });
    c.bench_function("similarity/jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box("duration"), black_box("length_ms")))
    });
    c.bench_function("similarity/trigram_jaccard", |b| {
        b.iter(|| trigram_jaccard(black_box("publications"), black_box("publication_titles")))
    });

    let sizes = MusicSizes::small();
    let source = build_f(&sizes, &mut StdRng::seed_from_u64(1));
    let target = build_m(&sizes, &mut StdRng::seed_from_u64(2));
    let matcher = CombinedMatcher::new(MatcherConfig::default());
    c.bench_function("matcher/combined_f_to_m", |b| {
        b.iter(|| matcher.match_databases(black_box(&source), black_box(&target)))
    });
    let pruned = CombinedMatcher::new(MatcherConfig::default()).with_prune(PrunePolicy::On);
    c.bench_function("matcher/combined_f_to_m_pruned", |b| {
        b.iter(|| pruned.propose_attribute_matches(black_box(&source), black_box(&target)))
    });
    let exhaustive = CombinedMatcher::new(MatcherConfig::default()).with_prune(PrunePolicy::Off);
    c.bench_function("matcher/combined_f_to_m_exhaustive", |b| {
        b.iter(|| exhaustive.propose_attribute_matches(black_box(&source), black_box(&target)))
    });

    c.bench_function("matcher/similarity_flooding_f_to_m", |b| {
        b.iter(|| {
            similarity_flooding(
                black_box(&source),
                black_box(&target),
                &FloodingConfig::default(),
            )
        })
    });
    c.bench_function("matcher/similarity_flooding_f_to_m_reference", |b| {
        b.iter(|| {
            similarity_flooding_reference(
                black_box(&source),
                black_box(&target),
                &FloodingConfig::default(),
            )
        })
    });
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
