//! Serving overhead: one estimate through `efes-serve` over a loopback
//! socket versus the same estimate as a direct library call. The delta
//! is the full service tax — connection setup, HTTP parsing, queueing,
//! the worker handoff, and JSON serialisation of the response.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efes::prelude::*;
use efes::settings::Quality;
use efes_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const REQUEST_BODY: &str = r#"{"scenario":"music-example"}"#;

fn estimate_over_loopback(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /estimate HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{}",
                REQUEST_BODY.len(),
                REQUEST_BODY
            )
            .as_bytes(),
        )
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    response
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    let handle = Server::start(
        ServerConfig {
            workers: ExecutionPolicy::Threads(2),
            ..ServerConfig::default()
        },
        efes_scenarios::standard_registry(),
    )
    .expect("start server");
    let addr = handle.addr();
    // Warm the scenario build and its profile cache so the loop
    // measures steady-state serving, not first-request construction.
    estimate_over_loopback(addr);

    group.bench_function("music_example_over_loopback", |b| {
        b.iter(|| black_box(estimate_over_loopback(addr)))
    });

    let scenario = efes_scenarios::standard_registry()
        .get("music-example")
        .unwrap();
    group.bench_function("music_example_library_call", |b| {
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        b.iter(|| estimator.estimate(black_box(&scenario)).unwrap())
    });

    group.bench_function("metrics_scrape", |b| {
        b.iter(|| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nhost: bench\r\n\r\n")
                .expect("write");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            black_box(response)
        })
    });

    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
