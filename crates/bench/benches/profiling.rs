//! Throughput of the §5.1 statistics — the cost of the value fit
//! detector over realistic column sizes.
//!
//! Three implementations are measured against each other:
//!
//! * `*_multipass` — the legacy reference: one full column walk per
//!   statistic (up to eight passes);
//! * `*_profile` — the fused single-pass kernel over row-major values;
//! * `*_columnar` — the fused kernel over the typed columnar store
//!   (dictionary-weighted statistics for text columns).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use efes_profiling::AttributeProfile;
use efes_relational::{Column, DataType, Value};

fn text_column(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| Value::Text(format!("{}:{:02}", 2 + i % 7, (i * 13) % 60)))
        .collect()
}

fn int_column(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::Int(120_000 + i as i64 * 37)).collect()
}

fn as_rows(col: &[Value]) -> Vec<Vec<Value>> {
    col.iter().map(|v| vec![v.clone()]).collect()
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    for n in [1_000usize, 10_000, 100_000] {
        let texts = text_column(n);
        let ints = int_column(n);
        let text_store = Column::build(&as_rows(&texts), 0);
        let int_store = Column::build(&as_rows(&ints), 0);

        group.bench_with_input(BenchmarkId::new("text_profile", n), &texts, |b, col| {
            b.iter(|| AttributeProfile::compute(black_box(col.iter()), DataType::Text))
        });
        group.bench_with_input(
            BenchmarkId::new("text_profile_multipass", n),
            &texts,
            |b, col| {
                b.iter(|| {
                    AttributeProfile::compute_multipass(black_box(col.iter()), DataType::Text)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("text_profile_columnar", n),
            &text_store,
            |b, col| {
                b.iter(|| AttributeProfile::compute_columnar(black_box(col), DataType::Text))
            },
        );

        group.bench_with_input(BenchmarkId::new("numeric_profile", n), &ints, |b, col| {
            b.iter(|| AttributeProfile::compute(black_box(col.iter()), DataType::Integer))
        });
        group.bench_with_input(
            BenchmarkId::new("numeric_profile_multipass", n),
            &ints,
            |b, col| {
                b.iter(|| {
                    AttributeProfile::compute_multipass(black_box(col.iter()), DataType::Integer)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("numeric_profile_columnar", n),
            &int_store,
            |b, col| {
                b.iter(|| AttributeProfile::compute_columnar(black_box(col), DataType::Integer))
            },
        );
    }
    group.finish();

    // The fit combination itself (cheap; dominated by the profiles).
    let a = AttributeProfile::compute(text_column(10_000).iter(), DataType::Text);
    let b_profile = AttributeProfile::compute(text_column(10_000).iter(), DataType::Text);
    c.bench_function("profiling/fit_against", |b| {
        b.iter(|| AttributeProfile::fit_against(black_box(&a), black_box(&b_profile)))
    });
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
