//! Micro-benchmarks for the cardinality algebra (Lemmas 1–4) — the inner
//! loop of relationship matching.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efes_csg::Cardinality;

fn bench_cardinality(c: &mut Criterion) {
    let one = Cardinality::one();
    let zero_one = Cardinality::zero_or_one();
    let one_more = Cardinality::one_or_more();
    let any = Cardinality::any();
    let multi = Cardinality::from_intervals([(0, Some(1)), (3, Some(7)), (12, None)]);

    c.bench_function("cardinality/compose_chain", |b| {
        b.iter(|| {
            // The 8-step worst-case path composition of the matcher.
            let mut k = black_box(&one).clone();
            for step in [&zero_one, &one_more, &one, &any, &one, &zero_one, &one_more] {
                k = k.compose(step);
            }
            black_box(k)
        })
    });

    c.bench_function("cardinality/subset_check", |b| {
        b.iter(|| {
            black_box(
                one.is_subset(&any)
                    && zero_one.is_subset(&any)
                    && !any.is_subset(&one)
                    && multi.is_subset(&any),
            )
        })
    });

    c.bench_function("cardinality/union_normalise", |b| {
        b.iter(|| black_box(&multi).union(black_box(&zero_one)))
    });

    c.bench_function("cardinality/join_and_collateral", |b| {
        b.iter(|| {
            let j = black_box(&multi).join(black_box(&one_more));
            let col = black_box(&multi).collateral(black_box(&zero_one));
            black_box((j, col))
        })
    });
}

criterion_group!(benches, bench_cardinality);
criterion_main!(benches);
