//! End-to-end estimation latency: the whole two-phase pipeline on the
//! evaluation scenarios. This is the number a practitioner experiences
//! when pointing EFES at a scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efes::prelude::*;
use efes::settings::Quality;
use efes_scenarios::amalgam::{amalgam_scenarios, AmalgamConfig};
use efes_scenarios::discography::{discography_scenarios, DiscographyConfig};
use efes_scenarios::evaluation::full_evaluation;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    let (music, _) = music_example_scenario(&MusicExampleConfig::scaled_down());
    group.bench_function("music_example_scaled", |b| {
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        b.iter(|| estimator.estimate(black_box(&music)).unwrap())
    });

    let bib = amalgam_scenarios(&AmalgamConfig::default());
    group.bench_function("amalgam_s1_s2", |b| {
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        b.iter(|| estimator.estimate(black_box(&bib[0].0)).unwrap())
    });

    let disco = discography_scenarios(&DiscographyConfig::default());
    group.bench_function("discography_m1_d2", |b| {
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        b.iter(|| estimator.estimate(black_box(&disco[1].0)).unwrap())
    });

    // Sequential vs parallel on the same scenario: the pair backs the
    // speedup table (`repro -- speedup`). On a single-core runner both
    // resolve to the same code path and should measure alike.
    group.bench_function("music_example_sequential", |b| {
        let estimator = Estimator::with_default_modules(
            EstimationConfig::default().with_execution(ExecutionPolicy::Sequential),
        );
        b.iter(|| estimator.estimate(black_box(&music)).unwrap())
    });
    group.bench_function("music_example_parallel", |b| {
        let estimator = Estimator::with_default_modules(
            EstimationConfig::default()
                .with_execution(ExecutionPolicy::Threads(efes_exec::available_threads())),
        );
        b.iter(|| estimator.estimate(black_box(&music)).unwrap())
    });

    group.bench_function("full_evaluation_both_domains", |b| {
        b.iter(|| {
            full_evaluation(
                black_box(&AmalgamConfig::default()),
                black_box(&DiscographyConfig::default()),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
