//! The structure-module pipeline at increasing instance sizes:
//! relational → CSG conversion, relationship matching, conflict
//! detection, repair planning. Backs the paper's §6.2 claim that the
//! analysis *"completes within seconds for databases with thousands of
//! tuples"*.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use efes_csg::planner::{plan_repairs, PlannerOptions};
use efes_csg::{database_to_csg, detect_conflicts, match_relationships, NodeCorrespondences, Quality};
use efes_relational::{IntegrationScenario, SourceId};
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn scenario_with(songs: usize) -> IntegrationScenario {
    let cfg = MusicExampleConfig {
        single_artist_albums: songs / 60,
        multi_artist_albums: songs / 500 + 1,
        detached_artists: songs / 2500 + 1,
        songs,
        distinct_lengths: songs * 95 / 100,
        target_records: 50,
        target_tracks_per_record: 6,
        seed: 7,
    };
    music_example_scenario(&cfg).0
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("csg_pipeline");
    group.sample_size(10);
    for songs in [1_000usize, 10_000, 50_000] {
        let scenario = scenario_with(songs);
        group.bench_with_input(
            BenchmarkId::new("convert_source", songs),
            &scenario,
            |b, s| b.iter(|| database_to_csg(black_box(s.source(SourceId(0))))),
        );
        let target_conv = database_to_csg(&scenario.target);
        let source_conv = database_to_csg(scenario.source(SourceId(0)));
        let corr = NodeCorrespondences::from_scenario(
            &scenario,
            SourceId(0),
            &target_conv,
            &source_conv,
        );
        group.bench_with_input(
            BenchmarkId::new("match_and_detect", songs),
            &(),
            |b, _| {
                b.iter(|| {
                    let matches =
                        match_relationships(&target_conv.csg, &source_conv.csg, &corr);
                    detect_conflicts(&target_conv, &source_conv, black_box(&matches))
                })
            },
        );
        let matches = match_relationships(&target_conv.csg, &source_conv.csg, &corr);
        let conflicts = detect_conflicts(&target_conv, &source_conv, &matches);
        group.bench_with_input(BenchmarkId::new("plan_repairs", songs), &(), |b, _| {
            b.iter(|| {
                plan_repairs(
                    &target_conv,
                    black_box(&matches),
                    black_box(&conflicts),
                    Quality::HighQuality,
                    &PlannerOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
