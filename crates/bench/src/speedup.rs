//! The sequential-vs-parallel speedup report.
//!
//! Runs the full two-phase pipeline on the running example twice — once
//! forced sequential, once with one worker per available core — and
//! prints the per-stage wall-clock tables recorded in
//! [`efes::PipelineTimings`] side by side with the resulting speedup
//! factor. The estimates themselves are asserted identical, so the
//! report doubles as a determinism check.

use efes::prelude::*;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

/// Best-of-`runs` estimate timings under one execution policy.
fn best_run(
    scenario: &efes_relational::IntegrationScenario,
    policy: ExecutionPolicy,
    runs: usize,
) -> EffortEstimate {
    let estimator =
        Estimator::with_default_modules(EstimationConfig::default().with_execution(policy));
    let mut best: Option<EffortEstimate> = None;
    for _ in 0..runs.max(1) {
        let est = estimator.estimate(scenario).expect("estimation succeeds");
        if best
            .as_ref()
            .is_none_or(|b| est.timings.total_millis < b.timings.total_millis)
        {
            best = Some(est);
        }
    }
    best.expect("at least one run")
}

/// Render the speedup report for the running example at the given scale.
pub fn speedup_report(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    // Honour EFES_THREADS for the parallel leg; unset uses the cores.
    let threads = ExecutionMode::from_env().threads();
    let runs = 3;

    let sequential = best_run(&scenario, ExecutionPolicy::Sequential, runs);
    let parallel = best_run(&scenario, ExecutionPolicy::Threads(threads), runs);
    assert_eq!(
        sequential, parallel,
        "parallel estimate must be identical to sequential"
    );

    let factor = sequential.timings.total_millis / parallel.timings.total_millis.max(1e-9);
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline speedup — scenario `{}` (best of {runs} runs)\n\n",
        scenario.name
    ));
    out.push_str(&format!("sequential (1 thread):\n{}", sequential.timings.table()));
    out.push_str(&format!(
        "\nparallel ({threads} thread{}):\n{}",
        if threads == 1 { "" } else { "s" },
        parallel.timings.table()
    ));
    out.push_str(&format!(
        "\nspeedup: {factor:.2}x  (estimates identical: yes)\n"
    ));
    if threads == 1 {
        out.push_str(
            "\nNote: only one worker thread is available (single core, or\n\
             EFES_THREADS <= 1), so the parallel run degenerates to the\n\
             sequential code path; run on a multi-core machine (>= 4 cores)\n\
             to observe the speedup.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_prints_both_tables_and_a_factor() {
        let report = speedup_report(&MusicExampleConfig::scaled_down());
        assert!(report.contains("sequential (1 thread):"));
        assert!(report.contains("parallel ("));
        assert!(report.contains("speedup: "));
        assert!(report.contains("estimates identical: yes"));
        // One "total" row per table.
        assert_eq!(report.matches("total").count(), 2);
    }
}
