//! Regeneration of Figures 6 and 7: grouped, category-stacked effort
//! bars for EFES / Measured / Counting, rendered as text.

use efes::task::TaskCategory;
use efes_scenarios::amalgam::AmalgamConfig;
use efes_scenarios::discography::DiscographyConfig;
use efes_scenarios::evaluation::{full_evaluation, DomainEvaluation};
use std::collections::BTreeMap;

const BAR_WIDTH: usize = 46;

/// Render one stacked bar: mapping `M`, cleaning-values `v`,
/// cleaning-structure `s`, other cleaning `c`, scaled so `max` fills
/// [`BAR_WIDTH`] characters.
fn stacked_bar(parts: &BTreeMap<TaskCategory, f64>, max: f64) -> String {
    let mut bar = String::new();
    let glyph = |c: TaskCategory| match c {
        TaskCategory::Mapping => 'M',
        TaskCategory::CleaningValues => 'v',
        TaskCategory::CleaningStructure => 's',
        TaskCategory::CleaningOther => 'c',
    };
    for (cat, minutes) in parts {
        let cells = ((minutes / max) * BAR_WIDTH as f64).round() as usize;
        bar.extend(std::iter::repeat_n(glyph(*cat), cells));
    }
    bar
}

/// Render one domain evaluation as a Figure 6/7-style chart.
pub fn render_domain(eval: &DomainEvaluation, figure_no: u8) -> String {
    let mut out = format!(
        "Figure {figure_no}: Effort estimates (EFES), actual effort (Measured), and\n\
         baseline estimates (Counting) of the {} scenario.\n\
         Legend: M mapping, s cleaning (structure), v cleaning (values).\n\n",
        eval.domain
    );
    let max = eval
        .results
        .iter()
        .flat_map(|r| {
            [
                r.efes_total(),
                r.measured_total(),
                r.counting_total(),
            ]
        })
        .fold(1.0f64, f64::max);
    for r in &eval.results {
        out.push_str(&format!("{}\n", r.label()));
        let counting: BTreeMap<TaskCategory, f64> = [
            (TaskCategory::Mapping, r.counting_mapping),
            (TaskCategory::CleaningOther, r.counting_cleaning),
        ]
        .into_iter()
        .collect();
        for (name, parts, total) in [
            ("EFES    ", &r.efes, r.efes_total()),
            ("Measured", &r.measured, r.measured_total()),
            ("Counting", &counting, r.counting_total()),
        ] {
            out.push_str(&format!(
                "  {name} {:>6.0} min |{}\n",
                total,
                stacked_bar(parts, max)
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "rmse: EFES {:.2}, Counting {:.2} (lower is better; the paper reports {} vs {})\n",
        eval.rmse_efes,
        eval.rmse_counting,
        if figure_no == 6 { "0.47" } else { "1.05" },
        if figure_no == 6 { "1.90" } else { "1.64" },
    ));
    out
}

/// Run the full §6.2 evaluation and render both figures plus the overall
/// RMSE comparison.
pub fn figures6_and_7(
    amalgam_cfg: &AmalgamConfig,
    disco_cfg: &DiscographyConfig,
) -> (String, String, String) {
    let (fig6, fig7, overall_efes, overall_counting) = full_evaluation(amalgam_cfg, disco_cfg);
    let summary = format!(
        "Overall (both domains, 16 scenario runs): rmse EFES {:.2}, Counting {:.2}\n\
         (paper: 0.84 vs 1.70 — our oracle ground truth is mechanical, so absolute\n\
         errors are smaller; the ordering and the per-domain gap shape match).\n",
        overall_efes, overall_counting
    );
    (
        render_domain(&fig6, 6),
        render_domain(&fig7, 7),
        summary,
    )
}
