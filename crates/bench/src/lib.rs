//! # efes-bench
//!
//! The reproduction harness: one function per paper artifact (Tables 1–9,
//! Figures 2, 4, 5, 6, 7), each returning the regenerated content as
//! text. The `repro` binary prints them; the workspace integration tests
//! assert on them; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! Run `cargo run -p efes-bench --bin repro -- all` for everything, or
//! pass an artifact name (`table5`, `figure6`, …).

pub mod artifacts;
pub mod figures;
pub mod speedup;

pub use artifacts::*;
pub use figures::*;
pub use speedup::*;
