//! `bench_scale` — a scale sweep over synthetic scenarios that fits a
//! per-stage scaling exponent, to find the next super-linear hot path.
//!
//! ```text
//! cargo run --release -p efes-bench --bin bench_scale               # 10^4 → 10^7
//! cargo run --release -p efes-bench --bin bench_scale -- --quick    # 10^4 → 10^5
//! ```
//!
//! For each row count the sweep generates one seeded scenario with
//! `efes-synth` (fixed shape, default dirt) and times five stages
//! independently: generation itself, attribute profiling, matcher
//! scoring, CSG planning (constraint-violation simulation), and the
//! full sequential estimate. A log-log least-squares fit of median
//! wall-clock against row count yields each stage's empirical scaling
//! exponent — `1.0` is linear, `2.0` quadratic. Like `bench_smoke`,
//! numbers are medians of a handful of runs: indicative trends, not
//! statistics. The process only fails on build/run errors; exponent
//! gating is the CI job's concern.

use efes::modules::StructureModule;
use efes::prelude::*;
use efes_exec::ExecutionMode;
use efes_matching::CombinedMatcher;
use efes_profiling::{AttributeProfile, ProfileCache};
use efes_relational::SourceId;
use efes_synth::{SynthConfig, SynthScenario};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Median wall-clock nanoseconds of `iters` runs of `f` (after one
/// warm-up run).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[derive(Serialize)]
struct Point {
    rows: usize,
    iters: usize,
    /// Median wall-clock nanoseconds per stage at this scale.
    median_ns: BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct StageFit {
    name: String,
    /// Log-log least-squares slope: the empirical scaling exponent.
    exponent: f64,
    /// Goodness of the fit (1.0 = perfect power law).
    r2: f64,
    /// Median milliseconds at the largest swept scale.
    median_ms_at_max: f64,
}

#[derive(Serialize)]
struct ShapeSummary {
    tables: usize,
    payload_attrs: usize,
    fanout: usize,
    sources: usize,
    seed: u64,
}

#[derive(Serialize)]
struct Report {
    scenario: String,
    commit: String,
    quick: bool,
    shape: ShapeSummary,
    points: Vec<Point>,
    stages: Vec<StageFit>,
}

/// Ordinary least squares on `(ln x, ln y)`: returns `(slope, r²)`.
fn fit_power(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|(x, _)| x.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| y.max(1.0).ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 {
        return (0.0, 0.0);
    }
    let slope = sxy / sxx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    (slope, r2)
}

/// The fixed sweep shape: only `rows` varies, so the fitted exponent is
/// a pure function of data volume.
fn sweep_config(rows: usize) -> SynthConfig {
    let mut cfg = SynthConfig::default().with_rows(rows);
    cfg.shape.tables = 2;
    cfg.shape.payload_attrs = 3;
    cfg.shape.fanout = 2;
    cfg.shape.sources = 1;
    cfg
}

/// Profile every attribute of every source table through a fresh cache —
/// the phase-1 workload of the values module.
fn profile_all(out: &SynthScenario) {
    let db = &out.scenario.sources[0];
    for (tid, table) in db.schema.tables().iter().enumerate() {
        for (aid, attr) in table.attributes.iter().enumerate() {
            std::hint::black_box(AttributeProfile::of_attribute(
                db,
                efes_relational::TableId(tid),
                efes_relational::AttrId(aid),
                attr.datatype,
            ));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_owned());

    // Half-decade steps 10^4 → 10^7 (10^4 → 10^5 for --quick).
    let scales: &[usize] = if quick {
        &[10_000, 31_623, 100_000]
    } else {
        &[10_000, 31_623, 100_000, 316_228, 1_000_000, 3_162_278, 10_000_000]
    };
    // Above 10^6 rows each stage already runs for seconds; two timed
    // iterations (plus the warm-up) keep the full sweep tractable
    // without moving the median discernibly.
    let iters_at = |rows: usize| if rows > 1_000_000 { 2usize } else { 3usize };

    let est_config = || EstimationConfig::default().with_execution(ExecutionPolicy::Sequential);
    let mut points: Vec<Point> = Vec::new();
    eprintln!(
        "bench_scale: rows {:?} (median of 2-3 iters), fixed shape 2 tables × 3 payload attrs × fan-out 2",
        scales
    );
    for &rows in scales {
        let cfg = sweep_config(rows);
        let iters = iters_at(rows);
        let mut medians = BTreeMap::new();
        eprintln!("rows = {rows} ({iters} iters)");
        let mut record = |name: &str, ns: u64| {
            eprintln!("  {name:16} {:12.3} ms", ns as f64 / 1e6);
            medians.insert(name.to_owned(), ns);
        };

        record("generate", median_ns(iters, || {
            std::hint::black_box(efes_synth::generate(&cfg));
        }));

        let out = efes_synth::generate(&cfg);
        record("profiling", median_ns(iters, || profile_all(&out)));
        record("matching", median_ns(iters, || {
            std::hint::black_box(CombinedMatcher::default().propose_attribute_matches_with(
                &out.scenario.sources[0],
                &out.scenario.target,
                &ProfileCache::new(),
                ExecutionMode::Sequential,
            ));
        }));
        record("csg_planning", median_ns(iters, || {
            std::hint::black_box(
                StructureModule::default()
                    .plan_for_source(&out.scenario, SourceId(0), &est_config())
                    .expect("planning succeeds"),
            );
        }));
        record("end_to_end", median_ns(iters, || {
            std::hint::black_box(
                Estimator::with_default_modules(est_config())
                    .estimate(&out.scenario)
                    .expect("estimation succeeds"),
            );
        }));
        points.push(Point {
            rows,
            iters,
            median_ns: medians,
        });
    }

    let stage_names: Vec<String> = points[0].median_ns.keys().cloned().collect();
    let mut stages: Vec<StageFit> = Vec::new();
    eprintln!("fitted scaling exponents (ln t ~ e · ln rows):");
    for name in &stage_names {
        let series: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.rows as f64, p.median_ns[name] as f64))
            .collect();
        let (exponent, r2) = fit_power(&series);
        let max_ns = points.last().unwrap().median_ns[name];
        eprintln!("  {name:16} e = {exponent:5.2}  (r² = {r2:4.2})");
        stages.push(StageFit {
            name: name.clone(),
            exponent,
            r2,
            median_ms_at_max: max_ns as f64 / 1e6,
        });
    }

    let shape = sweep_config(0);
    let report = Report {
        scenario: "synth-scale-sweep".to_owned(),
        commit: commit(),
        quick,
        shape: ShapeSummary {
            tables: shape.shape.tables,
            payload_attrs: shape.shape.payload_attrs,
            fanout: shape.shape.fanout,
            sources: shape.shape.sources,
            seed: shape.seed,
        },
        points,
        stages,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, pretty + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
