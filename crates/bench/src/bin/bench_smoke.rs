//! `bench_smoke` — a fast, plain-wall-clock benchmark of the profiling
//! and matching hot paths, for CI smoke runs and for recording the
//! fused-kernel / columnar-store / sparse-flooding / pruned-matcher
//! speedups next to the commit that produced them.
//!
//! ```text
//! cargo run --release -p efes-bench --bin bench_smoke -- --quick
//! cargo run --release -p efes-bench --bin bench_smoke -- \
//!     --out BENCH_profiling.json --out-matching BENCH_matching.json
//! ```
//!
//! Unlike the Criterion benches (`cargo bench -p efes-bench`), this
//! finishes in seconds: per stage it takes the median of a handful of
//! timed runs. Numbers are indicative, not statistically rigorous — the
//! point is a recorded order-of-magnitude trend per commit. The process
//! fails (non-zero exit) only on build/run errors, never on regressions.

use efes_exec::{available_threads, ExecutionMode, RunContext};
use efes_matching::{
    similarity_flooding, similarity_flooding_reference, CombinedMatcher, FloodingConfig,
    MatcherConfig, PrunePolicy,
};
use efes_profiling::{kernel, shard, AttributeProfile, ProfileCache};
use efes_relational::{Column, DataType, Database, DatabaseBuilder, Value};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Stage {
    name: String,
    rows: usize,
    iters: usize,
    median_ns: u64,
    median_ms: f64,
}

#[derive(Serialize)]
struct Speedups {
    text_fused: f64,
    text_columnar: f64,
    text_columnar_including_build: f64,
    numeric_fused: f64,
    numeric_columnar: f64,
}

/// Sharded-monoid vs fused-kernel ratios at the fixed 100k-row size,
/// per thread count. Ratios are fused_median / sharded_median, so > 1
/// means the sharded path is faster. On a single-core host every entry
/// sits near 1.0 (there is no parallelism to win); the `host_threads`
/// field of the report records what the numbers could use.
#[derive(Serialize)]
struct ShardedSpeedups {
    text_hicard_sharded_1t: f64,
    text_hicard_sharded_4t: f64,
    text_hicard_sharded_max: f64,
    numeric_sharded_1t: f64,
    numeric_sharded_4t: f64,
    numeric_sharded_max: f64,
}

#[derive(Serialize)]
struct Report {
    scenario: String,
    commit: String,
    quick: bool,
    /// Hardware threads available on the benchmarking host — the upper
    /// bound any sharded speedup below could reach.
    host_threads: usize,
    stages: Vec<Stage>,
    speedups_vs_multipass: Speedups,
    speedups_sharded_vs_fused: ShardedSpeedups,
}

#[derive(Serialize)]
struct MatchingSpeedups {
    flooding_sparse_vs_reference: f64,
    matcher_pruned_vs_exhaustive: f64,
}

#[derive(Serialize)]
struct MatchingReport {
    scenario: String,
    commit: String,
    quick: bool,
    tables: usize,
    attrs_per_table: usize,
    stages: Vec<Stage>,
    speedups: MatchingSpeedups,
}

/// A wide schema-only database for the matching benchmark: `tables`
/// tables of `attrs_per_table` attributes, names drawn from a shared
/// 120-word vocabulary of realistic identifiers (`album_id`,
/// `venue_date`, …) so labels repeat across tables and source/target
/// overlap partially — the shape pruning and interning target.
fn wide_schema(tag: &str, tables: usize, attrs_per_table: usize, stride: usize) -> Database {
    const STEMS: [&str; 20] = [
        "album", "artist", "track", "genre", "year", "price", "isbn", "venue", "city", "count",
        "length", "title", "owner", "email", "phone", "status", "region", "volume", "weight",
        "height",
    ];
    const SUFFIXES: [&str; 6] = ["", "_id", "_name", "_code", "_date", "_num"];
    let vocab: Vec<String> = STEMS
        .iter()
        .flat_map(|s| SUFFIXES.iter().map(move |x| format!("{s}{x}")))
        .collect();
    let mut b = DatabaseBuilder::new(tag);
    for i in 0..tables {
        let table = format!("{}_{i}", STEMS[(i * stride) % STEMS.len()]);
        b = b.table(&table, |mut t| {
            for j in 0..attrs_per_table {
                // j·7 mod 120 is injective for j < 20: unique per table.
                t = t.attr(&vocab[(i * stride + j * 7) % vocab.len()], DataType::Text);
            }
            t
        });
    }
    b.build().expect("synthetic schema")
}

/// Dictionary-friendly text column: `m:ss` durations, ~420 distinct
/// values — the text-heavy shape the columnar kernel targets.
fn text_column(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| Value::Text(format!("{}:{:02}", 2 + i % 7, (i * 13) % 60)))
        .collect()
}

fn int_column(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::Int(120_000 + i as i64 * 37)).collect()
}

/// High-cardinality text column: essentially one distinct string per
/// row. The dictionary walk *is* the profiling cost here, which is the
/// shape the sharded evaluator splits across threads (low-cardinality
/// columns like [`text_column`] have a ~420-entry dictionary — nothing
/// to shard).
fn hicard_text_column(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            Value::Text(format!(
                "record-{i:06} {}",
                (i.wrapping_mul(2_654_435_761)) % 997
            ))
        })
        .collect()
}

/// Median wall-clock nanoseconds of `iters` runs of `f` (after one
/// warm-up run).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_profiling.json".to_owned());
    let out_matching = args
        .iter()
        .position(|a| a == "--out-matching")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_matching.json".to_owned());

    let (rows, iters) = if quick { (20_000usize, 5usize) } else { (100_000, 9) };

    let texts = text_column(rows);
    let ints = int_column(rows);
    let text_rows: Vec<Vec<Value>> = texts.iter().map(|v| vec![v.clone()]).collect();
    let int_rows: Vec<Vec<Value>> = ints.iter().map(|v| vec![v.clone()]).collect();

    let mut stages = Vec::new();
    let mut record = |name: &str, ns: u64| {
        eprintln!("  {name:32} {:10.3} ms", ns as f64 / 1e6);
        stages.push(Stage {
            name: name.to_owned(),
            rows,
            iters,
            median_ns: ns,
            median_ms: ns as f64 / 1e6,
        });
        ns
    };

    eprintln!("bench_smoke: profiling hot path, {rows} rows × {iters} iters (median)");
    let text_multi = record("text_profile_multipass", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_multipass(texts.iter(), DataType::Text));
    }));
    let text_fused = record("text_profile_fused", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute(texts.iter(), DataType::Text));
    }));
    // Includes the one-off columnar build: the end-to-end cost a cold
    // `of_attribute` pays.
    let text_col_build = record("text_columnar_build_plus_profile", median_ns(iters, || {
        let col = Column::build(&text_rows, 0);
        std::hint::black_box(AttributeProfile::compute_columnar(&col, DataType::Text));
    }));
    let text_store = Column::build(&text_rows, 0);
    let text_col = record("text_profile_columnar", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_columnar(&text_store, DataType::Text));
    }));

    let num_multi = record("numeric_profile_multipass", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_multipass(ints.iter(), DataType::Integer));
    }));
    let num_fused = record("numeric_profile_fused", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute(ints.iter(), DataType::Integer));
    }));
    let int_store = Column::build(&int_rows, 0);
    let num_col = record("numeric_profile_columnar", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_columnar(&int_store, DataType::Integer));
    }));

    // ---- sharded monoid evaluator, fixed 100k rows ----
    // Always the full-size columns (even under --quick, with fewer
    // iters): sharding below its row threshold measures nothing.
    let shard_rows = 100_000usize;
    let shard_iters = if quick { 3usize } else { 5 };
    let host_threads = available_threads();
    let hicard_store = Column::from_cells(hicard_text_column(shard_rows));
    let int100_store = Column::from_cells(int_column(shard_rows));
    let run = RunContext::unbounded();

    let mut record_shard = |name: &str, ns: u64| {
        eprintln!("  {name:32} {:10.3} ms", ns as f64 / 1e6);
        stages.push(Stage {
            name: name.to_owned(),
            rows: shard_rows,
            iters: shard_iters,
            median_ns: ns,
            median_ms: ns as f64 / 1e6,
        });
        ns
    };

    eprintln!(
        "bench_smoke: sharded profiling, {shard_rows} rows × {shard_iters} iters (median), {host_threads} host threads"
    );
    let hicard_fused = record_shard("text_hicard_profile_fused", median_ns(shard_iters, || {
        std::hint::black_box(kernel::profile_column(&hicard_store, DataType::Text));
    }));
    let num100_fused = record_shard("numeric_100k_profile_fused", median_ns(shard_iters, || {
        std::hint::black_box(kernel::profile_column(&int100_store, DataType::Integer));
    }));
    let sharded = |col: &Column, dt: DataType, threads: usize| {
        let mode = ExecutionMode::with_threads(threads);
        median_ns(shard_iters, || {
            std::hint::black_box(
                shard::profile_column_sharded_with(col, dt, &run, mode)
                    .expect("unbounded run never cancels"),
            );
        })
    };
    let hicard_1t = sharded(&hicard_store, DataType::Text, 1);
    record_shard("text_hicard_profile_sharded_1t", hicard_1t);
    let hicard_4t = sharded(&hicard_store, DataType::Text, 4);
    record_shard("text_hicard_profile_sharded_4t", hicard_4t);
    let hicard_max = sharded(&hicard_store, DataType::Text, host_threads);
    record_shard("text_hicard_profile_sharded_max", hicard_max);
    let num100_1t = sharded(&int100_store, DataType::Integer, 1);
    record_shard("numeric_100k_profile_sharded_1t", num100_1t);
    let num100_4t = sharded(&int100_store, DataType::Integer, 4);
    record_shard("numeric_100k_profile_sharded_4t", num100_4t);
    let num100_max = sharded(&int100_store, DataType::Integer, host_threads);
    record_shard("numeric_100k_profile_sharded_max", num100_max);

    let ratio = |base: u64, new: u64| {
        if new == 0 {
            0.0
        } else {
            base as f64 / new as f64
        }
    };
    let report = Report {
        scenario: "profiling-hot-path".to_owned(),
        commit: commit(),
        quick,
        host_threads,
        stages,
        speedups_vs_multipass: Speedups {
            text_fused: ratio(text_multi, text_fused),
            text_columnar: ratio(text_multi, text_col),
            text_columnar_including_build: ratio(text_multi, text_col_build),
            numeric_fused: ratio(num_multi, num_fused),
            numeric_columnar: ratio(num_multi, num_col),
        },
        speedups_sharded_vs_fused: ShardedSpeedups {
            text_hicard_sharded_1t: ratio(hicard_fused, hicard_1t),
            text_hicard_sharded_4t: ratio(hicard_fused, hicard_4t),
            text_hicard_sharded_max: ratio(hicard_fused, hicard_max),
            numeric_sharded_1t: ratio(num100_fused, num100_1t),
            numeric_sharded_4t: ratio(num100_fused, num100_4t),
            numeric_sharded_max: ratio(num100_fused, num100_max),
        },
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, pretty + "\n").expect("write report");
    eprintln!(
        "speedups vs multipass: text fused {:.2}x, text columnar {:.2}x, numeric fused {:.2}x, numeric columnar {:.2}x",
        ratio(text_multi, text_fused),
        ratio(text_multi, text_col),
        ratio(num_multi, num_fused),
        ratio(num_multi, num_col),
    );
    eprintln!("wrote {out_path}");

    // ---- matching hot path: wide synthetic schema ----
    let (m_tables, m_attrs, m_iters) = if quick { (12usize, 8usize, 3usize) } else { (50, 20, 3) };
    let m_src = wide_schema("wide_src", m_tables, m_attrs, 13);
    let m_tgt = wide_schema("wide_tgt", m_tables, m_attrs, 31);
    let attrs_total = m_tables * m_attrs;
    // Fixed iteration budget: sparse and reference run the identical
    // fixpoint (bit-equal results), so wall-clock is directly comparable.
    let flood_cfg = FloodingConfig {
        max_iterations: 8,
        epsilon: 1e-4,
    };

    let mut m_stages = Vec::new();
    let mut m_record = |name: &str, ns: u64| {
        eprintln!("  {name:32} {:10.3} ms", ns as f64 / 1e6);
        m_stages.push(Stage {
            name: name.to_owned(),
            rows: attrs_total,
            iters: m_iters,
            median_ns: ns,
            median_ms: ns as f64 / 1e6,
        });
        ns
    };

    eprintln!(
        "bench_smoke: matching hot path, {m_tables} tables × {m_attrs} attrs ({attrs_total} attrs/side) × {m_iters} iters (median)"
    );
    let flood_ref = m_record("flooding_reference", median_ns(m_iters, || {
        std::hint::black_box(similarity_flooding_reference(&m_src, &m_tgt, &flood_cfg));
    }));
    let flood_sparse = m_record("flooding_sparse", median_ns(m_iters, || {
        std::hint::black_box(similarity_flooding(&m_src, &m_tgt, &flood_cfg));
    }));

    let run_matcher = |prune: PrunePolicy| {
        let matcher = CombinedMatcher::new(MatcherConfig::default()).with_prune(prune);
        std::hint::black_box(matcher.propose_attribute_matches_with(
            &m_src,
            &m_tgt,
            &ProfileCache::new(),
            ExecutionMode::from_env(),
        ));
    };
    let matcher_exhaustive = m_record("matcher_exhaustive", median_ns(m_iters, || {
        run_matcher(PrunePolicy::Off);
    }));
    let matcher_pruned = m_record("matcher_pruned", median_ns(m_iters, || {
        run_matcher(PrunePolicy::On);
    }));

    let matching_report = MatchingReport {
        scenario: "matching-hot-path".to_owned(),
        commit: commit(),
        quick,
        tables: m_tables,
        attrs_per_table: m_attrs,
        stages: m_stages,
        speedups: MatchingSpeedups {
            flooding_sparse_vs_reference: ratio(flood_ref, flood_sparse),
            matcher_pruned_vs_exhaustive: ratio(matcher_exhaustive, matcher_pruned),
        },
    };
    let pretty = serde_json::to_string_pretty(&matching_report).expect("serialize matching report");
    std::fs::write(&out_matching, pretty + "\n").expect("write matching report");
    eprintln!(
        "matching speedups: sparse flooding {:.2}x vs reference, pruned matcher {:.2}x vs exhaustive",
        ratio(flood_ref, flood_sparse),
        ratio(matcher_exhaustive, matcher_pruned),
    );
    eprintln!("wrote {out_matching}");
}
