//! `bench_smoke` — a fast, plain-wall-clock benchmark of the profiling
//! hot path, for CI smoke runs and for recording the fused-kernel /
//! columnar-store speedup next to the commit that produced it.
//!
//! ```text
//! cargo run --release -p efes-bench --bin bench_smoke -- --quick
//! cargo run --release -p efes-bench --bin bench_smoke -- --out BENCH_profiling.json
//! ```
//!
//! Unlike the Criterion benches (`cargo bench -p efes-bench`), this
//! finishes in seconds: per stage it takes the median of a handful of
//! timed runs. Numbers are indicative, not statistically rigorous — the
//! point is a recorded order-of-magnitude trend per commit. The process
//! fails (non-zero exit) only on build/run errors, never on regressions.

use efes_profiling::AttributeProfile;
use efes_relational::{Column, DataType, Value};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Stage {
    name: String,
    rows: usize,
    iters: usize,
    median_ns: u64,
    median_ms: f64,
}

#[derive(Serialize)]
struct Speedups {
    text_fused: f64,
    text_columnar: f64,
    text_columnar_including_build: f64,
    numeric_fused: f64,
    numeric_columnar: f64,
}

#[derive(Serialize)]
struct Report {
    scenario: String,
    commit: String,
    quick: bool,
    stages: Vec<Stage>,
    speedups_vs_multipass: Speedups,
}

/// Dictionary-friendly text column: `m:ss` durations, ~420 distinct
/// values — the text-heavy shape the columnar kernel targets.
fn text_column(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| Value::Text(format!("{}:{:02}", 2 + i % 7, (i * 13) % 60)))
        .collect()
}

fn int_column(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::Int(120_000 + i as i64 * 37)).collect()
}

/// Median wall-clock nanoseconds of `iters` runs of `f` (after one
/// warm-up run).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_profiling.json".to_owned());

    let (rows, iters) = if quick { (20_000usize, 5usize) } else { (100_000, 9) };

    let texts = text_column(rows);
    let ints = int_column(rows);
    let text_rows: Vec<Vec<Value>> = texts.iter().map(|v| vec![v.clone()]).collect();
    let int_rows: Vec<Vec<Value>> = ints.iter().map(|v| vec![v.clone()]).collect();

    let mut stages = Vec::new();
    let mut record = |name: &str, ns: u64| {
        eprintln!("  {name:32} {:10.3} ms", ns as f64 / 1e6);
        stages.push(Stage {
            name: name.to_owned(),
            rows,
            iters,
            median_ns: ns,
            median_ms: ns as f64 / 1e6,
        });
        ns
    };

    eprintln!("bench_smoke: profiling hot path, {rows} rows × {iters} iters (median)");
    let text_multi = record("text_profile_multipass", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_multipass(texts.iter(), DataType::Text));
    }));
    let text_fused = record("text_profile_fused", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute(texts.iter(), DataType::Text));
    }));
    // Includes the one-off columnar build: the end-to-end cost a cold
    // `of_attribute` pays.
    let text_col_build = record("text_columnar_build_plus_profile", median_ns(iters, || {
        let col = Column::build(&text_rows, 0);
        std::hint::black_box(AttributeProfile::compute_columnar(&col, DataType::Text));
    }));
    let text_store = Column::build(&text_rows, 0);
    let text_col = record("text_profile_columnar", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_columnar(&text_store, DataType::Text));
    }));

    let num_multi = record("numeric_profile_multipass", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_multipass(ints.iter(), DataType::Integer));
    }));
    let num_fused = record("numeric_profile_fused", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute(ints.iter(), DataType::Integer));
    }));
    let int_store = Column::build(&int_rows, 0);
    let num_col = record("numeric_profile_columnar", median_ns(iters, || {
        std::hint::black_box(AttributeProfile::compute_columnar(&int_store, DataType::Integer));
    }));

    let ratio = |base: u64, new: u64| {
        if new == 0 {
            0.0
        } else {
            base as f64 / new as f64
        }
    };
    let report = Report {
        scenario: "profiling-hot-path".to_owned(),
        commit: commit(),
        quick,
        stages,
        speedups_vs_multipass: Speedups {
            text_fused: ratio(text_multi, text_fused),
            text_columnar: ratio(text_multi, text_col),
            text_columnar_including_build: ratio(text_multi, text_col_build),
            numeric_fused: ratio(num_multi, num_fused),
            numeric_columnar: ratio(num_multi, num_col),
        },
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, pretty + "\n").expect("write report");
    eprintln!(
        "speedups vs multipass: text fused {:.2}x, text columnar {:.2}x, numeric fused {:.2}x, numeric columnar {:.2}x",
        ratio(text_multi, text_fused),
        ratio(text_multi, text_col),
        ratio(num_multi, num_fused),
        ratio(num_multi, num_col),
    );
    eprintln!("wrote {out_path}");
}
