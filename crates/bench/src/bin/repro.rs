//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p efes-bench --bin repro -- all
//! cargo run --release -p efes-bench --bin repro -- table5
//! cargo run --release -p efes-bench --bin repro -- figure6 --small
//! cargo run --release -p efes-bench --bin repro -- speedup --small
//! ```
//!
//! By default the running-example artifacts (Tables 2/3/5/6/8, Figures
//! 2/4/5) use the paper's exact instance sizes (274,523 songs etc.);
//! `--small` switches to the ~1/100 test scale.

use efes_bench::*;
use efes_scenarios::amalgam::AmalgamConfig;
use efes_scenarios::discography::DiscographyConfig;
use efes_scenarios::MusicExampleConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let cfg = if small {
        MusicExampleConfig::scaled_down()
    } else {
        MusicExampleConfig::paper()
    };
    let amalgam = AmalgamConfig::default();
    let disco = DiscographyConfig::default();

    const KNOWN: [&str; 17] = [
        "all", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
        "table9", "figure2", "figure4", "figure5", "figure6", "figure7", "ablation", "speedup",
    ];
    if let Some(bad) = targets.iter().find(|t| !KNOWN.contains(t)) {
        eprintln!("unknown artifact `{bad}`; known artifacts: {}", KNOWN.join(" "));
        std::process::exit(2);
    }

    let all = targets.is_empty() || targets.contains(&"all");
    let want = |name: &str| all || targets.contains(&name);

    if want("table1") {
        println!("{}\n", table1());
    }
    if want("table2") {
        println!("{}\n", table2(&cfg));
    }
    if want("table3") {
        println!("{}\n", table3(&cfg));
    }
    if want("table4") {
        println!("{}\n", table4());
    }
    if want("table5") {
        println!("{}\n", table5(&cfg));
    }
    if want("table6") {
        println!("{}\n", table6(&cfg));
    }
    if want("table7") {
        println!("{}\n", table7());
    }
    if want("table8") {
        println!("{}\n", table8(&cfg));
    }
    if want("table9") {
        println!("{}\n", table9());
    }
    if want("figure2") {
        println!("{}\n", figure2(&cfg));
    }
    if want("figure4") {
        println!("{}\n", figure4(&cfg));
    }
    if want("figure5") {
        println!("{}\n", figure5(&cfg));
    }
    if want("ablation") {
        use efes_scenarios::evaluation::ablation_study;
        println!("Ablation: cross-validated overall RMSE per module subset\n");
        for row in ablation_study(&amalgam, &disco) {
            println!("  {:32} rmse {:.3}", row.configuration, row.rmse);
        }
        println!(
            "\n(The structure module carries most of the accuracy; the Table 9\n\
             `Convert values` function makes the value module volatile across\n\
             domains — see EXPERIMENTS.md.)\n"
        );
    }
    if want("speedup") {
        println!("{}\n", speedup_report(&cfg));
    }
    if want("figure6") || want("figure7") {
        let (fig6, fig7, summary) = figures6_and_7(&amalgam, &disco);
        if want("figure6") {
            println!("{fig6}\n");
        }
        if want("figure7") {
            println!("{fig7}\n");
        }
        println!("{summary}");
    }
}
