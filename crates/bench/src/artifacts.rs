//! Regeneration of the paper's Tables 1–9 and the running-example
//! figures (2, 4, 5).

use efes::baseline::{harden_total_hours_per_attribute, HARDEN_TASKS};
use efes::framework::EstimationModule;
use efes::modules::{MappingModule, StructureModule, ValueModule};
use efes::prelude::*;
use efes::report::text_table;
use efes::settings::Quality;
use efes::task::TaskType;
use efes_csg::planner::StructureTaskKind;
use efes_csg::violations::ConflictKind;
use efes_csg::{database_to_csg, detect_conflicts, match_relationships, NodeCorrespondences};
use efes_relational::SourceId;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

/// Table 1: Harden's per-attribute task hours.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = HARDEN_TASKS
        .iter()
        .map(|t| vec![t.name.to_owned(), format!("{:.2}", t.hours_per_attribute)])
        .collect();
    let mut out = String::from("Table 1: Tasks and effort per attribute from [Harden 2010].\n\n");
    out.push_str(&text_table(&["Task", "Hours per attribute"], &rows));
    out.push_str(&format!(
        "\nTotal: {:.2} hours per source attribute\n",
        harden_total_hours_per_attribute()
    ));
    out
}

/// Table 2: the mapping complexity report of the running example.
pub fn table2(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let conns = MappingModule::connections(&scenario);
    let rows: Vec<Vec<String>> = conns
        .iter()
        .map(|c| {
            vec![
                scenario.target.schema.table(c.target_table).name.clone(),
                c.source_tables.len().to_string(),
                c.attributes.to_string(),
                if c.primary_key { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    let mut out =
        String::from("Table 2: Mapping complexity report of the scenario in Figure 2.\n\n");
    out.push_str(&text_table(
        &["Target table", "Source tables", "Attributes", "Primary key"],
        &rows,
    ));
    out.push_str(
        "\nNote: the paper reports 3 source tables for `tracks`; our connection\n\
         counter yields 2 (songs + the albums anchor joined via songs.album).\n\
         See EXPERIMENTS.md.\n",
    );
    out
}

/// Table 3: the structure conflict detector's complexity report.
pub fn table3(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let target_conv = database_to_csg(&scenario.target);
    let source_conv = database_to_csg(scenario.source(SourceId(0)));
    let corr =
        NodeCorrespondences::from_scenario(&scenario, SourceId(0), &target_conv, &source_conv);
    let matches = match_relationships(&target_conv.csg, &source_conv.csg, &corr);
    let conflicts = detect_conflicts(&target_conv, &source_conv, &matches);
    let rows: Vec<Vec<String>> = conflicts
        .iter()
        .map(|c| {
            vec![
                c.constraint_label.clone(),
                c.violation_count.to_string(),
            ]
        })
        .collect();
    let mut out =
        String::from("Table 3: Complexity report of the structure conflict detector.\n\n");
    out.push_str(&text_table(
        &["Constraint in target schema", "Violation count in source data"],
        &rows,
    ));
    out
}

/// Table 4: structural conflicts and their cleaning tasks.
pub fn table4() -> String {
    let rows: Vec<Vec<String>> = [
        ConflictKind::NotNullViolated,
        ConflictKind::UniqueViolated,
        ConflictKind::MultipleAttributeValues,
        ConflictKind::ValueWithoutEnclosingTuple,
        ConflictKind::FkViolated,
    ]
    .iter()
    .map(|k| {
        vec![
            k.label().to_owned(),
            StructureTaskKind::for_conflict(*k, Quality::LowEffort)
                .label()
                .to_owned(),
            StructureTaskKind::for_conflict(*k, Quality::HighQuality)
                .label()
                .to_owned(),
        ]
    })
    .collect();
    let mut out = String::from(
        "Table 4: Structural conflicts and their corresponding cleaning tasks.\n\n",
    );
    out.push_str(&text_table(
        &["Constraint", "Low effort", "High quality"],
        &rows,
    ));
    out
}

/// Table 5: the high-quality structure repair plan with efforts.
pub fn table5(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let module = StructureModule::default();
    let config = EstimationConfig::for_quality(Quality::HighQuality);
    let report = module.assess(&scenario).expect("assessment");
    let tasks = module.plan(&scenario, &report, &config).expect("plan");
    let mut total = 0.0;
    let rows: Vec<Vec<String>> = tasks
        .iter()
        .map(|t| {
            let minutes = config.effort_model.minutes_for(t, &config.settings);
            total += minutes;
            vec![
                format!("{} ({})", t.task_type.label(), t.location),
                t.params.repetitions.to_string(),
                format!("{minutes:.0} mins"),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 5: High-quality structure repair tasks and their estimated effort.\n\n",
    );
    out.push_str(&text_table(&["Task", "Repetitions", "Effort"], &rows));
    out.push_str(&format!("\nTotal  {total:.0} mins\n"));
    out
}

/// Table 6: the value fit detector's complexity report.
pub fn table6(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let module = ValueModule::default();
    let report = module.assess(&scenario).expect("assessment");
    let rows: Vec<Vec<String>> = report
        .findings
        .iter()
        .map(|f| {
            vec![
                format!("{} ({})", f.note, f.location),
                format!(
                    "{} source values, {} distinct source values",
                    f.int("source-values").unwrap_or(0),
                    f.int("distinct-source-values").unwrap_or(0)
                ),
            ]
        })
        .collect();
    let mut out = String::from("Table 6: Complexity report of the value fit detector.\n\n");
    out.push_str(&text_table(
        &["Value heterogeneity", "Additional parameters"],
        &rows,
    ));
    out
}

/// Table 7: value heterogeneities and their cleaning tasks.
pub fn table7() -> String {
    let rows = vec![
        vec!["Too few elements".into(), "-".into(), "Add values".into()],
        vec![
            "Different representations (critical)".into(),
            "Drop values".into(),
            "Convert values".into(),
        ],
        vec![
            "Different representations (uncritical)".into(),
            "-".into(),
            "Convert values".into(),
        ],
        vec!["Too specific".into(), "-".into(), "Generalize values".into()],
        vec!["Too general".into(), "-".into(), "Refine values".into()],
    ];
    let mut out = String::from(
        "Table 7: Value heterogeneities and corresponding cleaning tasks.\n\n",
    );
    out.push_str(&text_table(
        &["Value heterogeneity", "Low effort", "High quality"],
        &rows,
    ));
    out
}

/// Table 8: the value transformation plan with efforts.
///
/// The paper prices the 260,923-distinct-value conversion at 15 minutes —
/// its own Table 9 function would yield 65,231. We therefore print both:
/// the §6.1-adapted configuration (constant 15, reproducing Table 8
/// verbatim) and the Table 9 default.
pub fn table8(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let module = ValueModule::default();
    let report = module.assess(&scenario).expect("assessment");
    let mut config = EstimationConfig::for_quality(Quality::HighQuality);
    // The adapted configuration of the worked example: one conversion
    // script regardless of volume.
    config
        .effort_model
        .set(TaskType::ConvertValues, efes::EffortFunction::Constant(15.0));
    let tasks = module.plan(&scenario, &report, &config).expect("plan");
    let mut total = 0.0;
    let default_model = EstimationConfig::default().effort_model;
    let mut rows = Vec::new();
    for t in &tasks {
        let minutes = config.effort_model.minutes_for(t, &config.settings);
        total += minutes;
        rows.push(vec![
            format!("{} ({})", t.task_type.label(), t.location),
            format!(
                "{} values, {} distinct values",
                t.params.values, t.params.distinct_values
            ),
            format!("{minutes:.0} mins"),
            format!(
                "{:.0} mins",
                default_model.minutes_for(t, &config.settings)
            ),
        ]);
    }
    let mut out = String::from(
        "Table 8: Value transformation tasks and their estimated effort.\n\n",
    );
    out.push_str(&text_table(
        &["Task", "Parameters", "Effort (adapted)", "Effort (Table 9 default)"],
        &rows,
    ));
    out.push_str(&format!("\nTotal (adapted)  {total:.0} mins\n"));
    out
}

/// Table 9: the effort-calculation functions.
pub fn table9() -> String {
    let model = efes::EffortModel::table9();
    let rows: Vec<Vec<String>> = model
        .iter()
        .map(|(t, f)| vec![t.label().to_owned(), f.describe()])
        .collect();
    let mut out = String::from(
        "Table 9: Effort calculation functions used for the experiments (minutes).\n\n",
    );
    out.push_str(&text_table(&["Task", "Effort function (mins)"], &rows));
    out
}

/// Figure 2: the running-example scenario (schemas, constraints,
/// correspondences, sample instances).
pub fn figure2(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let mut out = String::from("Figure 2: The example data integration scenario.\n\n");
    out.push_str(&scenario.describe());
    out.push_str("\n\n(a) Schemas and constraints:\n");
    for db in scenario.sources.iter().chain(std::iter::once(&scenario.target)) {
        out.push_str(&format!("  {}:\n", db.name()));
        for (i, t) in db.schema.tables().iter().enumerate() {
            let cols: Vec<String> = t
                .attributes
                .iter()
                .enumerate()
                .map(|(ai, a)| {
                    let tid = efes_relational::TableId(i);
                    let aid = efes_relational::AttrId(ai);
                    let mut marks = Vec::new();
                    if db
                        .constraints
                        .primary_key(tid)
                        .is_some_and(|pk| pk.contains(&aid))
                    {
                        marks.push("PK");
                    }
                    if db.constraints.is_not_null(tid, aid) {
                        marks.push("NN");
                    }
                    if marks.is_empty() {
                        format!("{} {}", a.name, a.datatype)
                    } else {
                        format!("{} {} [{}]", a.name, a.datatype, marks.join(","))
                    }
                })
                .collect();
            out.push_str(&format!("    {}({})\n", t.name, cols.join(", ")));
        }
    }
    out.push_str("\n(b) Example instances from the target table tracks:\n");
    let tid = scenario.target.schema.table_id("tracks").unwrap();
    for row in scenario.target.instance.table(tid).rows().iter().take(3) {
        out.push_str(&format!(
            "    record {} | {} | {}\n",
            row[0].render(),
            row[1],
            row[2]
        ));
    }
    out.push_str("\n(c) Example instances from the source table songs:\n");
    let src = scenario.source(SourceId(0));
    let tid = src.schema.table_id("songs").unwrap();
    for row in src.instance.table(tid).rows().iter().take(3) {
        out.push_str(&format!(
            "    album s{} | {} | {}\n",
            row[0].render(),
            row[1],
            row[3].render()
        ));
    }
    out
}

/// Figure 4: the source and target CSGs in Graphviz DOT.
pub fn figure4(cfg: &MusicExampleConfig) -> String {
    let (scenario, _) = music_example_scenario(cfg);
    let src = database_to_csg(scenario.source(SourceId(0)));
    let tgt = database_to_csg(&scenario.target);
    format!(
        "Figure 4: The integration scenario translated into cardinality-\n\
         constrained schema graphs (Graphviz DOT, render with `dot -Tsvg`).\n\n\
         // --- source CSG ---\n{}\n// --- target CSG ---\n{}",
        efes_csg::dot::to_dot(&src.csg),
        efes_csg::dot::to_dot(&tgt.csg)
    )
}

/// Figure 5: the virtual CSG instance as cleaning tasks are simulated.
pub fn figure5(cfg: &MusicExampleConfig) -> String {
    use efes_csg::virtual_instance::VirtualCsg;
    use efes_csg::planner::{plan_repairs, PlannerOptions};

    let (scenario, _) = music_example_scenario(cfg);
    let target_conv = database_to_csg(&scenario.target);
    let source_conv = database_to_csg(scenario.source(SourceId(0)));
    let corr =
        NodeCorrespondences::from_scenario(&scenario, SourceId(0), &target_conv, &source_conv);
    let matches = match_relationships(&target_conv.csg, &source_conv.csg, &corr);
    let conflicts = detect_conflicts(&target_conv, &source_conv, &matches);

    let mut out = String::from(
        "Figure 5: Extract of a virtual CSG instance as cleaning tasks are\n\
         performed on it (actual ⊆/⊄ prescribed cardinalities).\n\n(a) Initial state:\n",
    );
    let initial = VirtualCsg::from_conflicts(&target_conv, &matches, &conflicts);
    out.push_str(&initial.describe_state());

    // Re-run the plan while capturing each intermediate state.
    let plan = plan_repairs(
        &target_conv,
        &matches,
        &conflicts,
        Quality::HighQuality,
        &PlannerOptions::default(),
    )
    .expect("consistent repair strategy");
    let mut v = initial;
    for (i, step) in plan.iter().enumerate() {
        // Re-apply by replaying the planner on the same deterministic
        // order: apply one task at a time through the public simulation
        // API.
        let reading = efes_csg::RelRef {
            rel: efes_csg::graph::RelId(step.target_rel),
            dir: step.direction,
        };
        efes_csg::planner::apply_single_repair(&mut v, step.kind, reading);
        out.push_str(&format!(
            "\n({}) State after {} ({}) ×{}:\n",
            (b'b' + i as u8) as char,
            step.kind.label(),
            step.location,
            step.repetitions
        ));
        out.push_str(&v.describe_state());
    }
    out
}
