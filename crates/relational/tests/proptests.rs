//! Property-based tests for the relational substrate.

use efes_relational::csv;
use efes_relational::{DataType, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 :,\\.\"-]{0,20}".prop_map(Value::Text),
    ]
}

proptest! {
    /// Value ordering is a total order: antisymmetric and transitive on
    /// random triples.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    /// Equal values hash equally (HashMap soundness).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Casting to text always succeeds for any value.
    #[test]
    fn cast_to_text_total(v in arb_value()) {
        prop_assert!(DataType::Text.try_cast(&v).is_some());
    }

    /// A successful cast yields a value admitted by the target type.
    #[test]
    fn cast_result_is_admitted(v in arb_value()) {
        for dt in DataType::ALL {
            if let Some(out) = dt.try_cast(&v) {
                prop_assert!(dt.admits(&out), "{dt} does not admit {out:?}");
            }
        }
    }

    /// Casting is idempotent: casting a cast result again is a no-op.
    #[test]
    fn cast_idempotent(v in arb_value()) {
        for dt in DataType::ALL {
            if let Some(once) = dt.try_cast(&v) {
                // Floats may render with reduced precision via Text, so only
                // require idempotence, not round-tripping.
                let twice = dt.try_cast(&once);
                prop_assert_eq!(twice, Some(once));
            }
        }
    }

    /// CSV escaping round-trips arbitrary text tables.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec("[a-zA-Z0-9 :,\\.\"\\n-]{0,12}", 3), 1..8)) {
        // Build a CSV by hand through the writer path: create a text table.
        use efes_relational::DatabaseBuilder;
        let mut b = DatabaseBuilder::new("p").table("t", |t| {
            t.attr("a", DataType::Text)
                .attr("b", DataType::Text)
                .attr("c", DataType::Text)
        });
        let typed: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| r.iter().map(|s| Value::Text(s.clone())).collect())
            .collect();
        b = b.rows("t", typed.clone());
        let db = b.build().unwrap();
        let tid = db.schema.table_id("t").unwrap();
        let text = csv::write_table(&db, tid);
        let (header, records) = csv::parse(&text).unwrap();
        prop_assert_eq!(header, vec!["a", "b", "c"]);
        prop_assert_eq!(records.len(), rows.len());
        for (rec, orig) in records.iter().zip(rows.iter()) {
            prop_assert_eq!(rec, orig);
        }
    }

    /// Type inference always produces a type admitting every input value.
    #[test]
    fn inferred_type_admits_all(vs in proptest::collection::vec(arb_value(), 0..20)) {
        let dt = DataType::infer(vs.iter());
        for v in &vs {
            if !v.is_null() {
                // Text admits only text: inference falls back to Text for
                // heterogeneous input, where casting (not admitting) applies.
                if dt == DataType::Text {
                    prop_assert!(dt.try_cast(v).is_some());
                } else {
                    prop_assert!(dt.admits(v) || dt.try_cast(v).is_some());
                }
            }
        }
    }
}
