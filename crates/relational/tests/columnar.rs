//! Property tests for the typed columnar storage layer: the columnar
//! mirror must be observationally identical to the row-major rows it
//! shadows — same iteration sequence, same distinct values in the same
//! first-seen order, same counts — for every declared datatype and for
//! type-mixed columns that fall back to [`Column::Mixed`].

use efes_relational::{
    Column, ColumnIter, DataType, DatabaseBuilder, Value, COLUMNAR_ENV_VAR,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// A column of values every declared datatype admits, with nulls mixed
/// in. Float columns may also hold ints (admits widening), exercising
/// the `Column::Mixed` fallback.
fn arb_typed_column() -> impl Strategy<Value = (Vec<Value>, DataType)> {
    let null = 2;
    prop_oneof![
        (
            proptest::collection::vec(
                prop_oneof![
                    null => Just(Value::Null),
                    8 => (-1_000i64..1_000).prop_map(Value::Int),
                ],
                0..50,
            ),
            Just(DataType::Integer)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    null => Just(Value::Null),
                    6 => (-1_000i64..1_000).prop_map(Value::Int),
                    6 => (-100.0f64..100.0).prop_map(Value::Float),
                ],
                0..50,
            ),
            Just(DataType::Float)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    null => Just(Value::Null),
                    8 => "[a-z0-9:é\\. -]{0,12}".prop_map(Value::Text),
                ],
                0..50,
            ),
            Just(DataType::Text)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    null => Just(Value::Null),
                    8 => any::<bool>().prop_map(Value::Bool),
                ],
                0..50,
            ),
            Just(DataType::Boolean)
        ),
    ]
}

/// First-seen-order distinct values, straight off the row-major values —
/// the specification `Column::distinct_values` must reproduce.
fn rowmajor_distinct(values: &[Value]) -> Vec<Value> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for v in values {
        if !v.is_null() && seen.insert(v) {
            out.push(v.clone());
        }
    }
    out
}

proptest! {
    /// The columnar store yields exactly the row-major sequence, cell for
    /// cell, and agrees on length and null count.
    #[test]
    fn columnar_iteration_matches_rows((col, dt) in arb_typed_column()) {
        let db = DatabaseBuilder::new("c")
            .table("t", |t| t.attr("a", dt))
            .rows("t", col.iter().map(|v| vec![v.clone()]).collect())
            .build()
            .unwrap();
        let data = db.instance.table(db.schema.table_id("t").unwrap());
        let attr = efes_relational::schema::AttrId(0);

        let via_column: Vec<Value> = data.column(attr).map(|v| v.to_value()).collect();
        prop_assert_eq!(&via_column, &col);

        let via_rows: Vec<Value> =
            ColumnIter::over_rows(data.rows(), 0).map(|v| v.to_value()).collect();
        prop_assert_eq!(&via_rows, &col);

        if let Some(store) = data.column_store(attr) {
            prop_assert_eq!(store.len(), col.len());
            prop_assert_eq!(
                store.null_count(),
                col.iter().filter(|v| v.is_null()).count()
            );
            let direct: Vec<Value> = (0..store.len()).map(|i| store.value(i).to_value()).collect();
            prop_assert_eq!(&direct, &col);
        } else {
            prop_assert!(col.is_empty());
        }
    }

    /// Distinct values come back in first-seen order with the row-major
    /// semantics, and `distinct_count` always agrees with them.
    #[test]
    fn distinct_values_match_rowmajor((col, dt) in arb_typed_column()) {
        let db = DatabaseBuilder::new("c")
            .table("t", |t| t.attr("a", dt))
            .rows("t", col.iter().map(|v| vec![v.clone()]).collect())
            .build()
            .unwrap();
        let t = db.schema.table_id("t").unwrap();
        let attr = efes_relational::schema::AttrId(0);

        let expected = rowmajor_distinct(&col);
        let got = db.instance.distinct_values(t, attr);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(db.instance.distinct_count(t, attr), expected.len());
    }

    /// The raw `Column::build` distinct scan agrees with the row-major
    /// specification even without a schema in the way (covers Mixed
    /// fallbacks with arbitrary value mixes).
    #[test]
    fn raw_column_distincts(col in proptest::collection::vec(
        prop_oneof![
            2 => Just(Value::Null),
            4 => (-50i64..50).prop_map(Value::Int),
            4 => (-5.0f64..5.0).prop_map(Value::Float),
            4 => "[a-c]{0,3}".prop_map(Value::Text),
            2 => any::<bool>().prop_map(Value::Bool),
        ],
        0..40,
    )) {
        let rows: Vec<Vec<Value>> = col.iter().map(|v| vec![v.clone()]).collect();
        let built = Column::build(&rows, 0);
        let expected = rowmajor_distinct(&col);
        prop_assert_eq!(built.distinct_values(), expected.clone());
        prop_assert_eq!(built.distinct_count(), expected.len());
        let back: Vec<Value> = built.iter().map(|v| v.to_value()).collect();
        prop_assert_eq!(back, col);
    }

    /// The streaming `ColumnBuilder` is bit-identical to the batch
    /// `Column::from_cells` for every cell sequence — including mixed
    /// sequences that demote mid-stream and all-NULL columns.
    #[test]
    fn column_builder_matches_from_cells(col in proptest::collection::vec(
        prop_oneof![
            3 => Just(Value::Null),
            4 => (-50i64..50).prop_map(Value::Int),
            4 => (-5.0f64..5.0).prop_map(Value::Float),
            4 => "[a-c]{0,3}".prop_map(Value::Text),
            2 => any::<bool>().prop_map(Value::Bool),
        ],
        0..140,
    )) {
        let mut builder = efes_relational::ColumnBuilder::with_capacity(col.len());
        for v in &col {
            builder.push(v.clone());
        }
        prop_assert_eq!(builder.finish(), Column::from_cells(col));
    }
}

/// The escape hatch: with `EFES_COLUMNAR=off` every read routes through
/// the row-major rows and still observes identical data. Runs as one
/// sequential test so the env flip cannot race a parallel reader that
/// expects a specific backing (all other tests here hold on either
/// path by construction).
#[test]
fn escape_hatch_disables_columnar_reads() {
    let db = DatabaseBuilder::new("c")
        .table("t", |t| t.attr("a", DataType::Text))
        .rows(
            "t",
            vec![
                vec![Value::Text("x".into())],
                vec![Value::Null],
                vec![Value::Text("x".into())],
                vec![Value::Text("y".into())],
            ],
        )
        .build()
        .unwrap();
    let t = db.schema.table_id("t").unwrap();
    let attr = efes_relational::schema::AttrId(0);

    let on: Vec<Value> = db.instance.table(t).column(attr).map(|v| v.to_value()).collect();
    let distinct_on = db.instance.distinct_values(t, attr);

    std::env::set_var(COLUMNAR_ENV_VAR, "off");
    assert!(!efes_relational::columnar_enabled());
    let off: Vec<Value> = db.instance.table(t).column(attr).map(|v| v.to_value()).collect();
    let distinct_off = db.instance.distinct_values(t, attr);
    let count_off = db.instance.distinct_count(t, attr);
    std::env::remove_var(COLUMNAR_ENV_VAR);
    assert!(efes_relational::columnar_enabled());

    assert_eq!(on, off);
    assert_eq!(distinct_on, distinct_off);
    assert_eq!(count_off, distinct_off.len());
}
