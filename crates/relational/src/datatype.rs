//! Declared attribute datatypes and cast semantics.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declared type of an attribute.
///
/// The value-fit detector (paper §5.1) keys its statistics selection on the
/// *target* attribute's datatype, and the `hasIncompatibleValues` rule of
/// Algorithm 1 asks whether source values can be cast to it — both are
/// served by [`DataType::admits`] and [`DataType::try_cast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integers.
    Integer,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Text,
    /// Booleans.
    Boolean,
}

impl DataType {
    /// All datatypes, in a stable order.
    pub const ALL: [DataType; 4] = [
        DataType::Integer,
        DataType::Float,
        DataType::Text,
        DataType::Boolean,
    ];

    /// `true` iff the datatype is numeric (integer or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Float)
    }

    /// `true` iff a non-null value is directly of this type (no cast).
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Integer, Value::Int(_)) => true,
            // Integers widen losslessly into float attributes.
            (DataType::Float, Value::Float(_) | Value::Int(_)) => true,
            (DataType::Text, Value::Text(_)) => true,
            (DataType::Boolean, Value::Bool(_)) => true,
            _ => false,
        }
    }

    /// Attempt to cast `value` into this datatype.
    ///
    /// The cast rules mirror what an integration practitioner can do with a
    /// plain SQL `CAST`:
    ///
    /// * anything casts to [`DataType::Text`] via its rendering;
    /// * numeric strings cast to numbers; floats cast to integers only when
    ///   they are integral;
    /// * `"true"`/`"false"` (case-insensitive) and `0`/`1` cast to booleans.
    ///
    /// Returns `None` when the value cannot be represented — exactly the
    /// condition the `hasIncompatibleValues` rule counts.
    pub fn try_cast(self, value: &Value) -> Option<Value> {
        match (self, value) {
            (_, Value::Null) => Some(Value::Null),
            (DataType::Integer, Value::Int(i)) => Some(Value::Int(*i)),
            (DataType::Integer, Value::Float(f)) => {
                if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64
                {
                    Some(Value::Int(*f as i64))
                } else {
                    None
                }
            }
            (DataType::Integer, Value::Text(s)) => s.trim().parse::<i64>().ok().map(Value::Int),
            (DataType::Integer, Value::Bool(b)) => Some(Value::Int(*b as i64)),
            (DataType::Float, Value::Int(i)) => Some(Value::Float(*i as f64)),
            (DataType::Float, Value::Float(f)) => Some(Value::Float(*f)),
            (DataType::Float, Value::Text(s)) => s.trim().parse::<f64>().ok().map(Value::Float),
            (DataType::Float, Value::Bool(b)) => Some(Value::Float(*b as i64 as f64)),
            (DataType::Text, v) => Some(Value::Text(v.render())),
            (DataType::Boolean, Value::Bool(b)) => Some(Value::Bool(*b)),
            (DataType::Boolean, Value::Int(0)) => Some(Value::Bool(false)),
            (DataType::Boolean, Value::Int(1)) => Some(Value::Bool(true)),
            (DataType::Boolean, Value::Text(s)) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "no" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            (DataType::Boolean, _) => None,
        }
    }

    /// `true` iff a text payload casts into this datatype — exactly
    /// `self.try_cast(&Value::Text(..)).is_some()`, without building the
    /// `Value`. The columnar profiler uses this to run cast checks once
    /// per *distinct* dictionary string.
    pub fn casts_text(self, s: &str) -> bool {
        match self {
            DataType::Integer => s.trim().parse::<i64>().is_ok(),
            DataType::Float => s.trim().parse::<f64>().is_ok(),
            DataType::Text => true,
            DataType::Boolean => matches!(
                s.trim().to_ascii_lowercase().as_str(),
                "true" | "t" | "yes" | "1" | "false" | "f" | "no" | "0"
            ),
        }
    }

    /// Infer the narrowest datatype that admits every value in `values`.
    ///
    /// Used by the CSV loader and by schema reverse engineering when a
    /// source arrives without type declarations (paper §3.1: "for some
    /// sources (e.g., data dumps), a schema definition may be completely
    /// missing").
    pub fn infer<'a>(values: impl IntoIterator<Item = &'a Value>) -> DataType {
        let mut candidate: Option<DataType> = None;
        for v in values {
            let this = match v {
                Value::Null => continue,
                Value::Int(_) => DataType::Integer,
                Value::Float(_) => DataType::Float,
                Value::Bool(_) => DataType::Boolean,
                Value::Text(_) => DataType::Text,
            };
            candidate = Some(match candidate {
                None => this,
                Some(prev) if prev == this => prev,
                Some(DataType::Integer) if this == DataType::Float => DataType::Float,
                Some(DataType::Float) if this == DataType::Integer => DataType::Float,
                Some(_) => DataType::Text,
            });
        }
        candidate.unwrap_or(DataType::Text)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Integer => "integer",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Boolean => "boolean",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_respects_declared_types() {
        assert!(DataType::Integer.admits(&Value::Int(1)));
        assert!(!DataType::Integer.admits(&Value::Text("1".into())));
        assert!(DataType::Float.admits(&Value::Int(1)));
        assert!(DataType::Text.admits(&Value::Null));
    }

    #[test]
    fn int_to_text_cast_always_succeeds() {
        assert_eq!(
            DataType::Text.try_cast(&Value::Int(215900)),
            Some(Value::Text("215900".into()))
        );
    }

    #[test]
    fn text_to_int_cast_requires_numeric_content() {
        assert_eq!(
            DataType::Integer.try_cast(&Value::Text(" 42 ".into())),
            Some(Value::Int(42))
        );
        assert_eq!(DataType::Integer.try_cast(&Value::Text("4:43".into())), None);
    }

    #[test]
    fn float_to_int_requires_integral_value() {
        assert_eq!(
            DataType::Integer.try_cast(&Value::Float(3.0)),
            Some(Value::Int(3))
        );
        assert_eq!(DataType::Integer.try_cast(&Value::Float(3.5)), None);
        assert_eq!(DataType::Integer.try_cast(&Value::Float(f64::NAN)), None);
    }

    #[test]
    fn boolean_casts() {
        assert_eq!(
            DataType::Boolean.try_cast(&Value::Text("Yes".into())),
            Some(Value::Bool(true))
        );
        assert_eq!(DataType::Boolean.try_cast(&Value::Int(2)), None);
    }

    #[test]
    fn null_casts_to_anything() {
        for dt in DataType::ALL {
            assert_eq!(dt.try_cast(&Value::Null), Some(Value::Null));
        }
    }

    #[test]
    fn casts_text_agrees_with_try_cast() {
        let samples = [
            "42", " 42 ", "4:43", "3.5", "1e3", "true", "Yes", "f", "0", "", "∞", "NaN",
        ];
        for dt in DataType::ALL {
            for s in samples {
                assert_eq!(
                    dt.casts_text(s),
                    dt.try_cast(&Value::Text(s.into())).is_some(),
                    "{dt} disagrees on {s:?}"
                );
            }
        }
    }

    #[test]
    fn inference_widens_sensibly() {
        let ints = [Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(DataType::infer(ints.iter()), DataType::Integer);
        let mixed = [Value::Int(1), Value::Float(2.5)];
        assert_eq!(DataType::infer(mixed.iter()), DataType::Float);
        let hetero = [Value::Int(1), Value::Text("a".into())];
        assert_eq!(DataType::infer(hetero.iter()), DataType::Text);
        let empty: [Value; 0] = [];
        assert_eq!(DataType::infer(empty.iter()), DataType::Text);
    }
}
