//! Fluent builders for databases — the ergonomic front door used by the
//! scenario generators and by tests.

use crate::constraint::{Constraint, ConstraintKind, ConstraintSet};
use crate::database::Database;
use crate::datatype::DataType;
use crate::error::{Error, Result};
use crate::instance::Row;
use crate::schema::{Attribute, Schema, Table};

/// Builder for a single table and its table-local constraints.
///
/// Constraints are recorded by *name* and resolved to ids when the
/// enclosing [`DatabaseBuilder`] finishes, so tables can reference tables
/// declared later (forward foreign keys).
pub struct TableBuilder {
    name: String,
    attributes: Vec<Attribute>,
    pending: Vec<PendingConstraint>,
}

enum PendingConstraint {
    PrimaryKey(Vec<String>),
    Unique(Vec<String>),
    NotNull(String),
    ForeignKey {
        from: Vec<String>,
        to_table: String,
        to: Vec<String>,
    },
}

impl TableBuilder {
    fn new(name: &str) -> Self {
        TableBuilder {
            name: name.to_owned(),
            attributes: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Add an attribute.
    pub fn attr(mut self, name: &str, datatype: DataType) -> Self {
        self.attributes.push(Attribute::new(name, datatype));
        self
    }

    /// Declare a primary key over the named attributes.
    pub fn primary_key(mut self, attrs: &[&str]) -> Self {
        self.pending.push(PendingConstraint::PrimaryKey(
            attrs.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Declare a uniqueness constraint over the named attributes.
    pub fn unique(mut self, attrs: &[&str]) -> Self {
        self.pending.push(PendingConstraint::Unique(
            attrs.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Declare a NOT NULL constraint on the named attribute.
    pub fn not_null(mut self, attr: &str) -> Self {
        self.pending.push(PendingConstraint::NotNull(attr.to_owned()));
        self
    }

    /// Declare a foreign key from this table's `from` attributes to
    /// `to_table`'s `to` attributes.
    pub fn foreign_key(mut self, from: &[&str], to_table: &str, to: &[&str]) -> Self {
        self.pending.push(PendingConstraint::ForeignKey {
            from: from.iter().map(|s| (*s).to_owned()).collect(),
            to_table: to_table.to_owned(),
            to: to.iter().map(|s| (*s).to_owned()).collect(),
        });
        self
    }
}

/// Builder for a whole [`Database`].
///
/// ```
/// use efes_relational::{DatabaseBuilder, DataType};
///
/// let db = DatabaseBuilder::new("music")
///     .table("albums", |t| {
///         t.attr("id", DataType::Integer)
///             .attr("name", DataType::Text)
///             .primary_key(&["id"])
///             .not_null("name")
///     })
///     .rows("albums", vec![vec![1.into(), "Second Helping".into()]])
///     .build()
///     .unwrap();
/// assert_eq!(db.schema.attribute_count(), 2);
/// ```
pub struct DatabaseBuilder {
    name: String,
    tables: Vec<TableBuilder>,
    rows: Vec<(String, Vec<Row>)>,
}

impl DatabaseBuilder {
    /// Start building a database with the given name.
    pub fn new(name: &str) -> Self {
        DatabaseBuilder {
            name: name.to_owned(),
            tables: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Define a table via a closure over a [`TableBuilder`].
    pub fn table(mut self, name: &str, f: impl FnOnce(TableBuilder) -> TableBuilder) -> Self {
        self.tables.push(f(TableBuilder::new(name)));
        self
    }

    /// Queue rows for the named table (inserted after schema assembly).
    pub fn rows(mut self, table: &str, rows: Vec<Row>) -> Self {
        self.rows.push((table.to_owned(), rows));
        self
    }

    /// Assemble the database: build the schema, resolve constraint names to
    /// ids, validate the constraint set, and insert the queued rows with
    /// type checking.
    pub fn build(self) -> Result<Database> {
        let mut schema = Schema::new(self.name);
        for tb in &self.tables {
            schema.add_table(Table::new(tb.name.clone(), tb.attributes.clone()))?;
        }

        let mut constraints = ConstraintSet::new();
        for tb in &self.tables {
            let tid = schema.table_id(&tb.name).expect("just added");
            let resolve_list = |names: &[String]| -> Result<Vec<crate::schema::AttrId>> {
                names
                    .iter()
                    .map(|n| {
                        schema.table(tid).attr_id(n).ok_or_else(|| Error::UnknownAttribute {
                            table: tb.name.clone(),
                            attribute: n.clone(),
                        })
                    })
                    .collect()
            };
            for pc in &tb.pending {
                let constraint = match pc {
                    PendingConstraint::PrimaryKey(attrs) => Constraint::new(
                        format!("{}_pk", tb.name),
                        ConstraintKind::PrimaryKey {
                            table: tid,
                            attrs: resolve_list(attrs)?,
                        },
                    ),
                    PendingConstraint::Unique(attrs) => Constraint::new(
                        format!("{}_{}_uq", tb.name, attrs.join("_")),
                        ConstraintKind::Unique {
                            table: tid,
                            attrs: resolve_list(attrs)?,
                        },
                    ),
                    PendingConstraint::NotNull(attr) => Constraint::new(
                        format!("{}_{}_nn", tb.name, attr),
                        ConstraintKind::NotNull {
                            table: tid,
                            attr: resolve_list(std::slice::from_ref(attr))?[0],
                        },
                    ),
                    PendingConstraint::ForeignKey { from, to_table, to } => {
                        let to_tid = schema
                            .table_id(to_table)
                            .ok_or_else(|| Error::UnknownTable(to_table.clone()))?;
                        let to_attrs = to
                            .iter()
                            .map(|n| {
                                schema.table(to_tid).attr_id(n).ok_or_else(|| {
                                    Error::UnknownAttribute {
                                        table: to_table.clone(),
                                        attribute: n.clone(),
                                    }
                                })
                            })
                            .collect::<Result<Vec<_>>>()?;
                        Constraint::new(
                            format!("{}_{}_fk", tb.name, from.join("_")),
                            ConstraintKind::ForeignKey {
                                from_table: tid,
                                from_attrs: resolve_list(from)?,
                                to_table: to_tid,
                                to_attrs,
                            },
                        )
                    }
                };
                constraints.push(constraint);
            }
        }
        constraints.check_against(&schema)?;

        let mut db = Database::new(schema, constraints);
        for (table, rows) in self.rows {
            for row in rows {
                db.insert_by_name(&table, row)?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_forward_foreign_keys() {
        let db = DatabaseBuilder::new("x")
            .table("child", |t| {
                t.attr("parent", DataType::Integer)
                    .foreign_key(&["parent"], "parent", &["id"])
            })
            .table("parent", |t| t.attr("id", DataType::Integer).primary_key(&["id"]))
            .build()
            .unwrap();
        assert_eq!(db.constraints.foreign_key_count(), 1);
    }

    #[test]
    fn rejects_unknown_fk_target() {
        let r = DatabaseBuilder::new("x")
            .table("child", |t| {
                t.attr("parent", DataType::Integer)
                    .foreign_key(&["parent"], "nope", &["id"])
            })
            .build();
        assert!(matches!(r, Err(Error::UnknownTable(_))));
    }

    #[test]
    fn rejects_bad_rows_at_build_time() {
        let r = DatabaseBuilder::new("x")
            .table("t", |t| t.attr("a", DataType::Integer))
            .rows("t", vec![vec!["oops".into()]])
            .build();
        assert!(matches!(r, Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn constraint_names_are_deterministic() {
        let db = DatabaseBuilder::new("x")
            .table("t", |t| {
                t.attr("a", DataType::Integer)
                    .attr("b", DataType::Text)
                    .primary_key(&["a"])
                    .not_null("b")
                    .unique(&["b"])
            })
            .build()
            .unwrap();
        let names: Vec<&str> = db.constraints.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["t_pk", "t_b_nn", "t_b_uq"]);
    }
}
