//! Relational schemas: tables and attributes with stable integer ids.

use crate::datatype::DataType;
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a table within its [`Schema`] (newtype over `usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// Index of an attribute within its [`Table`] (newtype over `usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its table.
    pub name: String,
    /// Declared datatype.
    pub datatype: DataType,
}

impl Attribute {
    /// Create a new attribute.
    pub fn new(name: impl Into<String>, datatype: DataType) -> Self {
        Attribute {
            name: name.into(),
            datatype,
        }
    }
}

/// A relation (table) with named, typed attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within its schema.
    pub name: String,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
}

impl Table {
    /// Create a table with the given attributes.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Table {
            name: name.into(),
            attributes,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Resolve an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId)
    }

    /// Access an attribute by id. Panics on out-of-range ids (ids are only
    /// ever minted by this crate, so a bad id is a logic error).
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.0]
    }
}

/// A named relational schema: an ordered collection of [`Table`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name (e.g. the database name, `"target"`, `"amalgam-s1"`).
    pub name: String,
    tables: Vec<Table>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Add a table; fails on duplicate names.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if self.tables.iter().any(|t| t.name == table.name) {
            return Err(Error::DuplicateName(table.name));
        }
        self.tables.push(table);
        Ok(TableId(self.tables.len() - 1))
    }

    /// Tables in declaration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of attributes across all tables — the quantity the
    /// attribute-counting baseline (Harden 2010) multiplies its task hours
    /// by.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(Table::arity).sum()
    }

    /// Resolve a table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name).map(TableId)
    }

    /// Access a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Resolve a `table.attribute` pair by names.
    pub fn resolve(&self, table: &str, attribute: &str) -> Result<(TableId, AttrId)> {
        let tid = self
            .table_id(table)
            .ok_or_else(|| Error::UnknownTable(table.to_owned()))?;
        let aid = self
            .table(tid)
            .attr_id(attribute)
            .ok_or_else(|| Error::UnknownAttribute {
                table: table.to_owned(),
                attribute: attribute.to_owned(),
            })?;
        Ok((tid, aid))
    }

    /// Iterate over `(TableId, AttrId, &Attribute)` for all attributes.
    pub fn iter_attributes(&self) -> impl Iterator<Item = (TableId, AttrId, &Attribute)> {
        self.tables.iter().enumerate().flat_map(|(ti, t)| {
            t.attributes
                .iter()
                .enumerate()
                .map(move |(ai, a)| (TableId(ti), AttrId(ai), a))
        })
    }

    /// Qualified display name for an attribute, e.g. `songs.length`.
    pub fn qualified(&self, table: TableId, attr: AttrId) -> String {
        let t = self.table(table);
        format!("{}.{}", t.name, t.attribute(attr).name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut s = Schema::new("src");
        s.add_table(Table::new(
            "songs",
            vec![
                Attribute::new("album", DataType::Integer),
                Attribute::new("name", DataType::Text),
                Attribute::new("length", DataType::Integer),
            ],
        ))
        .unwrap();
        s.add_table(Table::new(
            "albums",
            vec![
                Attribute::new("id", DataType::Integer),
                Attribute::new("name", DataType::Text),
            ],
        ))
        .unwrap();
        s
    }

    #[test]
    fn resolves_names_to_ids() {
        let s = sample();
        let (t, a) = s.resolve("songs", "length").unwrap();
        assert_eq!(t, TableId(0));
        assert_eq!(a, AttrId(2));
        assert_eq!(s.qualified(t, a), "songs.length");
    }

    #[test]
    fn unknown_names_error() {
        let s = sample();
        assert!(matches!(
            s.resolve("nope", "x"),
            Err(Error::UnknownTable(_))
        ));
        assert!(matches!(
            s.resolve("songs", "nope"),
            Err(Error::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut s = sample();
        let dup = Table::new("songs", vec![]);
        assert!(matches!(s.add_table(dup), Err(Error::DuplicateName(_))));
    }

    #[test]
    fn attribute_count_sums_over_tables() {
        assert_eq!(sample().attribute_count(), 5);
    }

    #[test]
    fn iter_attributes_covers_everything_in_order() {
        let s = sample();
        let names: Vec<String> = s
            .iter_attributes()
            .map(|(t, a, _)| s.qualified(t, a))
            .collect();
        assert_eq!(
            names,
            vec![
                "songs.album",
                "songs.name",
                "songs.length",
                "albums.id",
                "albums.name"
            ]
        );
    }
}
