//! Declarative integrity constraints.
//!
//! The paper's CSG formalism (§4.1) expresses "unique, not-null, and foreign
//! key constraints [...] as well as two conformity rules for relational
//! schemas" through prescribed cardinalities. This module is the relational-
//! level representation those cardinalities are derived from.

use crate::error::{Error, Result};
use crate::schema::{AttrId, Schema, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// Primary key over one or more attributes (implies unique + not-null).
    PrimaryKey {
        /// The constrained table.
        table: TableId,
        /// The key attributes, in declaration order.
        attrs: Vec<AttrId>,
    },
    /// Uniqueness over one or more attributes.
    Unique {
        /// The constrained table.
        table: TableId,
        /// The unique attribute combination.
        attrs: Vec<AttrId>,
    },
    /// A single attribute may not be NULL.
    NotNull {
        /// The constrained table.
        table: TableId,
        /// The non-nullable attribute.
        attr: AttrId,
    },
    /// Foreign key: `from` attributes reference `to` attributes.
    ForeignKey {
        /// The referencing table.
        from_table: TableId,
        /// The referencing attributes.
        from_attrs: Vec<AttrId>,
        /// The referenced table.
        to_table: TableId,
        /// The referenced attributes (position-aligned with
        /// `from_attrs`).
        to_attrs: Vec<AttrId>,
    },
}

/// A named integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraint {
    /// Stable constraint name used in complexity reports.
    pub name: String,
    /// What the constraint requires.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// Create a named constraint.
    pub fn new(name: impl Into<String>, kind: ConstraintKind) -> Self {
        Constraint {
            name: name.into(),
            kind,
        }
    }

    /// The table the constraint is *defined on* (the referencing table for
    /// foreign keys).
    pub fn table(&self) -> TableId {
        match &self.kind {
            ConstraintKind::PrimaryKey { table, .. }
            | ConstraintKind::Unique { table, .. }
            | ConstraintKind::NotNull { table, .. } => *table,
            ConstraintKind::ForeignKey { from_table, .. } => *from_table,
        }
    }

    /// Validate that every referenced table/attribute exists in `schema`
    /// and that attribute lists are well-formed.
    pub fn check_against(&self, schema: &Schema) -> Result<()> {
        let check_attr = |table: TableId, attr: AttrId| -> Result<()> {
            if table.0 >= schema.table_count() {
                return Err(Error::InvalidConstraint(format!(
                    "constraint `{}` refers to missing table {table}",
                    self.name
                )));
            }
            if attr.0 >= schema.table(table).arity() {
                return Err(Error::InvalidConstraint(format!(
                    "constraint `{}` refers to missing attribute {attr} of table `{}`",
                    self.name,
                    schema.table(table).name
                )));
            }
            Ok(())
        };
        match &self.kind {
            ConstraintKind::PrimaryKey { table, attrs }
            | ConstraintKind::Unique { table, attrs } => {
                if attrs.is_empty() {
                    return Err(Error::InvalidConstraint(format!(
                        "constraint `{}` has an empty attribute list",
                        self.name
                    )));
                }
                attrs.iter().try_for_each(|a| check_attr(*table, *a))
            }
            ConstraintKind::NotNull { table, attr } => check_attr(*table, *attr),
            ConstraintKind::ForeignKey {
                from_table,
                from_attrs,
                to_table,
                to_attrs,
            } => {
                if from_attrs.is_empty() || from_attrs.len() != to_attrs.len() {
                    return Err(Error::InvalidConstraint(format!(
                        "foreign key `{}` has mismatched attribute lists",
                        self.name
                    )));
                }
                from_attrs
                    .iter()
                    .try_for_each(|a| check_attr(*from_table, *a))?;
                to_attrs.iter().try_for_each(|a| check_attr(*to_table, *a))
            }
        }
    }
}

/// An ordered collection of constraints attached to a schema.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// All constraints, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// `true` iff `attr` of `table` is non-nullable: either via an explicit
    /// NOT NULL or because it participates in the table's primary key.
    pub fn is_not_null(&self, table: TableId, attr: AttrId) -> bool {
        self.constraints.iter().any(|c| match &c.kind {
            ConstraintKind::NotNull { table: t, attr: a } => *t == table && *a == attr,
            ConstraintKind::PrimaryKey { table: t, attrs } => *t == table && attrs.contains(&attr),
            _ => false,
        })
    }

    /// `true` iff `attr` of `table` is unique on its own: either via a
    /// single-column UNIQUE or a single-column primary key.
    pub fn is_unique(&self, table: TableId, attr: AttrId) -> bool {
        self.constraints.iter().any(|c| match &c.kind {
            ConstraintKind::Unique { table: t, attrs }
            | ConstraintKind::PrimaryKey { table: t, attrs } => {
                *t == table && attrs.len() == 1 && attrs[0] == attr
            }
            _ => false,
        })
    }

    /// The primary-key attributes of `table`, if a primary key is declared.
    pub fn primary_key(&self, table: TableId) -> Option<&[AttrId]> {
        self.constraints.iter().find_map(|c| match &c.kind {
            ConstraintKind::PrimaryKey { table: t, attrs } if *t == table => {
                Some(attrs.as_slice())
            }
            _ => None,
        })
    }

    /// All foreign keys *leaving* `table`.
    pub fn foreign_keys_from(&self, table: TableId) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter().filter(move |c| {
            matches!(&c.kind, ConstraintKind::ForeignKey { from_table, .. } if *from_table == table)
        })
    }

    /// All foreign keys in the set.
    pub fn foreign_keys(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints
            .iter()
            .filter(|c| matches!(c.kind, ConstraintKind::ForeignKey { .. }))
    }

    /// Count of foreign keys (used by the mapping effort function,
    /// Table 9: `Write mapping = 3·#FKs + 3·#PKs + #atts + 3·#tables`).
    pub fn foreign_key_count(&self) -> usize {
        self.foreign_keys().count()
    }

    /// Count of primary keys.
    pub fn primary_key_count(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| matches!(c.kind, ConstraintKind::PrimaryKey { .. }))
            .count()
    }

    /// Validate every constraint against `schema`.
    pub fn check_against(&self, schema: &Schema) -> Result<()> {
        self.constraints
            .iter()
            .try_for_each(|c| c.check_against(schema))
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintKind::PrimaryKey { .. } => write!(f, "PRIMARY KEY"),
            ConstraintKind::Unique { .. } => write!(f, "UNIQUE"),
            ConstraintKind::NotNull { .. } => write!(f, "NOT NULL"),
            ConstraintKind::ForeignKey { .. } => write!(f, "FOREIGN KEY"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Attribute, Table};

    fn schema() -> Schema {
        let mut s = Schema::new("t");
        s.add_table(Table::new(
            "records",
            vec![
                Attribute::new("id", DataType::Integer),
                Attribute::new("title", DataType::Text),
                Attribute::new("artist", DataType::Text),
            ],
        ))
        .unwrap();
        s.add_table(Table::new(
            "tracks",
            vec![
                Attribute::new("record", DataType::Integer),
                Attribute::new("title", DataType::Text),
            ],
        ))
        .unwrap();
        s
    }

    fn constraints() -> ConstraintSet {
        let mut cs = ConstraintSet::new();
        cs.push(Constraint::new(
            "records_pk",
            ConstraintKind::PrimaryKey {
                table: TableId(0),
                attrs: vec![AttrId(0)],
            },
        ));
        cs.push(Constraint::new(
            "records_title_nn",
            ConstraintKind::NotNull {
                table: TableId(0),
                attr: AttrId(1),
            },
        ));
        cs.push(Constraint::new(
            "tracks_record_fk",
            ConstraintKind::ForeignKey {
                from_table: TableId(1),
                from_attrs: vec![AttrId(0)],
                to_table: TableId(0),
                to_attrs: vec![AttrId(0)],
            },
        ));
        cs
    }

    #[test]
    fn pk_implies_not_null_and_unique() {
        let cs = constraints();
        assert!(cs.is_not_null(TableId(0), AttrId(0)));
        assert!(cs.is_unique(TableId(0), AttrId(0)));
        assert!(cs.is_not_null(TableId(0), AttrId(1)));
        assert!(!cs.is_not_null(TableId(0), AttrId(2)));
        assert!(!cs.is_unique(TableId(0), AttrId(1)));
    }

    #[test]
    fn counts_match() {
        let cs = constraints();
        assert_eq!(cs.foreign_key_count(), 1);
        assert_eq!(cs.primary_key_count(), 1);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn validation_accepts_well_formed_set() {
        assert!(constraints().check_against(&schema()).is_ok());
    }

    #[test]
    fn validation_rejects_dangling_references() {
        let mut cs = ConstraintSet::new();
        cs.push(Constraint::new(
            "bad",
            ConstraintKind::NotNull {
                table: TableId(9),
                attr: AttrId(0),
            },
        ));
        assert!(cs.check_against(&schema()).is_err());
    }

    #[test]
    fn validation_rejects_empty_key() {
        let mut cs = ConstraintSet::new();
        cs.push(Constraint::new(
            "bad",
            ConstraintKind::PrimaryKey {
                table: TableId(0),
                attrs: vec![],
            },
        ));
        assert!(cs.check_against(&schema()).is_err());
    }

    #[test]
    fn validation_rejects_arity_mismatched_fk() {
        let mut cs = ConstraintSet::new();
        cs.push(Constraint::new(
            "bad_fk",
            ConstraintKind::ForeignKey {
                from_table: TableId(1),
                from_attrs: vec![AttrId(0), AttrId(1)],
                to_table: TableId(0),
                to_attrs: vec![AttrId(0)],
            },
        ));
        assert!(cs.check_against(&schema()).is_err());
    }

    #[test]
    fn primary_key_lookup() {
        let cs = constraints();
        assert_eq!(cs.primary_key(TableId(0)), Some(&[AttrId(0)][..]));
        assert_eq!(cs.primary_key(TableId(1)), None);
    }
}
