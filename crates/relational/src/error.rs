//! Error type shared across the relational substrate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the relational substrate.
///
/// The variants are deliberately coarse: callers in the EFES stack either
/// surface them to the user verbatim or treat them as programming errors in
/// scenario construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name could not be resolved in a schema.
    UnknownTable(String),
    /// An attribute name could not be resolved in a table.
    UnknownAttribute {
        /// The table that was searched.
        table: String,
        /// The attribute name that was not found.
        attribute: String,
    },
    /// A table or attribute with this name already exists.
    DuplicateName(String),
    /// A row has the wrong arity or a value of the wrong type for its table.
    RowShape {
        /// The target table.
        table: String,
        /// The table's arity.
        expected: usize,
        /// The offending row's length.
        actual: usize,
    },
    /// Columns loaded together disagree on row count.
    ColumnShape {
        /// Row count of the first column.
        expected: usize,
        /// Row count of the offending column.
        actual: usize,
    },
    /// A value does not conform to the declared attribute type.
    TypeMismatch {
        /// The target table.
        table: String,
        /// The typed attribute.
        attribute: String,
        /// The declared datatype.
        expected: String,
        /// The offending value's runtime type.
        actual: String,
    },
    /// A cast between datatypes failed for a concrete value.
    CastFailed {
        /// Rendering of the value that failed to cast.
        value: String,
        /// The requested target datatype.
        target: String,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number of the problem.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A constraint refers to schema elements that do not exist.
    InvalidConstraint(String),
    /// A correspondence refers to schema elements that do not exist.
    InvalidCorrespondence(String),
    /// I/O error while reading or writing data files.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Error::UnknownAttribute { table, attribute } => {
                write!(f, "unknown attribute `{table}.{attribute}`")
            }
            Error::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            Error::RowShape {
                table,
                expected,
                actual,
            } => write!(
                f,
                "row for table `{table}` has {actual} values, expected {expected}"
            ),
            Error::ColumnShape { expected, actual } => write!(
                f,
                "columns disagree on row count: {actual} rows, expected {expected}"
            ),
            Error::TypeMismatch {
                table,
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "value for `{table}.{attribute}` has type {actual}, expected {expected}"
            ),
            Error::CastFailed { value, target } => {
                write!(f, "cannot cast `{value}` to {target}")
            }
            Error::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Error::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            Error::InvalidCorrespondence(msg) => write!(f, "invalid correspondence: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}
