//! Integration scenarios: sources, a target, and correspondences.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{AttrId, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a source database within an [`IntegrationScenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub usize);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// A fully qualified attribute reference: which database, table, attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// Table within the owning schema.
    pub table: TableId,
    /// Attribute within the table.
    pub attr: AttrId,
}

/// A correspondence between source and target schema elements (paper §3.1:
/// *"each correspondence connects a source schema element with the target
/// schema element, into which its contents should be integrated"*).
///
/// Correspondences come in two granularities, mirroring Figure 2a where
/// solid arrows connect both attributes and relations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Correspondence {
    /// A source table's instances should become instances of a target table
    /// (e.g. `albums ⇝ records`).
    Table {
        /// Which source database the source table belongs to.
        source: SourceId,
        /// The source table.
        source_table: TableId,
        /// The target table.
        target_table: TableId,
    },
    /// A source attribute stores the same atomic information as a target
    /// attribute (e.g. `albums.name ⇝ records.title`).
    Attribute {
        /// Which source database the source attribute belongs to.
        source: SourceId,
        /// The source attribute.
        source_attr: AttrRef,
        /// The target attribute.
        target_attr: AttrRef,
    },
}

impl Correspondence {
    /// The source database this correspondence originates from.
    pub fn source(&self) -> SourceId {
        match self {
            Correspondence::Table { source, .. } | Correspondence::Attribute { source, .. } => {
                *source
            }
        }
    }
}

/// All correspondences of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrespondenceSet {
    items: Vec<Correspondence>,
}

impl CorrespondenceSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a correspondence.
    pub fn push(&mut self, c: Correspondence) {
        self.items.push(c);
    }

    /// All correspondences in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Correspondence> {
        self.items.iter()
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff no correspondences exist.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All attribute correspondences from `source`.
    pub fn attribute_correspondences(
        &self,
        source: SourceId,
    ) -> impl Iterator<Item = (AttrRef, AttrRef)> + '_ {
        self.items.iter().filter_map(move |c| match c {
            Correspondence::Attribute {
                source: s,
                source_attr,
                target_attr,
            } if *s == source => Some((*source_attr, *target_attr)),
            _ => None,
        })
    }

    /// All table correspondences from `source`.
    pub fn table_correspondences(
        &self,
        source: SourceId,
    ) -> impl Iterator<Item = (TableId, TableId)> + '_ {
        self.items.iter().filter_map(move |c| match c {
            Correspondence::Table {
                source: s,
                source_table,
                target_table,
            } if *s == source => Some((*source_table, *target_table)),
            _ => None,
        })
    }

    /// Source tables of `source` that (directly via a table correspondence,
    /// or through one of their attributes) feed the given target table.
    pub fn source_tables_feeding(&self, source: SourceId, target_table: TableId) -> Vec<TableId> {
        let mut out: Vec<TableId> = Vec::new();
        for (st, tt) in self.table_correspondences(source) {
            if tt == target_table && !out.contains(&st) {
                out.push(st);
            }
        }
        for (sa, ta) in self.attribute_correspondences(source) {
            if ta.table == target_table && !out.contains(&sa.table) {
                out.push(sa.table);
            }
        }
        out.sort();
        out
    }
}

/// A data integration scenario (paper §3.1): source databases, a target
/// database, and correspondences describing how sources relate to the
/// target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntegrationScenario {
    /// Human-readable scenario name (e.g. `"s1-s2"`, `"m1-d2"`).
    pub name: String,
    /// The source databases to be integrated.
    pub sources: Vec<Database>,
    /// The target database (may already contain data).
    pub target: Database,
    /// Correspondences between source and target schema elements.
    pub correspondences: CorrespondenceSet,
}

impl IntegrationScenario {
    /// Create a single-source scenario — the shape of all eight evaluation
    /// scenarios in the paper.
    pub fn single_source(
        name: impl Into<String>,
        source: Database,
        target: Database,
        correspondences: CorrespondenceSet,
    ) -> Result<Self> {
        let s = IntegrationScenario {
            name: name.into(),
            sources: vec![source],
            target,
            correspondences,
        };
        s.check()?;
        Ok(s)
    }

    /// Create a multi-source scenario.
    pub fn multi_source(
        name: impl Into<String>,
        sources: Vec<Database>,
        target: Database,
        correspondences: CorrespondenceSet,
    ) -> Result<Self> {
        let s = IntegrationScenario {
            name: name.into(),
            sources,
            target,
            correspondences,
        };
        s.check()?;
        Ok(s)
    }

    /// Access a source database.
    pub fn source(&self, id: SourceId) -> &Database {
        &self.sources[id.0]
    }

    /// Iterate over `(SourceId, &Database)`.
    pub fn iter_sources(&self) -> impl Iterator<Item = (SourceId, &Database)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, db)| (SourceId(i), db))
    }

    /// Validate that every correspondence refers to existing schema
    /// elements on both ends.
    pub fn check(&self) -> Result<()> {
        for c in self.correspondences.iter() {
            let sid = c.source();
            let source = self.sources.get(sid.0).ok_or_else(|| {
                Error::InvalidCorrespondence(format!("unknown source database {sid}"))
            })?;
            let check = |db: &Database, table: TableId, attr: Option<AttrId>| -> Result<()> {
                if table.0 >= db.schema.table_count() {
                    return Err(Error::InvalidCorrespondence(format!(
                        "table {table} missing in `{}`",
                        db.name()
                    )));
                }
                if let Some(a) = attr {
                    if a.0 >= db.schema.table(table).arity() {
                        return Err(Error::InvalidCorrespondence(format!(
                            "attribute {a} missing in `{}.{}`",
                            db.name(),
                            db.schema.table(table).name
                        )));
                    }
                }
                Ok(())
            };
            match c {
                Correspondence::Table {
                    source_table,
                    target_table,
                    ..
                } => {
                    check(source, *source_table, None)?;
                    check(&self.target, *target_table, None)?;
                }
                Correspondence::Attribute {
                    source_attr,
                    target_attr,
                    ..
                } => {
                    check(source, source_attr.table, Some(source_attr.attr))?;
                    check(&self.target, target_attr.table, Some(target_attr.attr))?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: add an attribute correspondence by names, resolving
    /// them against source 0 (single-source scenarios).
    pub fn describe(&self) -> String {
        let mut s = format!(
            "scenario `{}`: {} source(s) -> target `{}` ({} correspondences)",
            self.name,
            self.sources.len(),
            self.target.name(),
            self.correspondences.len()
        );
        for (sid, db) in self.iter_sources() {
            s.push_str(&format!(
                "\n  {sid}: `{}` ({} tables, {} attributes, {} rows)",
                db.name(),
                db.schema.table_count(),
                db.schema.attribute_count(),
                db.instance.row_count()
            ));
        }
        s
    }
}

/// Helper to build a [`CorrespondenceSet`] by names against concrete
/// databases.
pub struct CorrespondenceBuilder<'a> {
    sources: Vec<&'a Database>,
    target: &'a Database,
    set: CorrespondenceSet,
}

impl<'a> CorrespondenceBuilder<'a> {
    /// Start building against one source and a target.
    pub fn new(source: &'a Database, target: &'a Database) -> Self {
        CorrespondenceBuilder {
            sources: vec![source],
            target,
            set: CorrespondenceSet::new(),
        }
    }

    /// Start building against several sources and a target.
    pub fn multi(sources: Vec<&'a Database>, target: &'a Database) -> Self {
        CorrespondenceBuilder {
            sources,
            target,
            set: CorrespondenceSet::new(),
        }
    }

    /// Add a table correspondence `source_table ⇝ target_table` for source 0.
    pub fn table(self, source_table: &str, target_table: &str) -> Result<Self> {
        self.table_from(0, source_table, target_table)
    }

    /// Add a table correspondence for the given source index.
    pub fn table_from(mut self, source: usize, source_table: &str, target_table: &str) -> Result<Self> {
        let st = self.sources[source]
            .schema
            .table_id(source_table)
            .ok_or_else(|| Error::UnknownTable(source_table.to_owned()))?;
        let tt = self
            .target
            .schema
            .table_id(target_table)
            .ok_or_else(|| Error::UnknownTable(target_table.to_owned()))?;
        self.set.push(Correspondence::Table {
            source: SourceId(source),
            source_table: st,
            target_table: tt,
        });
        Ok(self)
    }

    /// Add an attribute correspondence `s_table.s_attr ⇝ t_table.t_attr`
    /// for source 0.
    pub fn attr(self, s_table: &str, s_attr: &str, t_table: &str, t_attr: &str) -> Result<Self> {
        self.attr_from(0, s_table, s_attr, t_table, t_attr)
    }

    /// Add an attribute correspondence for the given source index.
    pub fn attr_from(
        mut self,
        source: usize,
        s_table: &str,
        s_attr: &str,
        t_table: &str,
        t_attr: &str,
    ) -> Result<Self> {
        let (st, sa) = self.sources[source].schema.resolve(s_table, s_attr)?;
        let (tt, ta) = self.target.schema.resolve(t_table, t_attr)?;
        self.set.push(Correspondence::Attribute {
            source: SourceId(source),
            source_attr: AttrRef { table: st, attr: sa },
            target_attr: AttrRef { table: tt, attr: ta },
        });
        Ok(self)
    }

    /// Finish and return the set.
    pub fn finish(self) -> CorrespondenceSet {
        self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::datatype::DataType;

    fn source() -> Database {
        DatabaseBuilder::new("src")
            .table("albums", |t| {
                t.attr("id", DataType::Integer).attr("name", DataType::Text)
            })
            .build()
            .unwrap()
    }

    fn target() -> Database {
        DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("id", DataType::Integer).attr("title", DataType::Text)
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_names() {
        let s = source();
        let t = target();
        let cs = CorrespondenceBuilder::new(&s, &t)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        assert_eq!(cs.len(), 2);
        let scenario = IntegrationScenario::single_source("x", s, t, cs).unwrap();
        assert!(scenario.check().is_ok());
    }

    #[test]
    fn builder_rejects_unknown_names() {
        let s = source();
        let t = target();
        assert!(CorrespondenceBuilder::new(&s, &t)
            .attr("albums", "nope", "records", "title")
            .is_err());
    }

    #[test]
    fn source_tables_feeding_unions_both_granularities() {
        let s = source();
        let t = target();
        let cs = CorrespondenceBuilder::new(&s, &t)
            .table("albums", "records")
            .unwrap()
            .attr("albums", "name", "records", "title")
            .unwrap()
            .finish();
        let tt = t.schema.table_id("records").unwrap();
        let feeding = cs.source_tables_feeding(SourceId(0), tt);
        assert_eq!(feeding.len(), 1);
    }

    #[test]
    fn scenario_check_catches_out_of_range_refs() {
        let s = source();
        let t = target();
        let mut cs = CorrespondenceSet::new();
        cs.push(Correspondence::Table {
            source: SourceId(0),
            source_table: TableId(7),
            target_table: TableId(0),
        });
        assert!(IntegrationScenario::single_source("bad", s, t, cs).is_err());
    }

    #[test]
    fn describe_mentions_everything() {
        let s = source();
        let t = target();
        let cs = CorrespondenceBuilder::new(&s, &t)
            .table("albums", "records")
            .unwrap()
            .finish();
        let sc = IntegrationScenario::single_source("demo", s, t, cs).unwrap();
        let d = sc.describe();
        assert!(d.contains("demo") && d.contains("src") && d.contains("tgt"));
    }
}
