//! # efes-relational
//!
//! The relational substrate underneath the EFES effort-estimation framework
//! (Kruse, Papotti, Naumann: *Estimating Data Integration and Cleaning
//! Effort*, EDBT 2015).
//!
//! The original prototype stored its case-study datasets in PostgreSQL and
//! analysed them with SQL queries. This crate replaces that substrate with a
//! small, self-contained in-memory relational engine exposing exactly what
//! EFES observes about a database:
//!
//! * typed [`Value`]s and [`DataType`]s with cast semantics,
//! * [`Schema`]s made of [`Table`]s and [`Attribute`]s,
//! * declarative [`Constraint`]s (primary key, foreign key, unique,
//!   not-null),
//! * [`Instance`]s (the data) with full constraint validation,
//! * a typed, dictionary-encoded [`Column`]ar mirror of every table,
//!   built lazily for the profiling hot path (`EFES_COLUMNAR=off`
//!   falls back to row-major iteration),
//! * [`Database`] = schema + constraints + instance,
//! * the [`IntegrationScenario`] model: source databases, a target database
//!   and [`Correspondence`]s between their schema elements,
//! * a dependency-free CSV reader/writer for loading external datasets.
//!
//! Everything is deterministic and order-stable so that the reproduction
//! harness produces identical numbers on every run.

#![warn(missing_docs)]

pub mod builder;
pub mod column;
pub mod constraint;
pub mod csv;
pub mod database;
pub mod datatype;
pub mod error;
pub mod instance;
pub mod scenario;
pub mod schema;
pub mod value;

pub use builder::{DatabaseBuilder, TableBuilder};
pub use constraint::{Constraint, ConstraintKind, ConstraintSet};
pub use column::{
    columnar_enabled, Column, ColumnBuilder, ColumnIter, TextColumn, ValueRef, COLUMNAR_ENV_VAR,
};
pub use database::Database;
pub use datatype::DataType;
pub use error::{Error, Result};
pub use instance::{Instance, Row, TableData};
pub use scenario::{
    AttrRef, Correspondence, CorrespondenceBuilder, CorrespondenceSet, IntegrationScenario,
    SourceId,
};
pub use schema::{AttrId, Attribute, Schema, Table, TableId};
pub use value::Value;
