//! Database instances (the data) and constraint validation.

use crate::column::{columnar_enabled, Column, ColumnIter};
use crate::constraint::{Constraint, ConstraintKind, ConstraintSet};
use crate::error::{Error, Result};
use crate::schema::{AttrId, Schema, TableId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// One tuple of a relation.
pub type Row = Vec<Value>;

/// The rows of a single table, plus a lazily built columnar mirror.
///
/// Rows remain the source of truth (inserts and constraint validation
/// are row-shaped); the first columnar read of an attribute builds its
/// typed [`Column`] exactly once and caches it. Mutation through
/// [`Instance::insert`] invalidates the cache wholesale — the workload
/// is load-then-analyse, so rebuilds are rare.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct TableData {
    rows: Vec<Row>,
    /// Per-attribute typed columns, built on demand. Outer cell resolves
    /// the table's arity, inner cells build one column each, so a
    /// consumer touching one attribute does not pay for the others.
    #[serde(skip)]
    columns: OnceLock<Vec<OnceLock<Column>>>,
}

impl Clone for TableData {
    fn clone(&self) -> Self {
        // The columnar mirror is a pure cache; a clone rebuilds it on
        // first use instead of copying arenas.
        TableData {
            rows: self.rows.clone(),
            columns: OnceLock::new(),
        }
    }
}

impl PartialEq for TableData {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}

impl Eq for TableData {}

impl TableData {
    /// Empty table data.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build table data from pre-built typed columns, one per attribute.
    ///
    /// The rows (the source of truth) are derived from the columns, and
    /// the columnar cache is pre-seeded with the *same* column values, so
    /// a generator that produces data column-wise never pays a second
    /// [`Column::build`] pass on first profile. Because
    /// [`Column::from_cells`] and the lazy rebuild share one build core,
    /// the seeded cache is indistinguishable from a rebuilt one.
    ///
    /// Fails with [`Error::ColumnShape`] if the columns disagree on row
    /// count.
    pub fn from_columns(columns: Vec<Column>) -> Result<TableData> {
        let len = columns.first().map(Column::len).unwrap_or(0);
        if let Some(odd) = columns.iter().find(|c| c.len() != len) {
            return Err(Error::ColumnShape {
                expected: len,
                actual: odd.len(),
            });
        }
        let rows: Vec<Row> = (0..len)
            .map(|i| columns.iter().map(|c| c.value(i).to_value()).collect())
            .collect();
        let data = TableData {
            rows,
            columns: OnceLock::new(),
        };
        let slots: Vec<OnceLock<Column>> = columns
            .into_iter()
            .map(|c| {
                let slot = OnceLock::new();
                let _ = slot.set(c);
                slot
            })
            .collect();
        let _ = data.columns.set(slots);
        Ok(data)
    }

    /// Append a row (shape is checked by [`Instance::insert`]).
    fn push(&mut self, row: Row) {
        self.rows.push(row);
        self.columns = OnceLock::new();
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The typed columnar store of one attribute, building (and caching)
    /// it on first access. `None` for out-of-range attributes and for
    /// tables that hold no rows (an empty table has unknowable arity).
    pub fn column_store(&self, attr: AttrId) -> Option<&Column> {
        let arity = self.rows.first().map(Vec::len)?;
        let slots = self
            .columns
            .get_or_init(|| (0..arity).map(|_| OnceLock::new()).collect());
        slots
            .get(attr.0)
            .map(|slot| slot.get_or_init(|| Column::build(&self.rows, attr.0)))
    }

    /// Iterate over the values of one column, in row order.
    ///
    /// Routed through the columnar store unless `EFES_COLUMNAR=off`
    /// (see [`crate::column::COLUMNAR_ENV_VAR`]), in which case the
    /// iterator walks the row-major rows directly; both backings yield
    /// identical sequences.
    pub fn column(&self, attr: AttrId) -> ColumnIter<'_> {
        if columnar_enabled() {
            match self.column_store(attr) {
                Some(col) => col.iter(),
                None => Column::empty().iter(),
            }
        } else {
            ColumnIter::over_rows(&self.rows, attr.0)
        }
    }
}

/// A violation found while validating an instance against its constraints.
///
/// EFES only ever needs violation *counts* per constraint (paper §4.1:
/// "we can count the number of albums in the source data, that are
/// associated to no or more than one artist"), but carrying the row index
/// makes the reports debuggable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the violated constraint.
    pub constraint: String,
    /// Table the offending row lives in.
    pub table: TableId,
    /// Index of the offending row within its table.
    pub row: usize,
    /// Human-readable explanation.
    pub detail: String,
}

/// An instance of a [`Schema`]: one [`TableData`] per table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    tables: Vec<TableData>,
}

impl Instance {
    /// An empty instance shaped for `schema`.
    pub fn empty(schema: &Schema) -> Self {
        Instance {
            tables: (0..schema.table_count()).map(|_| TableData::new()).collect(),
        }
    }

    /// Insert a row after checking arity and declared types against
    /// `schema`.
    pub fn insert(&mut self, schema: &Schema, table: TableId, row: Row) -> Result<()> {
        let t = schema.table(table);
        if row.len() != t.arity() {
            return Err(Error::RowShape {
                table: t.name.clone(),
                expected: t.arity(),
                actual: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let attr = &t.attributes[i];
            if !attr.datatype.admits(v) {
                return Err(Error::TypeMismatch {
                    table: t.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.datatype.to_string(),
                    actual: v.type_name().to_owned(),
                });
            }
        }
        self.tables[table.0].push(row);
        Ok(())
    }

    /// Replace one table's data with columns built column-wise, checking
    /// arity and declared types against `schema`.
    ///
    /// The type check is variant-level for typed columns (a whole
    /// [`Column::Int`] is admissible exactly when one `Int` cell is), so
    /// it costs O(1) per typed column; only [`Column::Mixed`] falls back
    /// to a per-cell [`DataType::admits`](crate::DataType::admits) walk.
    pub fn load_columns(
        &mut self,
        schema: &Schema,
        table: TableId,
        columns: Vec<Column>,
    ) -> Result<()> {
        let t = schema.table(table);
        if columns.len() != t.arity() {
            return Err(Error::RowShape {
                table: t.name.clone(),
                expected: t.arity(),
                actual: columns.len(),
            });
        }
        for (i, col) in columns.iter().enumerate() {
            let attr = &t.attributes[i];
            let ok = match col {
                Column::Int { .. } => attr.datatype.admits(&Value::Int(0)),
                Column::Float { .. } => attr.datatype.admits(&Value::Float(0.0)),
                Column::Text(_) => attr.datatype == crate::datatype::DataType::Text,
                Column::Bool { .. } => attr.datatype == crate::datatype::DataType::Boolean,
                Column::Mixed(cells) => cells.iter().all(|v| attr.datatype.admits(v)),
            };
            if !ok {
                return Err(Error::TypeMismatch {
                    table: t.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.datatype.to_string(),
                    actual: col.type_label().to_owned(),
                });
            }
        }
        self.tables[table.0] = TableData::from_columns(columns)?;
        Ok(())
    }

    /// Data of one table.
    pub fn table(&self, id: TableId) -> &TableData {
        &self.tables[id.0]
    }

    /// Total number of rows across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(TableData::len).sum()
    }

    /// Iterate over all `(TableId, &TableData)` pairs.
    pub fn iter_tables(&self) -> impl Iterator<Item = (TableId, &TableData)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i), t))
    }

    /// The distinct non-null values of one column, in first-seen order.
    ///
    /// Served by the columnar store when enabled: for text columns the
    /// dictionary *is* the answer (no hashing, no per-row clones). The
    /// row-major fallback hashes borrowed values and clones only the
    /// distinct ones. Callers that only need the cardinality should use
    /// [`Instance::distinct_count`] instead, which never clones.
    pub fn distinct_values(&self, table: TableId, attr: AttrId) -> Vec<Value> {
        let data = self.table(table);
        if columnar_enabled() {
            return match data.column_store(attr) {
                Some(col) => col.distinct_values(),
                None => Vec::new(),
            };
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in data.rows() {
            let v = &row[attr.0];
            if !v.is_null() && seen.insert(v) {
                out.push(v.clone());
            }
        }
        out
    }

    /// The number of distinct non-null values of one column — the
    /// allocation-free variant of [`Instance::distinct_values`] for the
    /// (common) callers that only need the count.
    pub fn distinct_count(&self, table: TableId, attr: AttrId) -> usize {
        let data = self.table(table);
        if columnar_enabled() {
            return match data.column_store(attr) {
                Some(col) => col.distinct_count(),
                None => 0,
            };
        }
        let mut seen = HashSet::new();
        data.rows()
            .iter()
            .map(|row| &row[attr.0])
            .filter(|v| !v.is_null() && seen.insert(*v))
            .count()
    }

    /// Validate the instance against `constraints`, returning every
    /// violation. An empty result means the instance is valid — the paper
    /// *assumes* source instances are valid w.r.t. their own schemas
    /// (§3.1), and the scenario generators use this to assert it.
    pub fn validate(&self, schema: &Schema, constraints: &ConstraintSet) -> Vec<Violation> {
        let mut out = Vec::new();
        for c in constraints.iter() {
            self.check_constraint(schema, c, &mut out);
        }
        out
    }

    fn check_constraint(&self, schema: &Schema, c: &Constraint, out: &mut Vec<Violation>) {
        match &c.kind {
            ConstraintKind::NotNull { table, attr } => {
                for (i, row) in self.table(*table).rows().iter().enumerate() {
                    if row[attr.0].is_null() {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: format!("NULL in {}", schema.qualified(*table, *attr)),
                        });
                    }
                }
            }
            ConstraintKind::PrimaryKey { table, attrs } | ConstraintKind::Unique { table, attrs } => {
                let is_pk = matches!(c.kind, ConstraintKind::PrimaryKey { .. });
                let mut seen: HashMap<Vec<&Value>, usize> = HashMap::new();
                for (i, row) in self.table(*table).rows().iter().enumerate() {
                    let key: Vec<&Value> = attrs.iter().map(|a| &row[a.0]).collect();
                    if is_pk && key.iter().any(|v| v.is_null()) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: "NULL in primary key".to_owned(),
                        });
                        continue;
                    }
                    // SQL semantics: NULLs never collide under UNIQUE.
                    if !is_pk && key.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if let Some(first) = seen.insert(key, i) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: format!("duplicate key (first at row {first})"),
                        });
                    }
                }
            }
            ConstraintKind::ForeignKey {
                from_table,
                from_attrs,
                to_table,
                to_attrs,
            } => {
                let referenced: HashSet<Vec<&Value>> = self
                    .table(*to_table)
                    .rows()
                    .iter()
                    .map(|row| to_attrs.iter().map(|a| &row[a.0]).collect())
                    .collect();
                for (i, row) in self.table(*from_table).rows().iter().enumerate() {
                    let key: Vec<&Value> = from_attrs.iter().map(|a| &row[a.0]).collect();
                    // SQL MATCH SIMPLE: any NULL component satisfies the FK.
                    if key.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if !referenced.contains(&key) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *from_table,
                            row: i,
                            detail: format!(
                                "dangling reference into `{}`",
                                schema.table(*to_table).name
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::datatype::DataType;

    fn db() -> crate::database::Database {
        DatabaseBuilder::new("test")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
            })
            .table("tracks", |t| {
                t.attr("record", DataType::Integer)
                    .attr("title", DataType::Text)
                    .foreign_key(&["record"], "records", &["id"])
            })
            .rows("records", vec![vec![1.into(), "A".into()], vec![2.into(), "B".into()]])
            .rows("tracks", vec![vec![1.into(), "x".into()]])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_instance_has_no_violations() {
        let db = db();
        assert!(db.validate().is_empty());
    }

    #[test]
    fn not_null_violation_detected() {
        let mut db = db();
        let t = db.schema.table_id("records").unwrap();
        db.insert_by_name("records", vec![3.into(), Value::Null])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].table, t);
        assert!(v[0].detail.contains("NULL"));
    }

    #[test]
    fn duplicate_pk_detected() {
        let mut db = db();
        db.insert_by_name("records", vec![1.into(), "C".into()])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("duplicate"));
    }

    #[test]
    fn dangling_fk_detected_and_null_fk_tolerated() {
        let mut db = db();
        db.insert_by_name("tracks", vec![99.into(), "y".into()])
            .unwrap();
        db.insert_by_name("tracks", vec![Value::Null, "z".into()])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("dangling"));
    }

    #[test]
    fn unique_ignores_nulls() {
        let db = DatabaseBuilder::new("u")
            .table("t", |t| {
                t.attr("x", DataType::Integer).unique(&["x"])
            })
            .rows("t", vec![vec![Value::Null], vec![Value::Null], vec![1.into()]])
            .build()
            .unwrap();
        assert!(db.validate().is_empty());
    }

    #[test]
    fn insert_checks_shape_and_types() {
        let mut db = db();
        assert!(matches!(
            db.insert_by_name("records", vec![1.into()]),
            Err(Error::RowShape { .. })
        ));
        assert!(matches!(
            db.insert_by_name("records", vec!["notint".into(), "T".into()]),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn from_columns_derives_rows_and_seeds_cache() {
        let id = Column::from_cells(vec![1.into(), 2.into()]);
        let title = Column::from_cells(vec!["A".into(), Value::Null]);
        let data = TableData::from_columns(vec![id.clone(), title.clone()]).unwrap();
        assert_eq!(
            data.rows(),
            &[vec![Value::Int(1), Value::Text("A".into())], vec![Value::Int(2), Value::Null]]
        );
        // The cache is pre-seeded: the store is the very column we loaded.
        assert_eq!(data.column_store(AttrId(0)), Some(&id));
        assert_eq!(data.column_store(AttrId(1)), Some(&title));
        // And it equals what a lazy rebuild from the rows would produce.
        let rebuilt = data.clone();
        assert_eq!(rebuilt.column_store(AttrId(1)), Some(&title));
    }

    #[test]
    fn from_columns_rejects_ragged_lengths() {
        let a = Column::from_cells(vec![1.into(), 2.into()]);
        let b = Column::from_cells(vec![1.into()]);
        assert!(matches!(
            TableData::from_columns(vec![a, b]),
            Err(Error::ColumnShape { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn load_columns_by_name_checks_arity_and_types() {
        let mut database = db();
        // Wrong arity.
        assert!(matches!(
            database.load_columns_by_name("records", vec![Column::from_cells(vec![1.into()])]),
            Err(Error::RowShape { .. })
        ));
        // Wrong type for `id` (text column into an integer attribute).
        assert!(matches!(
            database.load_columns_by_name(
                "records",
                vec![
                    Column::from_cells(vec!["x".into()]),
                    Column::from_cells(vec!["t".into()]),
                ]
            ),
            Err(Error::TypeMismatch { .. })
        ));
        // A valid load replaces the data wholesale and validates clean.
        database
            .load_columns_by_name(
                "records",
                vec![
                    Column::from_cells(vec![7.into(), 8.into()]),
                    Column::from_cells(vec!["X".into(), "Y".into()]),
                ]
            )
            .unwrap();
        database
            .load_columns_by_name(
                "tracks",
                vec![
                    Column::from_cells(vec![7.into()]),
                    Column::from_cells(vec!["x".into()]),
                ]
            )
            .unwrap();
        let t = database.schema.table_id("records").unwrap();
        assert_eq!(database.instance.table(t).len(), 2);
        assert_eq!(
            database.instance.distinct_values(t, AttrId(0)),
            vec![Value::Int(7), Value::Int(8)]
        );
        assert!(database.validate().is_empty());
    }

    #[test]
    fn distinct_values_skips_nulls_and_dupes() {
        let mut db = db();
        db.insert_by_name("tracks", vec![1.into(), "x".into()])
            .unwrap();
        db.insert_by_name("tracks", vec![Value::Null, "w".into()])
            .unwrap();
        let t = db.schema.table_id("tracks").unwrap();
        let d = db.instance.distinct_values(t, AttrId(0));
        assert_eq!(d, vec![Value::Int(1)]);
    }
}
