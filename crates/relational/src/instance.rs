//! Database instances (the data) and constraint validation.

use crate::column::{columnar_enabled, Column, ColumnIter, ValueRef};
use crate::constraint::{Constraint, ConstraintKind, ConstraintSet};
use crate::error::{Error, Result};
use crate::schema::{AttrId, Schema, TableId};
use crate::value::Value;
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// One tuple of a relation.
pub type Row = Vec<Value>;

/// The data of a single table, held in whichever representation it
/// arrived in — row-major rows or typed [`Column`]s — with the other
/// derived lazily, at most once.
///
/// Row-built tables (inserts, CSV loads, deserialization) keep rows as
/// the source of truth and build their columnar mirror on first columnar
/// read, per attribute. Column-built tables
/// ([`TableData::from_columns`], the generators and the ingest path)
/// keep the typed columns as the source of truth and derive the
/// row-major view only if a row-shaped consumer (constraint validation,
/// serialization) actually asks — the inverse relationship, so streaming
/// ingest never pays a row-major detour. At least one representation is
/// always present. Mutation through [`Instance::insert`] materialises
/// rows and invalidates the columnar cache wholesale — the workload is
/// load-then-analyse, so rebuilds are rare.
#[derive(Debug)]
pub struct TableData {
    rows: OnceLock<Vec<Row>>,
    /// Per-attribute typed columns. Outer cell resolves the table's
    /// arity, inner cells build one column each, so a consumer touching
    /// one attribute does not pay for the others. For column-built
    /// tables every inner cell is pre-seeded.
    columns: OnceLock<Vec<OnceLock<Column>>>,
}

impl Default for TableData {
    fn default() -> Self {
        TableData::from_rows(Vec::new())
    }
}

impl Clone for TableData {
    fn clone(&self) -> Self {
        match self.rows.get() {
            // Row-primary: the columnar mirror is a pure cache; a clone
            // rebuilds it on first use instead of copying arenas.
            Some(rows) => TableData::from_rows(rows.clone()),
            // Column-primary: the columns are the source of truth; clone
            // them and leave the row view lazy.
            None => {
                let slots: Vec<OnceLock<Column>> = self
                    .column_slots()
                    .iter()
                    .map(|slot| {
                        OnceLock::from(slot.get().expect("column-primary slots are set").clone())
                    })
                    .collect();
                let data = TableData {
                    rows: OnceLock::new(),
                    columns: OnceLock::new(),
                };
                let _ = data.columns.set(slots);
                data
            }
        }
    }
}

/// Cell equality under [`Value`] semantics: floats compare by
/// [`f64::total_cmp`] (NaN equals NaN, `-0.0` differs from `0.0`),
/// cross-variant cells are never equal.
fn cell_eq(a: ValueRef<'_>, b: ValueRef<'_>) -> bool {
    match (a, b) {
        (ValueRef::Float(x), ValueRef::Float(y)) => x.total_cmp(&y).is_eq(),
        _ => a == b,
    }
}

impl PartialEq for TableData {
    fn eq(&self, other: &Self) -> bool {
        // When both sides are column-primary (the dedup-check hot case),
        // compare cell-wise through the columns without materialising a
        // row in sight; any row-primary side falls back to the row
        // comparison, deriving the other side's rows if needed.
        if self.rows.get().is_none() && other.rows.get().is_none() {
            if self.len() != other.len() {
                return false;
            }
            let (a, b) = (self.column_slots(), other.column_slots());
            if self.is_empty() {
                // No cells to compare; arity is unobservable through
                // rows, matching the row-major `[] == []`.
                return true;
            }
            if a.len() != b.len() {
                return false;
            }
            return a.iter().zip(b).all(|(sa, sb)| {
                let (ca, cb) = (sa.get().unwrap(), sb.get().unwrap());
                (0..ca.len()).all(|i| cell_eq(ca.value(i), cb.value(i)))
            });
        }
        self.rows() == other.rows()
    }
}

impl Eq for TableData {}

// Hand-written to keep the wire format of the old `#[derive]` on the
// row-major field — `{"rows": [...]}` — regardless of which
// representation is primary. Serializing a column-built table derives
// its rows first (golden scenario dumps are row-shaped and must stay
// byte-identical); deserialization always lands row-primary.
impl Serialize for TableData {
    fn to_content(&self) -> Content {
        Content::Map(vec![(
            Content::Str("rows".into()),
            self.rows().to_content(),
        )])
    }
}

impl Deserialize for TableData {
    fn from_content(content: &Content) -> std::result::Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `TableData`"))?;
        match content_get(map, "rows") {
            Some(v) => Ok(TableData::from_rows(Vec::<Row>::from_content(v)?)),
            None => Err(DeError::missing_field("TableData", "rows")),
        }
    }
}

impl TableData {
    /// Empty table data.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build row-primary table data (row shape is checked by the
    /// callers that have a schema in hand, e.g. [`Instance::insert`]).
    pub fn from_rows(rows: Vec<Row>) -> Self {
        TableData {
            rows: OnceLock::from(rows),
            columns: OnceLock::new(),
        }
    }

    /// Build column-primary table data from pre-built typed columns, one
    /// per attribute.
    ///
    /// The columns *are* the data: no row-major copy is made, and none
    /// ever will be unless a row-shaped consumer asks ([`TableData::rows`]
    /// derives them lazily, at most once). Because [`Column::from_cells`]
    /// / [`crate::ColumnBuilder`] and the lazy rebuild share one build
    /// core, a column loaded here is indistinguishable from one rebuilt
    /// off derived rows.
    ///
    /// Fails with [`Error::ColumnShape`] if the columns disagree on row
    /// count.
    pub fn from_columns(columns: Vec<Column>) -> Result<TableData> {
        let len = columns.first().map(Column::len).unwrap_or(0);
        if let Some(odd) = columns.iter().find(|c| c.len() != len) {
            return Err(Error::ColumnShape {
                expected: len,
                actual: odd.len(),
            });
        }
        let data = TableData {
            rows: OnceLock::new(),
            columns: OnceLock::new(),
        };
        let slots: Vec<OnceLock<Column>> = columns.into_iter().map(OnceLock::from).collect();
        let _ = data.columns.set(slots);
        Ok(data)
    }

    /// The column slots of a column-primary table (invariant: when rows
    /// are unset, the slots exist and are all seeded).
    fn column_slots(&self) -> &[OnceLock<Column>] {
        self.columns
            .get()
            .expect("TableData invariant: rows or columns are set")
    }

    /// Append a row (shape is checked by [`Instance::insert`]).
    ///
    /// Materialises the row view if the table was column-built, then
    /// invalidates the columnar cache wholesale.
    fn push(&mut self, row: Row) {
        self.rows();
        self.rows
            .get_mut()
            .expect("rows were just materialised")
            .push(row);
        self.columns = OnceLock::new();
    }

    /// All rows in insertion order, deriving them from the columns (at
    /// most once) for column-built tables.
    pub fn rows(&self) -> &[Row] {
        self.rows.get_or_init(|| {
            let slots = self.column_slots();
            let cols: Vec<&Column> = slots
                .iter()
                .map(|s| s.get().expect("column-primary slots are set"))
                .collect();
            let len = cols.first().map(|c| c.len()).unwrap_or(0);
            (0..len)
                .map(|i| cols.iter().map(|c| c.value(i).to_value()).collect())
                .collect()
        })
    }

    /// Number of rows (without materialising either representation).
    pub fn len(&self) -> usize {
        match self.rows.get() {
            Some(rows) => rows.len(),
            None => self
                .column_slots()
                .first()
                .map(|s| s.get().expect("column-primary slots are set").len())
                .unwrap_or(0),
        }
    }

    /// `true` iff the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed columnar store of one attribute, building (and caching)
    /// it on first access. `None` for out-of-range attributes and for
    /// row-built tables that hold no rows (an empty row-major table has
    /// unknowable arity).
    pub fn column_store(&self, attr: AttrId) -> Option<&Column> {
        let slots = match self.columns.get() {
            Some(slots) => slots,
            None => {
                let arity = self
                    .rows
                    .get()
                    .expect("TableData invariant: rows or columns are set")
                    .first()
                    .map(Vec::len)?;
                self.columns
                    .get_or_init(|| (0..arity).map(|_| OnceLock::new()).collect())
            }
        };
        slots
            .get(attr.0)
            .map(|slot| slot.get_or_init(|| Column::build(self.rows(), attr.0)))
    }

    /// Iterate over the values of one column, in row order.
    ///
    /// Routed through the columnar store unless `EFES_COLUMNAR=off`
    /// (see [`crate::column::COLUMNAR_ENV_VAR`]), in which case the
    /// iterator walks the row-major rows directly (materialising them
    /// for column-built tables); both backings yield identical
    /// sequences.
    pub fn column(&self, attr: AttrId) -> ColumnIter<'_> {
        if columnar_enabled() {
            match self.column_store(attr) {
                Some(col) => col.iter(),
                None => Column::empty().iter(),
            }
        } else {
            ColumnIter::over_rows(self.rows(), attr.0)
        }
    }
}

/// A violation found while validating an instance against its constraints.
///
/// EFES only ever needs violation *counts* per constraint (paper §4.1:
/// "we can count the number of albums in the source data, that are
/// associated to no or more than one artist"), but carrying the row index
/// makes the reports debuggable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the violated constraint.
    pub constraint: String,
    /// Table the offending row lives in.
    pub table: TableId,
    /// Index of the offending row within its table.
    pub row: usize,
    /// Human-readable explanation.
    pub detail: String,
}

/// An instance of a [`Schema`]: one [`TableData`] per table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    tables: Vec<TableData>,
}

impl Instance {
    /// An empty instance shaped for `schema`.
    pub fn empty(schema: &Schema) -> Self {
        Instance {
            tables: (0..schema.table_count()).map(|_| TableData::new()).collect(),
        }
    }

    /// Insert a row after checking arity and declared types against
    /// `schema`.
    pub fn insert(&mut self, schema: &Schema, table: TableId, row: Row) -> Result<()> {
        let t = schema.table(table);
        if row.len() != t.arity() {
            return Err(Error::RowShape {
                table: t.name.clone(),
                expected: t.arity(),
                actual: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let attr = &t.attributes[i];
            if !attr.datatype.admits(v) {
                return Err(Error::TypeMismatch {
                    table: t.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.datatype.to_string(),
                    actual: v.type_name().to_owned(),
                });
            }
        }
        self.tables[table.0].push(row);
        Ok(())
    }

    /// Replace one table's data with columns built column-wise, checking
    /// arity and declared types against `schema`.
    ///
    /// The type check is variant-level for typed columns (a whole
    /// [`Column::Int`] is admissible exactly when one `Int` cell is), so
    /// it costs O(1) per typed column; only [`Column::Mixed`] falls back
    /// to a per-cell [`DataType::admits`](crate::DataType::admits) walk.
    pub fn load_columns(
        &mut self,
        schema: &Schema,
        table: TableId,
        columns: Vec<Column>,
    ) -> Result<()> {
        let t = schema.table(table);
        if columns.len() != t.arity() {
            return Err(Error::RowShape {
                table: t.name.clone(),
                expected: t.arity(),
                actual: columns.len(),
            });
        }
        for (i, col) in columns.iter().enumerate() {
            let attr = &t.attributes[i];
            let ok = match col {
                Column::Int { .. } => attr.datatype.admits(&Value::Int(0)),
                Column::Float { .. } => attr.datatype.admits(&Value::Float(0.0)),
                Column::Text(_) => attr.datatype == crate::datatype::DataType::Text,
                Column::Bool { .. } => attr.datatype == crate::datatype::DataType::Boolean,
                Column::Mixed(cells) => cells.iter().all(|v| attr.datatype.admits(v)),
            };
            if !ok {
                return Err(Error::TypeMismatch {
                    table: t.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.datatype.to_string(),
                    actual: col.type_label().to_owned(),
                });
            }
        }
        self.tables[table.0] = TableData::from_columns(columns)?;
        Ok(())
    }

    /// Data of one table.
    pub fn table(&self, id: TableId) -> &TableData {
        &self.tables[id.0]
    }

    /// Total number of rows across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(TableData::len).sum()
    }

    /// Iterate over all `(TableId, &TableData)` pairs.
    pub fn iter_tables(&self) -> impl Iterator<Item = (TableId, &TableData)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i), t))
    }

    /// The distinct non-null values of one column, in first-seen order.
    ///
    /// Served by the columnar store when enabled: for text columns the
    /// dictionary *is* the answer (no hashing, no per-row clones). The
    /// row-major fallback hashes borrowed values and clones only the
    /// distinct ones. Callers that only need the cardinality should use
    /// [`Instance::distinct_count`] instead, which never clones.
    pub fn distinct_values(&self, table: TableId, attr: AttrId) -> Vec<Value> {
        let data = self.table(table);
        if columnar_enabled() {
            return match data.column_store(attr) {
                Some(col) => col.distinct_values(),
                None => Vec::new(),
            };
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in data.rows() {
            let v = &row[attr.0];
            if !v.is_null() && seen.insert(v) {
                out.push(v.clone());
            }
        }
        out
    }

    /// The number of distinct non-null values of one column — the
    /// allocation-free variant of [`Instance::distinct_values`] for the
    /// (common) callers that only need the count.
    pub fn distinct_count(&self, table: TableId, attr: AttrId) -> usize {
        let data = self.table(table);
        if columnar_enabled() {
            return match data.column_store(attr) {
                Some(col) => col.distinct_count(),
                None => 0,
            };
        }
        let mut seen = HashSet::new();
        data.rows()
            .iter()
            .map(|row| &row[attr.0])
            .filter(|v| !v.is_null() && seen.insert(*v))
            .count()
    }

    /// Validate the instance against `constraints`, returning every
    /// violation. An empty result means the instance is valid — the paper
    /// *assumes* source instances are valid w.r.t. their own schemas
    /// (§3.1), and the scenario generators use this to assert it.
    pub fn validate(&self, schema: &Schema, constraints: &ConstraintSet) -> Vec<Violation> {
        let mut out = Vec::new();
        for c in constraints.iter() {
            self.check_constraint(schema, c, &mut out);
        }
        out
    }

    fn check_constraint(&self, schema: &Schema, c: &Constraint, out: &mut Vec<Violation>) {
        match &c.kind {
            ConstraintKind::NotNull { table, attr } => {
                for (i, row) in self.table(*table).rows().iter().enumerate() {
                    if row[attr.0].is_null() {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: format!("NULL in {}", schema.qualified(*table, *attr)),
                        });
                    }
                }
            }
            ConstraintKind::PrimaryKey { table, attrs } | ConstraintKind::Unique { table, attrs } => {
                let is_pk = matches!(c.kind, ConstraintKind::PrimaryKey { .. });
                let mut seen: HashMap<Vec<&Value>, usize> = HashMap::new();
                for (i, row) in self.table(*table).rows().iter().enumerate() {
                    let key: Vec<&Value> = attrs.iter().map(|a| &row[a.0]).collect();
                    if is_pk && key.iter().any(|v| v.is_null()) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: "NULL in primary key".to_owned(),
                        });
                        continue;
                    }
                    // SQL semantics: NULLs never collide under UNIQUE.
                    if !is_pk && key.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if let Some(first) = seen.insert(key, i) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *table,
                            row: i,
                            detail: format!("duplicate key (first at row {first})"),
                        });
                    }
                }
            }
            ConstraintKind::ForeignKey {
                from_table,
                from_attrs,
                to_table,
                to_attrs,
            } => {
                let referenced: HashSet<Vec<&Value>> = self
                    .table(*to_table)
                    .rows()
                    .iter()
                    .map(|row| to_attrs.iter().map(|a| &row[a.0]).collect())
                    .collect();
                for (i, row) in self.table(*from_table).rows().iter().enumerate() {
                    let key: Vec<&Value> = from_attrs.iter().map(|a| &row[a.0]).collect();
                    // SQL MATCH SIMPLE: any NULL component satisfies the FK.
                    if key.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if !referenced.contains(&key) {
                        out.push(Violation {
                            constraint: c.name.clone(),
                            table: *from_table,
                            row: i,
                            detail: format!(
                                "dangling reference into `{}`",
                                schema.table(*to_table).name
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::datatype::DataType;

    fn db() -> crate::database::Database {
        DatabaseBuilder::new("test")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
            })
            .table("tracks", |t| {
                t.attr("record", DataType::Integer)
                    .attr("title", DataType::Text)
                    .foreign_key(&["record"], "records", &["id"])
            })
            .rows("records", vec![vec![1.into(), "A".into()], vec![2.into(), "B".into()]])
            .rows("tracks", vec![vec![1.into(), "x".into()]])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_instance_has_no_violations() {
        let db = db();
        assert!(db.validate().is_empty());
    }

    #[test]
    fn not_null_violation_detected() {
        let mut db = db();
        let t = db.schema.table_id("records").unwrap();
        db.insert_by_name("records", vec![3.into(), Value::Null])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].table, t);
        assert!(v[0].detail.contains("NULL"));
    }

    #[test]
    fn duplicate_pk_detected() {
        let mut db = db();
        db.insert_by_name("records", vec![1.into(), "C".into()])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("duplicate"));
    }

    #[test]
    fn dangling_fk_detected_and_null_fk_tolerated() {
        let mut db = db();
        db.insert_by_name("tracks", vec![99.into(), "y".into()])
            .unwrap();
        db.insert_by_name("tracks", vec![Value::Null, "z".into()])
            .unwrap();
        let v = db.validate();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("dangling"));
    }

    #[test]
    fn unique_ignores_nulls() {
        let db = DatabaseBuilder::new("u")
            .table("t", |t| {
                t.attr("x", DataType::Integer).unique(&["x"])
            })
            .rows("t", vec![vec![Value::Null], vec![Value::Null], vec![1.into()]])
            .build()
            .unwrap();
        assert!(db.validate().is_empty());
    }

    #[test]
    fn insert_checks_shape_and_types() {
        let mut db = db();
        assert!(matches!(
            db.insert_by_name("records", vec![1.into()]),
            Err(Error::RowShape { .. })
        ));
        assert!(matches!(
            db.insert_by_name("records", vec!["notint".into(), "T".into()]),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn from_columns_derives_rows_and_seeds_cache() {
        let id = Column::from_cells(vec![1.into(), 2.into()]);
        let title = Column::from_cells(vec!["A".into(), Value::Null]);
        let data = TableData::from_columns(vec![id.clone(), title.clone()]).unwrap();
        assert_eq!(
            data.rows(),
            &[vec![Value::Int(1), Value::Text("A".into())], vec![Value::Int(2), Value::Null]]
        );
        // The cache is pre-seeded: the store is the very column we loaded.
        assert_eq!(data.column_store(AttrId(0)), Some(&id));
        assert_eq!(data.column_store(AttrId(1)), Some(&title));
        // And it equals what a lazy rebuild from the rows would produce.
        let rebuilt = data.clone();
        assert_eq!(rebuilt.column_store(AttrId(1)), Some(&title));
    }

    #[test]
    fn from_columns_rejects_ragged_lengths() {
        let a = Column::from_cells(vec![1.into(), 2.into()]);
        let b = Column::from_cells(vec![1.into()]);
        assert!(matches!(
            TableData::from_columns(vec![a, b]),
            Err(Error::ColumnShape { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn load_columns_by_name_checks_arity_and_types() {
        let mut database = db();
        // Wrong arity.
        assert!(matches!(
            database.load_columns_by_name("records", vec![Column::from_cells(vec![1.into()])]),
            Err(Error::RowShape { .. })
        ));
        // Wrong type for `id` (text column into an integer attribute).
        assert!(matches!(
            database.load_columns_by_name(
                "records",
                vec![
                    Column::from_cells(vec!["x".into()]),
                    Column::from_cells(vec!["t".into()]),
                ]
            ),
            Err(Error::TypeMismatch { .. })
        ));
        // A valid load replaces the data wholesale and validates clean.
        database
            .load_columns_by_name(
                "records",
                vec![
                    Column::from_cells(vec![7.into(), 8.into()]),
                    Column::from_cells(vec!["X".into(), "Y".into()]),
                ]
            )
            .unwrap();
        database
            .load_columns_by_name(
                "tracks",
                vec![
                    Column::from_cells(vec![7.into()]),
                    Column::from_cells(vec!["x".into()]),
                ]
            )
            .unwrap();
        let t = database.schema.table_id("records").unwrap();
        assert_eq!(database.instance.table(t).len(), 2);
        assert_eq!(
            database.instance.distinct_values(t, AttrId(0)),
            vec![Value::Int(7), Value::Int(8)]
        );
        assert!(database.validate().is_empty());
    }

    #[test]
    fn distinct_values_skips_nulls_and_dupes() {
        let mut db = db();
        db.insert_by_name("tracks", vec![1.into(), "x".into()])
            .unwrap();
        db.insert_by_name("tracks", vec![Value::Null, "w".into()])
            .unwrap();
        let t = db.schema.table_id("tracks").unwrap();
        let d = db.instance.distinct_values(t, AttrId(0));
        assert_eq!(d, vec![Value::Int(1)]);
    }
}
