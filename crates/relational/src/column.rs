//! Typed columnar storage: the profiling hot path's data layout.
//!
//! The row-major [`Vec<Row>`](crate::instance::Row) layout is the right
//! shape for inserts and constraint validation, but the value-fit
//! detector (paper §5.1) is data-volume bound: it reads whole columns,
//! value by value, many times. Walking `Vec<Vec<Value>>` chases a
//! pointer per cell and pays the full `Value` enum tag on every read.
//!
//! A [`Column`] is a contiguous, typed copy of one attribute's cells,
//! built lazily (and at most once) per column:
//!
//! * integer columns become a `Vec<i64>` plus a [`NullBitmap`],
//! * float columns a `Vec<f64>` plus a [`NullBitmap`],
//! * text columns a dictionary-encoded [`TextColumn`] — one arena
//!   `String` holding every *distinct* value, per-row `u32` codes, and
//!   per-code occurrence counts, so downstream statistics can work per
//!   distinct value instead of per row,
//! * boolean columns a `Vec<bool>` plus a [`NullBitmap`],
//! * anything type-mixed (e.g. a float attribute holding both `Int` and
//!   `Float` values, or a deserialized instance that bypassed insert
//!   checking) falls back to a contiguous [`Column::Mixed`] `Vec<Value>`.
//!
//! Cells read back as [`ValueRef`]s — borrowed, `Copy` views that
//! reproduce [`Value`] semantics without materialising owned values.
//!
//! The `EFES_COLUMNAR` environment variable is an escape hatch: set it
//! to `off` (or `0`/`false`/`no`) to keep every consumer on the
//! row-major path. Unparsable values warn once on stderr and leave the
//! columnar path enabled, mirroring the `EFES_THREADS` behaviour of the
//! execution layer.

use crate::instance::Row;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Once;

/// Environment variable gating the columnar storage path. `off`, `0`,
/// `false` and `no` (case-insensitive) disable it; `on`, `1`, `true`,
/// `yes` or unset enable it; anything else warns once and enables it.
pub const COLUMNAR_ENV_VAR: &str = "EFES_COLUMNAR";

/// Whether the columnar path is enabled (see [`COLUMNAR_ENV_VAR`]).
///
/// Read per call so tests and operators can flip the knob at run time;
/// the cost is per *column*, never per value.
pub fn columnar_enabled() -> bool {
    match std::env::var(COLUMNAR_ENV_VAR) {
        Err(_) => true,
        Ok(raw) => match parse_columnar(&raw) {
            Some(enabled) => enabled,
            None => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: unparsable {COLUMNAR_ENV_VAR}={raw:?}; \
                         expected on/off (or 1/0, true/false, yes/no), keeping columnar storage on"
                    );
                });
                true
            }
        },
    }
}

/// Parse an `EFES_COLUMNAR` value; `None` means unparsable.
pub fn parse_columnar(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" | "yes" | "" => Some(true),
        "off" | "0" | "false" | "no" => Some(false),
        _ => None,
    }
}

/// A borrowed, `Copy` view of one cell.
///
/// Mirrors [`Value`] variant-for-variant; [`ValueRef::to_value`]
/// round-trips exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(&'a str),
    /// Boolean.
    Bool(bool),
}

impl<'a> ValueRef<'a> {
    /// View an owned [`Value`].
    pub fn of(v: &'a Value) -> Self {
        match v {
            Value::Null => ValueRef::Null,
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Text(s) => ValueRef::Text(s),
            Value::Bool(b) => ValueRef::Bool(*b),
        }
    }

    /// Materialise an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(i),
            ValueRef::Float(f) => Value::Float(f),
            ValueRef::Text(s) => Value::Text(s.to_owned()),
            ValueRef::Bool(b) => Value::Bool(b),
        }
    }

    /// `true` iff the cell is NULL.
    pub fn is_null(self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Borrow the string payload, if this is a text cell.
    pub fn as_text(self) -> Option<&'a str> {
        match self {
            ValueRef::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integer payload, if this is an integer cell.
    pub fn as_int(self) -> Option<i64> {
        match self {
            ValueRef::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Numeric view: integers and floats promote to `f64`.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(i as f64),
            ValueRef::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Bit-exact cell equality: like `==`, except floats compare by
    /// [`f64::to_bits`], so NaNs equal themselves and `0.0 != -0.0` —
    /// the same total semantics [`Value`]'s `Eq` uses. This is the cell
    /// relation behind [`Column::is_prefix_of`].
    pub fn bit_eq(self, other: ValueRef<'_>) -> bool {
        match (self, other) {
            (ValueRef::Null, ValueRef::Null) => true,
            (ValueRef::Int(a), ValueRef::Int(b)) => a == b,
            (ValueRef::Float(a), ValueRef::Float(b)) => a.to_bits() == b.to_bits(),
            (ValueRef::Text(a), ValueRef::Text(b)) => a == b,
            (ValueRef::Bool(a), ValueRef::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// Render exactly like [`Value::render`].
    pub fn render(self) -> String {
        match self {
            ValueRef::Null => String::new(),
            ValueRef::Int(i) => i.to_string(),
            ValueRef::Float(f) => format!("{f}"),
            ValueRef::Text(s) => s.to_owned(),
            ValueRef::Bool(b) => b.to_string(),
        }
    }
}

/// A packed validity mask: bit `i` set means row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    count: usize,
}

impl NullBitmap {
    /// An all-valid bitmap sized for `len` rows.
    pub fn new(len: usize) -> Self {
        NullBitmap {
            words: vec![0; len.div_ceil(64)],
            count: 0,
        }
    }

    /// Mark row `i` as NULL.
    pub fn set(&mut self, i: usize) {
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
        }
    }

    /// `true` iff row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of NULL rows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` iff the first `n` bits of `self` and `other` agree. Both
    /// bitmaps must cover at least `n` rows.
    fn prefix_eq(&self, other: &NullBitmap, n: usize) -> bool {
        let full = n / 64;
        if self.words[..full] != other.words[..full] {
            return false;
        }
        let rem = n % 64;
        if rem == 0 {
            return true;
        }
        let mask = (1u64 << rem) - 1;
        self.words[full] & mask == other.words[full] & mask
    }
}

/// Sentinel code marking a NULL row in a [`TextColumn`].
pub const NULL_CODE: u32 = u32::MAX;

/// Dictionary-encoded text column: every distinct string is stored once
/// in a shared arena (in first-seen order), rows hold `u32` codes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextColumn {
    /// Per-row dictionary code; [`NULL_CODE`] for NULL rows.
    codes: Vec<u32>,
    /// Occurrences of each dictionary entry.
    counts: Vec<usize>,
    /// Concatenated distinct strings, first-seen order.
    bytes: String,
    /// `dict_len() + 1` byte offsets into `bytes`.
    offsets: Vec<usize>,
    null_count: usize,
}

impl TextColumn {
    fn build_with<'a>(len: usize, get: impl Fn(usize) -> &'a Value) -> Self {
        let mut col = TextColumn {
            codes: Vec::with_capacity(len),
            ..TextColumn::default()
        };
        col.offsets.push(0);
        let mut dict: HashMap<&'a str, u32> = HashMap::new();
        for i in 0..len {
            match get(i) {
                Value::Null => {
                    col.null_count += 1;
                    col.codes.push(NULL_CODE);
                }
                Value::Text(s) => {
                    let code = *dict.entry(s.as_str()).or_insert_with(|| {
                        col.bytes.push_str(s);
                        col.offsets.push(col.bytes.len());
                        col.counts.push(0);
                        (col.offsets.len() - 2) as u32
                    });
                    col.counts[code as usize] += 1;
                    col.codes.push(code);
                }
                other => unreachable!("text column holds {other:?}"),
            }
        }
        col
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Number of distinct non-null strings.
    pub fn dict_len(&self) -> usize {
        self.counts.len()
    }

    /// The dictionary string for `code`.
    pub fn dict_str(&self, code: u32) -> &str {
        let i = code as usize;
        &self.bytes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Occurrences of dictionary entry `code`.
    pub fn dict_count(&self, code: u32) -> usize {
        self.counts[code as usize]
    }

    /// Per-row dictionary codes ([`NULL_CODE`] for NULLs).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Per-code occurrence counts, indexed by code.
    pub fn dict_counts(&self) -> &[usize] {
        &self.counts
    }

    /// Iterate the dictionary in first-seen order.
    pub fn dict_iter(&self) -> impl Iterator<Item = &str> {
        (0..self.dict_len() as u32).map(|c| self.dict_str(c))
    }
}

/// A typed, contiguous copy of one attribute's cells.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// All cells `Int` or NULL.
    Int {
        /// Cell values; NULL rows hold `0`.
        values: Vec<i64>,
        /// Which rows are NULL.
        nulls: NullBitmap,
    },
    /// All cells `Float` or NULL.
    Float {
        /// Cell values; NULL rows hold `0.0`.
        values: Vec<f64>,
        /// Which rows are NULL.
        nulls: NullBitmap,
    },
    /// All cells `Text` or NULL, dictionary-encoded.
    Text(TextColumn),
    /// All cells `Bool` or NULL.
    Bool {
        /// Cell values; NULL rows hold `false`.
        values: Vec<bool>,
        /// Which rows are NULL.
        nulls: NullBitmap,
    },
    /// Type-mixed (or all-NULL, or empty) column: a contiguous copy of
    /// the cells, still an improvement over per-row pointer chasing.
    Mixed(Vec<Value>),
}

/// A column with no rows, for attributes of empty tables.
static EMPTY_COLUMN: Column = Column::Mixed(Vec::new());

impl Column {
    /// An empty column (zero rows).
    pub fn empty() -> &'static Column {
        &EMPTY_COLUMN
    }

    /// Build the typed representation of column `attr` of `rows`.
    pub fn build(rows: &[Row], attr: usize) -> Column {
        Self::build_typed(rows.len(), |i| &rows[i][attr])
            .unwrap_or_else(|| Column::Mixed(rows.iter().map(|r| r[attr].clone()).collect()))
    }

    /// Build the typed representation of an owned column of cells — the
    /// column-major twin of [`Column::build`], used by generators that
    /// produce data column-wise and stream it straight into the store.
    ///
    /// Shares the classify-then-build core with [`Column::build`], so a
    /// column loaded through this path is identical to the one a lazy
    /// rebuild from the derived rows would produce. The type-mixed (or
    /// all-NULL) fallback reuses `cells` without copying.
    pub fn from_cells(cells: Vec<Value>) -> Column {
        match Self::build_typed(cells.len(), |i| &cells[i]) {
            Some(col) => col,
            None => Column::Mixed(cells),
        }
    }

    /// The classify-then-build core shared by [`Column::build`] and
    /// [`Column::from_cells`]: `None` means the cells are type-mixed (or
    /// all-NULL/empty) and the caller should fall back to
    /// [`Column::Mixed`].
    fn build_typed<'a>(len: usize, get: impl Fn(usize) -> &'a Value) -> Option<Column> {
        // First pass: classify. The per-cell work is a discriminant read,
        // so this costs far less than the build it steers.
        let (mut ints, mut floats, mut texts, mut bools) = (0usize, 0usize, 0usize, 0usize);
        for i in 0..len {
            match get(i) {
                Value::Null => {}
                Value::Int(_) => ints += 1,
                Value::Float(_) => floats += 1,
                Value::Text(_) => texts += 1,
                Value::Bool(_) => bools += 1,
            }
        }
        let non_null = ints + floats + texts + bools;
        if non_null == 0 {
            // All-NULL or empty: nothing to type.
            return None;
        }
        if texts == non_null {
            return Some(Column::Text(TextColumn::build_with(len, get)));
        }
        if ints == non_null {
            let mut values = Vec::with_capacity(len);
            let mut nulls = NullBitmap::new(len);
            for i in 0..len {
                match get(i) {
                    Value::Int(v) => values.push(*v),
                    Value::Null => {
                        nulls.set(i);
                        values.push(0);
                    }
                    other => unreachable!("int column holds {other:?}"),
                }
            }
            return Some(Column::Int { values, nulls });
        }
        if floats == non_null {
            let mut values = Vec::with_capacity(len);
            let mut nulls = NullBitmap::new(len);
            for i in 0..len {
                match get(i) {
                    Value::Float(v) => values.push(*v),
                    Value::Null => {
                        nulls.set(i);
                        values.push(0.0);
                    }
                    other => unreachable!("float column holds {other:?}"),
                }
            }
            return Some(Column::Float { values, nulls });
        }
        if bools == non_null {
            let mut values = Vec::with_capacity(len);
            let mut nulls = NullBitmap::new(len);
            for i in 0..len {
                match get(i) {
                    Value::Bool(v) => values.push(*v),
                    Value::Null => {
                        nulls.set(i);
                        values.push(false);
                    }
                    other => unreachable!("bool column holds {other:?}"),
                }
            }
            return Some(Column::Bool { values, nulls });
        }
        None
    }

    /// A short label of the column's typed variant, for error messages.
    pub fn type_label(&self) -> &'static str {
        match self {
            Column::Int { .. } => "integer column",
            Column::Float { .. } => "float column",
            Column::Text(_) => "text column",
            Column::Bool { .. } => "boolean column",
            Column::Mixed(_) => "mixed column",
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Text(t) => t.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// `true` iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Bool { nulls, .. } => nulls.count(),
            Column::Text(t) => t.null_count(),
            Column::Mixed(v) => v.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// The cell at row `i`.
    pub fn value(&self, i: usize) -> ValueRef<'_> {
        match self {
            Column::Int { values, nulls } => {
                if nulls.is_null(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Int(values[i])
                }
            }
            Column::Float { values, nulls } => {
                if nulls.is_null(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Float(values[i])
                }
            }
            Column::Text(t) => {
                let code = t.codes[i];
                if code == NULL_CODE {
                    ValueRef::Null
                } else {
                    ValueRef::Text(t.dict_str(code))
                }
            }
            Column::Bool { values, nulls } => {
                if nulls.is_null(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Bool(values[i])
                }
            }
            Column::Mixed(v) => ValueRef::of(&v[i]),
        }
    }

    /// Iterate all cells in row order.
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter {
            inner: ColumnIterInner::Column { col: self, i: 0 },
        }
    }

    /// Distinct non-null values in first-seen order — the columnar
    /// backend of [`Instance::distinct_values`](crate::Instance::distinct_values).
    ///
    /// For text columns this is a plain dictionary scan (the dictionary
    /// *is* the first-seen distinct set); typed numeric columns hash
    /// machine words instead of `Value`s.
    pub fn distinct_values(&self) -> Vec<Value> {
        match self {
            Column::Text(t) => t.dict_iter().map(|s| Value::Text(s.to_owned())).collect(),
            Column::Int { values, nulls } => {
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) && seen.insert(*v) {
                        out.push(Value::Int(*v));
                    }
                }
                out
            }
            Column::Float { values, nulls } => {
                // `f64::to_bits` keys match `Value`'s float Hash/Eq
                // (both are bit-exact, so NaN payloads and -0.0 vs 0.0
                // stay distinct, exactly as in the row-major path).
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) && seen.insert(v.to_bits()) {
                        out.push(Value::Float(*v));
                    }
                }
                out
            }
            Column::Bool { values, nulls } => {
                let mut seen = [false; 2];
                let mut out = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) && !seen[*v as usize] {
                        seen[*v as usize] = true;
                        out.push(Value::Bool(*v));
                    }
                }
                out
            }
            Column::Mixed(vals) => {
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for v in vals {
                    if !v.is_null() && seen.insert(v) {
                        out.push(v.clone());
                    }
                }
                out
            }
        }
    }

    /// Number of distinct non-null values — the allocation-free
    /// counterpart of [`Column::distinct_values`].
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Text(t) => t.dict_len(),
            Column::Int { values, nulls } => {
                let mut seen = std::collections::HashSet::new();
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| !nulls.is_null(*i) && seen.insert(**v))
                    .count()
            }
            Column::Float { values, nulls } => {
                let mut seen = std::collections::HashSet::new();
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| !nulls.is_null(*i) && seen.insert(v.to_bits()))
                    .count()
            }
            Column::Bool { values, nulls } => {
                let mut seen = [false; 2];
                let mut n = 0;
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) && !seen[*v as usize] {
                        seen[*v as usize] = true;
                        n += 1;
                    }
                }
                n
            }
            Column::Mixed(vals) => {
                let mut seen = std::collections::HashSet::new();
                vals.iter().filter(|v| !v.is_null() && seen.insert(*v)).count()
            }
        }
    }

    /// `true` iff `other`'s first `self.len()` rows equal `self`'s rows
    /// cell for cell (floats bit-exact, as in [`ValueRef::bit_eq`]).
    ///
    /// This is the append detector behind incremental profiling: a
    /// re-uploaded scenario whose every column is a prefix of the new
    /// one only grew, so retained partial profiles can absorb just the
    /// tail rows. Same-variant columns compare structurally — for text
    /// columns the first-seen dictionary discipline makes "row prefix"
    /// equivalent to "codes, offsets and arena bytes are prefixes", so
    /// no per-row string compares are needed. Mismatched variants (e.g.
    /// an all-NULL `Mixed` column later typed by its first real cell)
    /// fall back to a per-cell walk.
    pub fn is_prefix_of(&self, other: &Column) -> bool {
        let n = self.len();
        if n > other.len() {
            return false;
        }
        match (self, other) {
            (
                Column::Int { values: a, nulls: an },
                Column::Int { values: b, nulls: bn },
            ) => a[..] == b[..n] && an.prefix_eq(bn, n),
            (
                Column::Float { values: a, nulls: an },
                Column::Float { values: b, nulls: bn },
            ) => {
                a.iter().zip(&b[..n]).all(|(x, y)| x.to_bits() == y.to_bits())
                    && an.prefix_eq(bn, n)
            }
            (
                Column::Bool { values: a, nulls: an },
                Column::Bool { values: b, nulls: bn },
            ) => a[..] == b[..n] && an.prefix_eq(bn, n),
            (Column::Text(a), Column::Text(b)) => {
                a.codes[..] == b.codes[..n]
                    && a.offsets[..] == b.offsets[..a.offsets.len()]
                    && b.bytes.as_bytes().starts_with(a.bytes.as_bytes())
            }
            (Column::Mixed(a), Column::Mixed(b)) => a[..] == b[..n],
            _ => (0..n).all(|i| self.value(i).bit_eq(other.value(i))),
        }
    }
}

/// Incremental, type-adaptive builder for one [`Column`] — the streaming
/// twin of [`Column::from_cells`].
///
/// [`Column::from_cells`] needs the whole column up front to classify it;
/// a network ingest sees one cell at a time. The builder keeps a typed
/// accumulator that adapts as cells arrive: it starts undecided, commits
/// to the variant of the first non-null cell, and demotes to
/// [`Column::Mixed`] (reconstructing the owned values it has absorbed —
/// once per column, never per cell) the moment a conflicting variant
/// shows up. NULLs are welcome in every state.
///
/// The invariant, pinned by differential tests: for any cell sequence,
/// `builder.finish() == Column::from_cells(cells)` — bit-identical, null
/// bitmaps and dictionary order included. That is what lets an ingested
/// table share profile caches and golden figures with a column-loaded
/// one.
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    len: usize,
    /// Expected row count from [`ColumnBuilder::with_capacity`]; applied
    /// when the first non-null cell commits a typed state.
    reserve_hint: usize,
    state: BuilderState,
}

#[derive(Debug, Default)]
enum BuilderState {
    /// No non-null cell seen yet; `len` nulls are pending replay.
    #[default]
    Undecided,
    Int {
        values: Vec<i64>,
        nulls: NullBitmap,
    },
    Float {
        values: Vec<f64>,
        nulls: NullBitmap,
    },
    Text {
        col: TextColumn,
        /// Owned-key mirror of the arena dictionary: the arena `String`
        /// reallocates as it grows, so codes cannot key off borrowed
        /// slices the way the batch build does.
        dict: HashMap<String, u32>,
    },
    Bool {
        values: Vec<bool>,
        nulls: NullBitmap,
    },
    Mixed(Vec<Value>),
}

/// Extend `nulls` to cover row `i`, marking it NULL if asked. Rows must
/// arrive in order; the finished bitmap is identical to
/// [`NullBitmap::new`]`(len)` plus the same `set` calls.
fn bitmap_push(nulls: &mut NullBitmap, i: usize, is_null: bool) {
    if i.is_multiple_of(64) {
        nulls.words.push(0);
    }
    if is_null {
        nulls.set(i);
    }
}

/// An all-NULL bitmap covering rows `0..len`.
fn all_null_bitmap(len: usize) -> NullBitmap {
    let mut nulls = NullBitmap::new(len);
    for i in 0..len {
        nulls.set(i);
    }
    nulls
}

impl ColumnBuilder {
    /// A builder holding no cells.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder expecting about `rows` cells.
    pub fn with_capacity(rows: usize) -> Self {
        // Capacity lands where the first non-null cell commits a state;
        // until then there is nothing to reserve.
        let mut b = Self::new();
        b.reserve_hint = rows;
        b
    }

    /// Cells absorbed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no cell has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absorb the next cell.
    pub fn push(&mut self, cell: Value) {
        let i = self.len;
        self.len += 1;
        match (&mut self.state, cell) {
            // NULLs keep whatever state we are in.
            (BuilderState::Undecided, Value::Null) => {}
            (BuilderState::Int { values, nulls }, Value::Null) => {
                bitmap_push(nulls, i, true);
                values.push(0);
            }
            (BuilderState::Float { values, nulls }, Value::Null) => {
                bitmap_push(nulls, i, true);
                values.push(0.0);
            }
            (BuilderState::Bool { values, nulls }, Value::Null) => {
                bitmap_push(nulls, i, true);
                values.push(false);
            }
            (BuilderState::Text { col, .. }, Value::Null) => {
                col.null_count += 1;
                col.codes.push(NULL_CODE);
            }
            (BuilderState::Mixed(cells), cell) => cells.push(cell),

            // First non-null cell: commit to its variant, replaying the
            // leading NULLs into the typed accumulator.
            (BuilderState::Undecided, cell) => {
                self.state = Self::commit(i, self.reserve_hint, cell);
            }

            // Matching non-null cells extend the typed accumulator.
            (BuilderState::Int { values, nulls }, Value::Int(v)) => {
                bitmap_push(nulls, i, false);
                values.push(v);
            }
            (BuilderState::Float { values, nulls }, Value::Float(v)) => {
                bitmap_push(nulls, i, false);
                values.push(v);
            }
            (BuilderState::Bool { values, nulls }, Value::Bool(v)) => {
                bitmap_push(nulls, i, false);
                values.push(v);
            }
            (BuilderState::Text { col, dict }, Value::Text(s)) => {
                let code = match dict.get(s.as_str()) {
                    Some(&code) => code,
                    None => {
                        col.bytes.push_str(&s);
                        col.offsets.push(col.bytes.len());
                        col.counts.push(0);
                        let code = (col.offsets.len() - 2) as u32;
                        dict.insert(s, code);
                        code
                    }
                };
                col.counts[code as usize] += 1;
                col.codes.push(code);
            }

            // Conflicting variant: demote to Mixed, once.
            (_, cell) => {
                let mut cells = self.demote(i);
                cells.push(cell);
                self.state = BuilderState::Mixed(cells);
            }
        }
    }

    /// The typed state for the first non-null `cell` arriving at row
    /// `leading_nulls`.
    fn commit(leading_nulls: usize, hint: usize, cell: Value) -> BuilderState {
        let cap = hint.max(leading_nulls + 1);
        let mut nulls = all_null_bitmap(leading_nulls);
        bitmap_push(&mut nulls, leading_nulls, false);
        match cell {
            Value::Int(v) => {
                let mut values = Vec::with_capacity(cap);
                values.resize(leading_nulls, 0);
                values.push(v);
                BuilderState::Int { values, nulls }
            }
            Value::Float(v) => {
                let mut values = Vec::with_capacity(cap);
                values.resize(leading_nulls, 0.0);
                values.push(v);
                BuilderState::Float { values, nulls }
            }
            Value::Bool(v) => {
                let mut values = Vec::with_capacity(cap);
                values.resize(leading_nulls, false);
                values.push(v);
                BuilderState::Bool { values, nulls }
            }
            Value::Text(s) => {
                let mut col = TextColumn {
                    codes: Vec::with_capacity(cap),
                    ..TextColumn::default()
                };
                col.offsets.push(0);
                col.codes.resize(leading_nulls, NULL_CODE);
                col.null_count = leading_nulls;
                col.bytes.push_str(&s);
                col.offsets.push(col.bytes.len());
                col.counts.push(1);
                col.codes.push(0);
                let mut dict = HashMap::new();
                dict.insert(s, 0u32);
                BuilderState::Text { col, dict }
            }
            Value::Null => unreachable!("commit is only called on non-null cells"),
        }
    }

    /// Reconstruct the `rows` cells absorbed so far as owned values — the
    /// one-time cost of demoting a typed accumulator to Mixed.
    fn demote(&mut self, rows: usize) -> Vec<Value> {
        let mut cells = Vec::with_capacity(rows + 1);
        match std::mem::take(&mut self.state) {
            BuilderState::Undecided => cells.resize(rows, Value::Null),
            BuilderState::Int { values, nulls } => {
                for (i, v) in values.into_iter().enumerate() {
                    cells.push(if nulls.is_null(i) { Value::Null } else { Value::Int(v) });
                }
            }
            BuilderState::Float { values, nulls } => {
                for (i, v) in values.into_iter().enumerate() {
                    cells.push(if nulls.is_null(i) { Value::Null } else { Value::Float(v) });
                }
            }
            BuilderState::Bool { values, nulls } => {
                for (i, v) in values.into_iter().enumerate() {
                    cells.push(if nulls.is_null(i) { Value::Null } else { Value::Bool(v) });
                }
            }
            BuilderState::Text { col, .. } => {
                for &code in &col.codes {
                    cells.push(if code == NULL_CODE {
                        Value::Null
                    } else {
                        Value::Text(col.dict_str(code).to_owned())
                    });
                }
            }
            BuilderState::Mixed(existing) => cells = existing,
        }
        cells
    }

    /// Finish the column. Equals `Column::from_cells` over the same cell
    /// sequence, bit for bit.
    pub fn finish(self) -> Column {
        match self.state {
            // All-NULL (or empty) columns have nothing to type — the same
            // Mixed fallback `from_cells` takes.
            BuilderState::Undecided => Column::Mixed(vec![Value::Null; self.len]),
            BuilderState::Int { values, nulls } => Column::Int { values, nulls },
            BuilderState::Float { values, nulls } => Column::Float { values, nulls },
            BuilderState::Bool { values, nulls } => Column::Bool { values, nulls },
            BuilderState::Text { col, .. } => Column::Text(col),
            BuilderState::Mixed(cells) => Column::Mixed(cells),
        }
    }
}

/// Iterator over one column's cells, yielding [`ValueRef`]s in row order.
///
/// Backed either by a typed [`Column`] or, when columnar storage is
/// disabled, directly by the row-major rows — the two backings yield
/// identical sequences.
#[derive(Debug, Clone)]
pub struct ColumnIter<'a> {
    inner: ColumnIterInner<'a>,
}

#[derive(Debug, Clone)]
enum ColumnIterInner<'a> {
    Column { col: &'a Column, i: usize },
    Rows { rows: &'a [Row], attr: usize, i: usize },
}

impl<'a> ColumnIter<'a> {
    /// Iterate column `attr` straight off the row-major rows.
    pub fn over_rows(rows: &'a [Row], attr: usize) -> Self {
        ColumnIter {
            inner: ColumnIterInner::Rows { rows, attr, i: 0 },
        }
    }
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = ValueRef<'a>;

    fn next(&mut self) -> Option<ValueRef<'a>> {
        match &mut self.inner {
            ColumnIterInner::Column { col, i } => {
                if *i >= col.len() {
                    return None;
                }
                let v = col.value(*i);
                *i += 1;
                Some(v)
            }
            ColumnIterInner::Rows { rows, attr, i } => {
                let row = rows.get(*i)?;
                *i += 1;
                Some(ValueRef::of(&row[*attr]))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.inner {
            ColumnIterInner::Column { col, i } => col.len() - i,
            ColumnIterInner::Rows { rows, i, .. } => rows.len() - i,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(values: Vec<Value>) -> Vec<Row> {
        values.into_iter().map(|v| vec![v]).collect()
    }

    #[test]
    fn int_column_round_trips() {
        let r = rows(vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(3)]);
        let c = Column::build(&r, 0);
        assert!(matches!(c, Column::Int { .. }));
        let back: Vec<Value> = c.iter().map(ValueRef::to_value).collect();
        assert_eq!(back, vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(3)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.distinct_values(), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn text_column_dictionary_is_first_seen_order() {
        let r = rows(vec![
            Value::Text("b".into()),
            Value::Text("a".into()),
            Value::Null,
            Value::Text("b".into()),
        ]);
        let c = Column::build(&r, 0);
        let Column::Text(t) = &c else { panic!("expected text column") };
        assert_eq!(t.dict_len(), 2);
        assert_eq!(t.dict_str(0), "b");
        assert_eq!(t.dict_str(1), "a");
        assert_eq!(t.dict_count(0), 2);
        assert_eq!(t.null_count(), 1);
        assert_eq!(
            c.distinct_values(),
            vec![Value::Text("b".into()), Value::Text("a".into())]
        );
        let back: Vec<Value> = c.iter().map(ValueRef::to_value).collect();
        assert_eq!(back[3], Value::Text("b".into()));
        assert!(back[2].is_null());
    }

    #[test]
    fn mixed_numeric_column_falls_back() {
        let r = rows(vec![Value::Int(1), Value::Float(2.5)]);
        let c = Column::build(&r, 0);
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn all_null_column_is_mixed_and_has_no_distincts() {
        let r = rows(vec![Value::Null, Value::Null]);
        let c = Column::build(&r, 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.distinct_count(), 0);
        assert!(c.distinct_values().is_empty());
    }

    #[test]
    fn float_distincts_are_bit_exact() {
        let r = rows(vec![Value::Float(0.0), Value::Float(-0.0), Value::Float(0.0)]);
        let c = Column::build(&r, 0);
        // -0.0 and 0.0 differ under Value's total ordering; the columnar
        // path must agree.
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn bitmap_counts_and_reads() {
        let mut b = NullBitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert!(b.is_null(0) && b.is_null(64) && b.is_null(129));
        assert!(!b.is_null(1) && !b.is_null(128));
    }

    #[test]
    fn columnar_env_parses() {
        assert_eq!(parse_columnar("on"), Some(true));
        assert_eq!(parse_columnar("OFF"), Some(false));
        assert_eq!(parse_columnar(" 0 "), Some(false));
        assert_eq!(parse_columnar("bogus"), None);
    }

    #[test]
    fn from_cells_matches_row_major_build() {
        let shapes: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Null, Value::Int(3)],
            vec![Value::Text("b".into()), Value::Text("a".into()), Value::Null],
            vec![Value::Float(1.5), Value::Null],
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::Int(1), Value::Text("x".into())],
            vec![Value::Null, Value::Null],
            vec![],
        ];
        for cells in shapes {
            let r: Vec<Row> = cells.iter().map(|v| vec![v.clone()]).collect();
            assert_eq!(Column::from_cells(cells), Column::build(&r, 0));
        }
    }

    #[test]
    fn builder_matches_from_cells_across_shapes() {
        let shapes: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Null, Value::Int(3)],
            vec![Value::Null, Value::Null, Value::Int(7)], // leading nulls replayed
            vec![Value::Text("b".into()), Value::Text("a".into()), Value::Text("b".into())],
            vec![Value::Null, Value::Text("x".into()), Value::Null],
            vec![Value::Float(1.5), Value::Null, Value::Float(-2.25)],
            vec![Value::Bool(true), Value::Null, Value::Bool(false)],
            vec![Value::Int(1), Value::Float(2.0)],          // demote Int -> Mixed
            vec![Value::Text("t".into()), Value::Int(9)],    // demote Text -> Mixed
            vec![Value::Null, Value::Bool(true), Value::Text("m".into())],
            vec![Value::Null, Value::Null],
            vec![],
        ];
        for cells in shapes {
            let mut b = ColumnBuilder::with_capacity(cells.len());
            for c in &cells {
                b.push(c.clone());
            }
            assert_eq!(b.len(), cells.len());
            assert_eq!(b.finish(), Column::from_cells(cells));
        }
    }

    #[test]
    fn builder_preserves_nan_bits() {
        // Column's derived PartialEq follows f64 semantics (NaN != NaN),
        // so NaN round-trips are checked at the bit level instead.
        let mut b = ColumnBuilder::new();
        b.push(Value::Float(f64::NAN));
        b.push(Value::Null);
        let col = b.finish();
        let Column::Float { values, nulls } = col else { panic!("expected float column") };
        assert_eq!(values[0].to_bits(), f64::NAN.to_bits());
        assert!(!nulls.is_null(0) && nulls.is_null(1));
    }

    #[test]
    fn builder_bitmap_is_word_exact_across_boundaries() {
        // 130 rows crosses two u64 word boundaries; the incremental
        // bitmap must equal the batch one structurally (PartialEq
        // compares the words vec, so trailing-word discipline matters).
        let cells: Vec<Value> = (0..130)
            .map(|i| if i % 3 == 0 { Value::Null } else { Value::Int(i) })
            .collect();
        let mut b = ColumnBuilder::new();
        for c in &cells {
            b.push(c.clone());
        }
        assert_eq!(b.finish(), Column::from_cells(cells));
    }

    #[test]
    fn prefix_detection_accepts_every_append_shape() {
        let bases: Vec<Vec<Value>> = vec![
            (0..130)
                .map(|i| if i % 3 == 0 { Value::Null } else { Value::Int(i) })
                .collect(),
            vec![Value::Float(1.5), Value::Null, Value::Float(f64::NAN)],
            vec![Value::Text("b".into()), Value::Text("a".into()), Value::Null],
            vec![Value::Bool(true), Value::Null],
            vec![Value::Int(1), Value::Text("x".into())], // stays Mixed
            vec![Value::Null, Value::Null],               // Mixed, may get typed
            vec![],
        ];
        let tails: Vec<Vec<Value>> = vec![
            vec![],
            vec![Value::Null],
            vec![Value::Int(7)],
            vec![Value::Text("a".into()), Value::Text("z".into())],
            vec![Value::Float(2.5)],
            vec![Value::Bool(false)],
        ];
        for base in &bases {
            let a = Column::from_cells(base.clone());
            for tail in &tails {
                let mut cells = base.clone();
                cells.extend(tail.iter().cloned());
                let b = Column::from_cells(cells);
                assert!(
                    a.is_prefix_of(&b),
                    "{} + {} tail rows should be a prefix",
                    a.type_label(),
                    tail.len()
                );
            }
        }
    }

    #[test]
    fn prefix_detection_rejects_mutated_prefixes() {
        let base: Vec<Value> = (0..70)
            .map(|i| if i % 5 == 0 { Value::Null } else { Value::Int(i) })
            .collect();
        let a = Column::from_cells(base.clone());
        // Shorter than the base: not a prefix.
        assert!(!a.is_prefix_of(&Column::from_cells(base[..69].to_vec())));
        // A changed cell inside the prefix.
        let mut edited = base.clone();
        edited[3] = Value::Int(-1);
        edited.push(Value::Int(999));
        assert!(!a.is_prefix_of(&Column::from_cells(edited)));
        // A null flipped to a value (bitmap mismatch, values match at 0).
        let mut nulled = base.clone();
        nulled[0] = Value::Int(0);
        nulled.push(Value::Int(999));
        assert!(!a.is_prefix_of(&Column::from_cells(nulled)));
        // Text: same strings, different order re-keys the dictionary.
        let t1 = Column::from_cells(vec![Value::Text("a".into()), Value::Text("b".into())]);
        let t2 = Column::from_cells(vec![
            Value::Text("b".into()),
            Value::Text("a".into()),
            Value::Text("c".into()),
        ]);
        assert!(!t1.is_prefix_of(&t2));
        // Floats bit-exact: 0.0 is not a prefix of -0.0.
        let f1 = Column::from_cells(vec![Value::Float(0.0)]);
        let f2 = Column::from_cells(vec![Value::Float(-0.0), Value::Float(1.0)]);
        assert!(!f1.is_prefix_of(&f2));
        // NaN equals itself bit-for-bit.
        let n1 = Column::from_cells(vec![Value::Float(f64::NAN)]);
        let n2 = Column::from_cells(vec![Value::Float(f64::NAN), Value::Float(1.0)]);
        assert!(n1.is_prefix_of(&n2));
    }

    #[test]
    fn bit_eq_mirrors_value_total_equality() {
        assert!(ValueRef::Null.bit_eq(ValueRef::Null));
        assert!(ValueRef::Float(f64::NAN).bit_eq(ValueRef::Float(f64::NAN)));
        assert!(!ValueRef::Float(0.0).bit_eq(ValueRef::Float(-0.0)));
        assert!(!ValueRef::Int(1).bit_eq(ValueRef::Float(1.0)));
        assert!(ValueRef::Text("x").bit_eq(ValueRef::Text("x")));
        assert!(!ValueRef::Bool(true).bit_eq(ValueRef::Null));
    }

    #[test]
    fn row_backed_iteration_matches_columnar() {
        let r = rows(vec![Value::Text("x".into()), Value::Null, Value::Text("y".into())]);
        let c = Column::build(&r, 0);
        let a: Vec<Value> = c.iter().map(ValueRef::to_value).collect();
        let b: Vec<Value> = ColumnIter::over_rows(&r, 0).map(ValueRef::to_value).collect();
        assert_eq!(a, b);
    }
}
