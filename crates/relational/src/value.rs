//! Typed relational values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single relational value.
///
/// `Value` is the atom both the profiling statistics (§5.1 of the paper) and
/// the CSG instances (§4.1) operate on. It implements total ordering and
/// hashing — floats are ordered with [`f64::total_cmp`] so values can be used
/// as keys in `BTreeMap`s / `HashMap`s when computing distinct counts,
/// histograms and top-k statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is permitted and ordered after all other floats.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// `true` iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human-readable name of the value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bool(_) => "boolean",
        }
    }

    /// Borrow the string payload, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view of the value: integers and floats promote to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Render the value the way the CSV writer and the report printers do.
    ///
    /// NULL renders as the empty string; text is rendered verbatim.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Rank used to order values of different runtime types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numerics compare numerically so that `Int(1)` and
            // `Float(1.0)` land adjacently in sorted output, but remain
            // distinct values (tie broken by type rank).
            (Int(a), Float(b)) => (*a as f64)
                .total_cmp(b)
                .then(self.type_rank().cmp(&other.type_rank())),
            (Float(a), Int(b)) => a
                .total_cmp(&(*b as f64))
                .then(self.type_rank().cmp(&other.type_rank())),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Text(s) => write!(f, "\"{s}\""),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::Text(String::new()).is_null());
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut values = [Value::Text("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
            Value::Text("a".into())];
        values.sort();
        assert_eq!(values[0], Value::Null);
        assert_eq!(values[values.len() - 1], Value::Text("b".into()));
    }

    #[test]
    fn float_nan_orders_consistently() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        let mut set = HashSet::new();
        set.insert(Value::Float(1.5));
        assert!(set.contains(&Value::Float(1.5)));
        assert!(!set.contains(&Value::Float(2.5)));
    }

    #[test]
    fn mixed_numerics_compare_numerically_but_stay_distinct() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
    }

    #[test]
    fn render_round_trips_simple_values() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Text("x".into()).render(), "x");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Bool(false).render(), "false");
    }

    #[test]
    fn from_option_maps_none_to_null() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(7i64).into();
        assert_eq!(v, Value::Int(7));
    }
}
