//! A database bundles a schema, its constraints and an instance.

use crate::constraint::ConstraintSet;
use crate::error::Result;
use crate::instance::{Instance, Row, Violation};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// A complete database: schema + constraints + instance.
///
/// This is the unit the paper calls a "source database" or "the target
/// database" (§3.1): *"Each source database consists of a relational schema,
/// an instance of this schema, and a set of constraints, which must be
/// satisfied by that instance."*
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    /// The relational schema.
    pub schema: Schema,
    /// Declared (or profiled / reverse-engineered) constraints.
    pub constraints: ConstraintSet,
    /// The data.
    pub instance: Instance,
}

impl Database {
    /// A database with an empty instance.
    pub fn new(schema: Schema, constraints: ConstraintSet) -> Self {
        let instance = Instance::empty(&schema);
        Database {
            schema,
            constraints,
            instance,
        }
    }

    /// The database name (its schema's name).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Insert a row into the named table, with type checking.
    pub fn insert_by_name(&mut self, table: &str, row: Row) -> Result<()> {
        let tid = self
            .schema
            .table_id(table)
            .ok_or_else(|| crate::error::Error::UnknownTable(table.to_owned()))?;
        self.instance.insert(&self.schema, tid, row)
    }

    /// Replace the named table's data with pre-built typed columns (one
    /// per attribute, in declaration order), with arity and type
    /// checking. The columnar cache is seeded with the given columns, so
    /// downstream profiling never rebuilds them — the bulk-load twin of
    /// [`Database::insert_by_name`].
    pub fn load_columns_by_name(
        &mut self,
        table: &str,
        columns: Vec<crate::column::Column>,
    ) -> Result<()> {
        let tid = self
            .schema
            .table_id(table)
            .ok_or_else(|| crate::error::Error::UnknownTable(table.to_owned()))?;
        self.instance.load_columns(&self.schema, tid, columns)
    }

    /// Validate the instance against the declared constraints.
    pub fn validate(&self) -> Vec<Violation> {
        self.instance.validate(&self.schema, &self.constraints)
    }

    /// Assert validity; handy for scenario generators which must produce
    /// locally-consistent sources (paper §3.1 assumes "every instance is
    /// valid wrt. its schema").
    pub fn assert_valid(&self) {
        let v = self.validate();
        assert!(
            v.is_empty(),
            "database `{}` violates its own constraints: {} violations, first: {}",
            self.name(),
            v.len(),
            v[0].detail
        );
    }
}
