//! A dependency-free CSV reader/writer (RFC 4180 subset).
//!
//! The case-study datasets the paper loads from PostgreSQL dumps are, in
//! this reproduction, generated in memory — but a downstream user will want
//! to point EFES at real files. This module gives the substrate a loading
//! path: parse a CSV into typed columns (with [`DataType::infer`]) and write
//! instances back out.

use crate::database::Database;
use crate::datatype::DataType;
use crate::error::{Error, Result};
use crate::instance::Row;
use crate::schema::{Attribute, Schema, Table, TableId};
use crate::value::Value;

/// Parse CSV text into a header and string records.
///
/// Supports quoted fields (`"a,b"`), escaped quotes (`""`), and both `\n`
/// and `\r\n` line endings. The delimiter is `,`.
pub fn parse(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>)> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            line,
                            message: "quote inside unquoted field".to_owned(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // swallow; the following \n terminates the record
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line,
            message: "unterminated quoted field".to_owned(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if records.is_empty() {
        return Err(Error::Csv {
            line: 1,
            message: "empty input".to_owned(),
        });
    }
    let header = records.remove(0);
    let width = header.len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(Error::Csv {
                line: i + 2,
                message: format!("record has {} fields, header has {width}", r.len()),
            });
        }
    }
    Ok((header, records))
}

/// Interpret a raw CSV field as a [`Value`]: empty → NULL, otherwise try
/// integer, then float, then boolean, falling back to text.
pub fn field_to_value(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        // Avoid turning things like "nan" city names into floats.
        if field.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.') {
            return Value::Float(f);
        }
    }
    match field {
        "true" | "TRUE" | "True" => Value::Bool(true),
        "false" | "FALSE" | "False" => Value::Bool(false),
        _ => Value::Text(field.to_owned()),
    }
}

/// Load a CSV into a fresh single-table [`Database`], inferring column
/// types from the data — the "data dump without a schema definition" path
/// of paper §3.1. Constraints can afterwards be reverse-engineered with
/// `efes-profiling`.
pub fn load_table(db_name: &str, table_name: &str, text: &str) -> Result<Database> {
    let (header, records) = parse(text)?;
    let typed: Vec<Vec<Value>> = records
        .iter()
        .map(|r| r.iter().map(|f| field_to_value(f)).collect())
        .collect();

    let n_cols = header.len();
    let mut attrs = Vec::with_capacity(n_cols);
    for (ci, name) in header.iter().enumerate() {
        let dt = DataType::infer(typed.iter().map(|r| &r[ci]));
        attrs.push(Attribute::new(name.clone(), dt));
    }

    let mut schema = Schema::new(db_name);
    let tid = schema.add_table(Table::new(table_name, attrs))?;
    let mut db = Database::new(schema, Default::default());
    for raw in typed {
        // Re-cast every field to the inferred column type so mixed columns
        // (e.g. a numeric column with one stray word) become uniform text.
        let row: Row = raw
            .into_iter()
            .enumerate()
            .map(|(ci, v)| {
                let dt = db.schema.table(tid).attributes[ci].datatype;
                dt.try_cast(&v).unwrap_or(Value::Null)
            })
            .collect();
        db.instance.insert(&db.schema, tid, row)?;
    }
    Ok(db)
}

/// Serialise one table of a database to CSV text.
pub fn write_table(db: &Database, table: TableId) -> String {
    let t = db.schema.table(table);
    let mut out = String::new();
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    out.push_str(
        &t.attributes
            .iter()
            .map(|a| escape(&a.name))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in db.instance.table(table).rows() {
        out.push_str(
            &row.iter()
                .map(|v| escape(&v.render()))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quoted_fields_and_crlf() {
        let (h, r) = parse("a,b\r\n\"x,y\",\"he said \"\"hi\"\"\"\r\n1,2\r\n").unwrap();
        assert_eq!(h, vec!["a", "b"]);
        assert_eq!(r[0], vec!["x,y", "he said \"hi\""]);
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn rejects_ragged_records() {
        assert!(matches!(parse("a,b\n1\n"), Err(Error::Csv { line: 2, .. })));
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse("a\n\"oops\n").is_err());
    }

    #[test]
    fn field_typing() {
        assert_eq!(field_to_value(""), Value::Null);
        assert_eq!(field_to_value("42"), Value::Int(42));
        assert_eq!(field_to_value("4.5"), Value::Float(4.5));
        assert_eq!(field_to_value("4:43"), Value::Text("4:43".into()));
        assert_eq!(field_to_value("true"), Value::Bool(true));
    }

    #[test]
    fn load_infers_types_and_round_trips() {
        let text = "id,title,duration\n1,Sweet Home Alabama,4:43\n2,I Need You,6:55\n";
        let db = load_table("t", "tracks", text).unwrap();
        let tid = db.schema.table_id("tracks").unwrap();
        let t = db.schema.table(tid);
        assert_eq!(t.attributes[0].datatype, DataType::Integer);
        assert_eq!(t.attributes[2].datatype, DataType::Text);
        assert_eq!(db.instance.table(tid).len(), 2);

        let written = write_table(&db, tid);
        let reloaded = load_table("t", "tracks", &written).unwrap();
        assert_eq!(reloaded.instance, db.instance);
    }

    #[test]
    fn mixed_column_becomes_text() {
        let text = "x\n1\nhello\n";
        let db = load_table("t", "m", text).unwrap();
        let tid = db.schema.table_id("m").unwrap();
        assert_eq!(
            db.schema.table(tid).attributes[0].datatype,
            DataType::Text
        );
        assert_eq!(
            db.instance.table(tid).rows()[0][0],
            Value::Text("1".into())
        );
    }

    #[test]
    fn empty_fields_become_null() {
        let text = "a,b\n1,\n,2\n";
        let db = load_table("t", "n", text).unwrap();
        let tid = db.schema.table_id("n").unwrap();
        assert!(db.instance.table(tid).rows()[0][1].is_null());
        assert!(db.instance.table(tid).rows()[1][0].is_null());
    }
}
