//! A minimal, defensive HTTP/1.1 reader and writer over `std` I/O.
//!
//! This is not a general HTTP implementation — it reads exactly the
//! request shapes the estimation service serves (a method, a path, a
//! handful of headers, an optional `Content-Length` body) under hard
//! size limits, and it must **never panic** on malformed input: every
//! deviation maps to a [`ParseError`] that the server turns into a
//! `400`, `413` or `408` response. Bodies are raw bytes — UTF-8 and
//! JSON validity are the router's concern, not the transport's.

use std::io::{self, BufRead, Write};

/// Size limits enforced while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line (`GET /path HTTP/1.1`).
    pub max_request_line: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Most accepted header lines.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body on ordinary endpoints.
    pub max_body: usize,
    /// Largest accepted body on `POST /scenarios` — uploads carry whole
    /// table payloads, so they get their own (much larger) cap.
    pub max_upload_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
            max_upload_body: 64 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/estimate`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ParseError {
    /// The bytes violate the protocol — answer `400 Bad Request`.
    BadRequest(String),
    /// A limit in [`Limits`] was exceeded — answer `413 Content Too Large`.
    TooLarge(String),
    /// The peer closed the connection before sending a full request.
    ConnectionClosed,
    /// The underlying socket failed (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadRequest(m) => write!(f, "bad request: {m}"),
            ParseError::TooLarge(m) => write!(f, "too large: {m}"),
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one `\n`-terminated line of at most `max` bytes (strips the
/// trailing `\r\n` or `\n`). Refuses longer lines without reading them
/// to completion, so a hostile peer cannot make us buffer unbounded
/// data.
fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
    what: &str,
) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Err(ParseError::ConnectionClosed);
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > max + 2 {
            return Err(ParseError::TooLarge(format!("{what} exceeds {max} bytes")));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| ParseError::BadRequest(format!("{what} is not valid UTF-8")))
}

/// Read and parse one request from `reader` under `limits`.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    let request_line = read_line_bounded(reader, limits.max_request_line, "request line")?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest(format!("invalid method {method:?}")));
    }
    if !path.starts_with('/') {
        return Err(ParseError::BadRequest(format!(
            "request target {path:?} is not an absolute path"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(reader, limits.max_header_line, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!(
                "header line {line:?} has no colon"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!(
                "invalid header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    if let Some(raw) = request.header("content-length") {
        let length: usize = raw.parse().map_err(|_| {
            ParseError::BadRequest(format!("invalid content-length {raw:?}"))
        })?;
        // Scenario uploads carry whole table payloads; everything else
        // is a small JSON request. The cap is chosen by route so an
        // oversized estimate request cannot hide behind the upload cap.
        let max_body = if request.method == "POST" && request.path == "/scenarios" {
            limits.max_upload_body
        } else {
            limits.max_body
        };
        if length > max_body {
            return Err(ParseError::TooLarge(format!(
                "body of {length} bytes exceeds limit of {max_body}"
            )));
        }
        let mut body = vec![0u8; length];
        io::Read::read_exact(reader, &mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ParseError::ConnectionClosed
            } else {
                ParseError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        write_json_string(message, &mut body);
        body.push('}');
        Response::json(status, body.into_bytes())
    }

    /// Append a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.to_owned(), value.into()));
        self
    }
}

/// Escape `s` into `out` as a JSON string literal (with quotes).
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialise `response` to `writer` as an HTTP/1.1 response with
/// `Connection: close` semantics (the server handles one request per
/// connection).
pub fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get_request() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("localhost"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(b"POST /estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let r = parse(b"GET / HTTP/1.1\nhost: x\n\n").unwrap();
        assert_eq!(r.path, "/");
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::BadRequest(_))),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn truncated_requests_read_as_connection_closed() {
        for raw in [&b""[..], b"GET /x HT", b"GET /x HTTP/1.1\r\nhost: x"] {
            assert!(matches!(parse(raw), Err(ParseError::ConnectionClosed)));
        }
    }

    #[test]
    fn truncated_body_reads_as_connection_closed() {
        let raw = b"POST /estimate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn invalid_content_length_is_a_bad_request() {
        for cl in ["ten", "-5", "1e3", ""] {
            let raw = format!("POST /e HTTP/1.1\r\ncontent-length: {cl}\r\n\r\n");
            assert!(
                matches!(parse(raw.as_bytes()), Err(ParseError::BadRequest(_))),
                "content-length {cl:?}"
            );
        }
    }

    #[test]
    fn oversized_parts_are_too_large() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));

        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(9000));
        assert!(matches!(
            parse(long_header.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));

        let big_body = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            2 * 1024 * 1024
        );
        assert!(matches!(
            parse(big_body.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
    }

    #[test]
    fn upload_route_gets_its_own_body_cap() {
        // Over the ordinary cap but under the upload cap: rejected on
        // /estimate, admitted (as a length) on POST /scenarios.
        let mid = 2 * 1024 * 1024;
        let estimate = format!("POST /estimate HTTP/1.1\r\ncontent-length: {mid}\r\n\r\n");
        assert!(matches!(
            parse(estimate.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
        let upload = format!("POST /scenarios HTTP/1.1\r\ncontent-length: {mid}\r\n\r\n");
        // Body bytes never arrive, so the accepted length reads as a
        // truncated request — the point is it got past the size check.
        assert!(matches!(
            parse(upload.as_bytes()),
            Err(ParseError::ConnectionClosed)
        ));
        // The upload cap is still a cap.
        let huge = format!(
            "POST /scenarios HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            128 * 1024 * 1024
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
        // GET /scenarios does not get the upload cap.
        let get = format!("GET /scenarios HTTP/1.1\r\ncontent-length: {mid}\r\n\r\n");
        assert!(matches!(parse(get.as_bytes()), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn non_utf8_bytes_in_head_are_bad_requests() {
        assert!(matches!(
            parse(b"GET /\xff HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn non_utf8_body_is_accepted_at_the_transport() {
        let mut raw = b"POST /e HTTP/1.1\r\ncontent-length: 3\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0xff, 0xfe, 0x00]);
        let r = parse(&raw).unwrap();
        assert_eq!(r.body, vec![0xff, 0xfe, 0x00]);
    }

    #[test]
    fn responses_serialise_with_length_and_close() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{}".as_bytes().to_vec())
            .with_header("retry-after", "1");
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_bodies_escape_json() {
        let resp = Response::error(400, "bad \"quote\"\nline");
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            "{\"error\":\"bad \\\"quote\\\"\\nline\"}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    proptest! {
        /// The cardinal transport property: arbitrary bytes never panic
        /// the parser — every input maps to Ok or a typed error.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = parse(&bytes);
        }

        /// Any strict prefix of a well-formed request reads as an error
        /// (usually `ConnectionClosed`), never as a bogus request.
        #[test]
        fn truncated_requests_never_parse(
            path in "[a-z/]{1,30}",
            body in proptest::collection::vec(any::<u8>(), 0..200),
            cut_seed in any::<usize>(),
        ) {
            let mut raw = format!(
                "POST /{path} HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n",
                body.len()
            ).into_bytes();
            raw.extend_from_slice(&body);
            let cut = cut_seed % raw.len(); // strictly shorter than raw
            prop_assert!(parse(&raw[..cut]).is_err());
        }

        /// Oversized header values are refused as `TooLarge` without
        /// buffering the line.
        #[test]
        fn oversized_header_values_are_too_large(extra in 200usize..4000) {
            let raw = format!(
                "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
                "v".repeat(8 * 1024 + extra)
            );
            prop_assert!(matches!(parse(raw.as_bytes()), Err(ParseError::TooLarge(_))));
        }

        /// Unparsable content-length values are `BadRequest`, not a
        /// crash or a silently empty body.
        #[test]
        fn non_numeric_content_length_is_a_bad_request(cl in "[a-zA-Z.+-]{1,12}") {
            let raw = format!("POST /e HTTP/1.1\r\ncontent-length: {cl}\r\n\r\n");
            prop_assert!(matches!(parse(raw.as_bytes()), Err(ParseError::BadRequest(_))));
        }

        /// Bodies are transported verbatim — any byte sequence,
        /// including invalid UTF-8, survives the read intact.
        #[test]
        fn bodies_round_trip_verbatim(body in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut raw = format!(
                "POST /estimate HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                body.len()
            ).into_bytes();
            raw.extend_from_slice(&body);
            let request = parse(&raw).unwrap();
            prop_assert_eq!(request.body, body);
        }
    }
}
