//! The service's metrics registry, rendered in the Prometheus text
//! exposition format at `GET /metrics`.
//!
//! Everything is plain `std` atomics: monotone counters for request and
//! outcome totals, gauges sampled at scrape time (queue depth, cache
//! entries), and fixed-bucket histograms for per-stage estimation
//! latency fed from the pipeline's own [`PipelineTimings`] — the same
//! numbers the repro binary prints, now scrapeable from a long-running
//! server.
//!
//! [`PipelineTimings`]: efes::PipelineTimings

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Histogram bucket upper bounds, in milliseconds. Chosen to straddle
/// the observed per-stage range: sub-millisecond mapping passes up to
/// multi-second value-module scans on the paper-size scenarios.
const BUCKET_BOUNDS_MS: [f64; 10] = [
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 2500.0, 10_000.0,
];

/// A fixed-bucket latency histogram (milliseconds).
#[derive(Debug, Default, Clone)]
struct Histogram {
    /// Cumulative counts per bucket in [`BUCKET_BOUNDS_MS`] order,
    /// plus the implicit `+Inf` bucket at the end.
    counts: [u64; BUCKET_BOUNDS_MS.len() + 1],
    sum_ms: f64,
    total: u64,
}

impl Histogram {
    fn observe(&mut self, ms: f64) {
        let bucket = BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.counts[bucket] += 1;
        self.sum_ms += ms;
        self.total += 1;
    }
}

/// Counter indices for [`Metrics::requests_total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /estimate`
    Estimate,
    /// `POST /match`
    Match,
    /// `GET /scenarios`
    Scenarios,
    /// `POST /scenarios` and `DELETE /scenarios/{name}`
    Ingest,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, bad requests, …).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Estimate,
        Endpoint::Match,
        Endpoint::Scenarios,
        Endpoint::Ingest,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    fn label(self) -> &'static str {
        match self {
            Endpoint::Estimate => "estimate",
            Endpoint::Match => "match",
            Endpoint::Scenarios => "scenarios",
            Endpoint::Ingest => "ingest",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Estimate => 0,
            Endpoint::Match => 1,
            Endpoint::Scenarios => 2,
            Endpoint::Ingest => 3,
            Endpoint::Healthz => 4,
            Endpoint::Metrics => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Gauges sampled by the server at scrape time and passed to
/// [`Metrics::render`] — values owned by other subsystems (the worker
/// pool, the per-scenario profile caches).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sampled {
    /// Jobs waiting in the bounded queue.
    pub queue_depth: usize,
    /// The queue's capacity bound.
    pub queue_capacity: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Worker threads.
    pub workers: usize,
    /// Profile-cache entries resident across all scenario caches.
    pub cache_entries: usize,
    /// Cumulative profile-cache hits across all scenario caches.
    pub cache_hits: u64,
    /// Cumulative profile-cache misses across all scenario caches.
    pub cache_misses: u64,
    /// Profile-cache entries evicted to enforce the size bound.
    pub cache_evictions: u64,
    /// Approximate bytes of uploaded scenarios resident in the dynamic
    /// registry.
    pub ingest_resident_bytes: u64,
    /// The configured ingest budget in bytes.
    pub ingest_budget_bytes: u64,
    /// Compiled-in scenarios in the registry.
    pub scenarios_static: usize,
    /// Uploaded scenarios currently resident.
    pub scenarios_uploaded: usize,
}

/// The registry: counters the request path bumps, histograms the job
/// path feeds, and a renderer for the exposition format.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 7],
    /// Completed estimates (`200`).
    pub estimates_ok: AtomicU64,
    /// Completed schema-match requests (`200`).
    pub matches_ok: AtomicU64,
    /// Requests shed because the queue was full (`429`).
    pub rejected_queue_full: AtomicU64,
    /// Requests whose deadline expired before completion (`503`).
    pub deadline_expired: AtomicU64,
    /// Estimation jobs skipped because their caller had already given up.
    pub jobs_abandoned: AtomicU64,
    /// Malformed requests answered `400`.
    pub bad_requests: AtomicU64,
    /// Oversized requests answered `413`.
    pub too_large: AtomicU64,
    /// Unknown paths/methods answered `404`/`405`.
    pub not_found: AtomicU64,
    /// Estimation failures answered `500`.
    pub estimate_errors: AtomicU64,
    /// Scenario uploads accepted as new registry entries (`201`).
    pub ingests_ok: AtomicU64,
    /// Scenario uploads rejected (`400`/`409`/`413`).
    pub ingests_rejected: AtomicU64,
    /// Uploads that deduplicated onto an existing entry (`200`).
    pub ingests_deduplicated: AtomicU64,
    /// Uploaded scenarios evicted to fit the ingest budget.
    pub ingests_evicted: AtomicU64,
    /// Uploaded scenarios removed via `DELETE /scenarios/{name}`.
    pub ingests_deleted: AtomicU64,
    /// Uploads accepted as in-place row extensions of an existing
    /// uploaded scenario (`200`, status `"extended"`).
    pub ingests_extended: AtomicU64,
    /// Extension uploads whose profiles were refreshed incrementally
    /// from retained partial states instead of re-profiled from scratch.
    pub profile_deltas: AtomicU64,
    /// Appended rows absorbed by those incremental profile refreshes.
    pub profile_delta_rows: AtomicU64,
    /// Panics caught at an isolation boundary (estimation job or
    /// connection handler) without taking the server down.
    pub panics_recovered: AtomicU64,
    /// Estimation runs that aborted cooperatively, keyed by the pipeline
    /// stage that observed the cancellation.
    cancelled_in_stage: Mutex<BTreeMap<String, u64>>,
    /// Worker time (microseconds) handed back by cooperative aborts:
    /// per cancelled run, the mean uncancelled estimate latency minus
    /// the time the run actually held a worker.
    reclaimed_micros: AtomicU64,
    /// Per-stage latency histograms, keyed by pipeline stage name.
    stage_latency: Mutex<BTreeMap<String, Histogram>>,
    /// End-to-end estimate latency (queue wait + execution).
    request_latency: Mutex<Histogram>,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request against `endpoint`.
    pub fn count_request(&self, endpoint: Endpoint) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests counted against `endpoint` so far.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()].load(Ordering::Relaxed)
    }

    /// Record one pipeline stage's wall-clock time.
    pub fn observe_stage(&self, stage: &str, ms: f64) {
        let mut stages = self.stage_latency.lock().expect("metrics poisoned");
        stages.entry(stage.to_owned()).or_default().observe(ms);
    }

    /// Record one estimate's end-to-end latency.
    pub fn observe_request_latency(&self, ms: f64) {
        self.request_latency
            .lock()
            .expect("metrics poisoned")
            .observe(ms);
    }

    /// Count one cooperative abort against the stage that observed it.
    pub fn count_cancelled_stage(&self, stage: &str) {
        let mut stages = self.cancelled_in_stage.lock().expect("metrics poisoned");
        *stages.entry(stage.to_owned()).or_insert(0) += 1;
    }

    /// Cooperative aborts observed in `stage` so far (for tests).
    pub fn cancelled_in_stage(&self, stage: &str) -> u64 {
        self.cancelled_in_stage
            .lock()
            .expect("metrics poisoned")
            .get(stage)
            .copied()
            .unwrap_or(0)
    }

    /// Credit `micros` of worker time reclaimed by a cooperative abort.
    pub fn add_reclaimed_micros(&self, micros: u64) {
        self.reclaimed_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total worker microseconds reclaimed so far (for tests).
    pub fn reclaimed_micros(&self) -> u64 {
        self.reclaimed_micros.load(Ordering::Relaxed)
    }

    /// Mean end-to-end latency of completed estimates in milliseconds,
    /// or `None` before the first completion. Used as the baseline when
    /// crediting reclaimed worker time.
    pub fn mean_request_latency_ms(&self) -> Option<f64> {
        let latency = self.request_latency.lock().expect("metrics poisoned");
        (latency.total > 0).then(|| latency.sum_ms / latency.total as f64)
    }

    /// Render the exposition text, folding in the `sampled` gauges.
    pub fn render(&self, sampled: &Sampled) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP efes_requests_total Requests received, by endpoint.\n");
        out.push_str("# TYPE efes_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "efes_requests_total{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                self.requests(endpoint)
            );
        }

        let counters: [(&str, &str, u64); 18] = [
            (
                "efes_estimates_ok_total",
                "Estimates completed successfully.",
                self.estimates_ok.load(Ordering::Relaxed),
            ),
            (
                "efes_matches_ok_total",
                "Schema-match requests completed successfully.",
                self.matches_ok.load(Ordering::Relaxed),
            ),
            (
                "efes_rejected_total",
                "Estimate requests shed with 429 because the queue was full.",
                self.rejected_queue_full.load(Ordering::Relaxed),
            ),
            (
                "efes_deadline_expired_total",
                "Estimate requests answered 503 because their deadline expired.",
                self.deadline_expired.load(Ordering::Relaxed),
            ),
            (
                "efes_jobs_abandoned_total",
                "Queued jobs skipped because the caller had given up.",
                self.jobs_abandoned.load(Ordering::Relaxed),
            ),
            (
                "efes_bad_requests_total",
                "Malformed requests answered 400.",
                self.bad_requests.load(Ordering::Relaxed),
            ),
            (
                "efes_too_large_total",
                "Oversized requests answered 413.",
                self.too_large.load(Ordering::Relaxed),
            ),
            (
                "efes_not_found_total",
                "Requests for unknown paths or methods.",
                self.not_found.load(Ordering::Relaxed),
            ),
            (
                "efes_estimate_errors_total",
                "Estimation failures answered 500.",
                self.estimate_errors.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_ok_total",
                "Scenario uploads accepted as new registry entries.",
                self.ingests_ok.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_rejected_total",
                "Scenario uploads rejected (bad document, name conflict, over budget).",
                self.ingests_rejected.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_deduplicated_total",
                "Uploads that matched an existing entry's content fingerprint.",
                self.ingests_deduplicated.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_evicted_total",
                "Uploaded scenarios evicted to fit the ingest budget.",
                self.ingests_evicted.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_deleted_total",
                "Uploaded scenarios removed by DELETE.",
                self.ingests_deleted.load(Ordering::Relaxed),
            ),
            (
                "efes_ingest_extended_total",
                "Uploads accepted as in-place row extensions of an existing uploaded scenario.",
                self.ingests_extended.load(Ordering::Relaxed),
            ),
            (
                "efes_profile_delta_total",
                "Profiles refreshed incrementally from retained partial states on extension uploads.",
                self.profile_deltas.load(Ordering::Relaxed),
            ),
            (
                "efes_profile_delta_rows_total",
                "Appended rows absorbed by incremental profile refreshes.",
                self.profile_delta_rows.load(Ordering::Relaxed),
            ),
            (
                "efes_panics_recovered_total",
                "Panics caught at an isolation boundary without taking the server down.",
                self.panics_recovered.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }

        out.push_str(
            "# HELP efes_cancelled_in_stage_total Estimates aborted cooperatively, by the stage that observed the cancellation.\n",
        );
        out.push_str("# TYPE efes_cancelled_in_stage_total counter\n");
        {
            let stages = self.cancelled_in_stage.lock().expect("metrics poisoned");
            for (stage, count) in stages.iter() {
                let _ = writeln!(
                    out,
                    "efes_cancelled_in_stage_total{{stage=\"{stage}\"}} {count}"
                );
            }
        }

        out.push_str(
            "# HELP efes_worker_seconds_reclaimed_total Worker time handed back by cooperative aborts (mean uncancelled latency minus time actually held).\n",
        );
        out.push_str("# TYPE efes_worker_seconds_reclaimed_total counter\n");
        let _ = writeln!(
            out,
            "efes_worker_seconds_reclaimed_total {}",
            self.reclaimed_micros.load(Ordering::Relaxed) as f64 / 1e6
        );

        out.push_str(
            "# HELP efes_fault_injected_total Faults injected by the EFES_FAULTS harness, by site and mode.\n",
        );
        out.push_str("# TYPE efes_fault_injected_total counter\n");
        for ((site, mode), count) in efes_exec::fault::injected_counters() {
            let _ = writeln!(
                out,
                "efes_fault_injected_total{{site=\"{site}\",mode=\"{mode}\"}} {count}"
            );
        }

        let (shard_columns, shard_chunks) = efes_profiling::shard_counters();
        let (memo_hits, memo_misses) = efes_csg::eval_memo_counters();
        for (name, help, value) in [
            (
                "efes_profile_shard_columns_total",
                "Columns profiled via the sharded monoid path (more than one chunk).",
                shard_columns,
            ),
            (
                "efes_profile_shard_chunks_total",
                "Chunks profiled concurrently by the sharded monoid path.",
                shard_chunks,
            ),
            (
                "efes_csg_eval_memo_hits_total",
                "CSG expression-count evaluations served from the per-instance memo.",
                memo_hits,
            ),
            (
                "efes_csg_eval_memo_misses_total",
                "CSG expression-count evaluations computed fresh (memo misses).",
                memo_misses,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }

        let gauges: [(&str, &str, u64); 12] = [
            (
                "efes_queue_depth",
                "Jobs waiting in the bounded queue.",
                sampled.queue_depth as u64,
            ),
            (
                "efes_queue_capacity",
                "Capacity bound of the job queue.",
                sampled.queue_capacity as u64,
            ),
            (
                "efes_jobs_in_flight",
                "Jobs currently executing.",
                sampled.in_flight as u64,
            ),
            (
                "efes_workers",
                "Worker threads in the pool.",
                sampled.workers as u64,
            ),
            (
                "efes_profile_cache_entries",
                "Profiles resident across all scenario caches.",
                sampled.cache_entries as u64,
            ),
            (
                "efes_profile_cache_hits_total",
                "Profile lookups served from memory.",
                sampled.cache_hits,
            ),
            (
                "efes_profile_cache_misses_total",
                "Profile lookups that computed a fresh profile.",
                sampled.cache_misses,
            ),
            (
                "efes_profile_cache_evictions_total",
                "Profiles evicted to enforce the cache size bound.",
                sampled.cache_evictions,
            ),
            (
                "efes_ingest_resident_bytes",
                "Approximate bytes of uploaded scenarios resident in memory.",
                sampled.ingest_resident_bytes,
            ),
            (
                "efes_ingest_budget_bytes",
                "Configured ingest budget in bytes.",
                sampled.ingest_budget_bytes,
            ),
            (
                "efes_scenarios_static",
                "Compiled-in scenarios in the registry.",
                sampled.scenarios_static as u64,
            ),
            (
                "efes_scenarios_uploaded",
                "Uploaded scenarios currently resident.",
                sampled.scenarios_uploaded as u64,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }

        out.push_str(
            "# HELP efes_stage_latency_ms Wall-clock time of each pipeline stage per estimate.\n",
        );
        out.push_str("# TYPE efes_stage_latency_ms histogram\n");
        {
            let stages = self.stage_latency.lock().expect("metrics poisoned");
            for (stage, histogram) in stages.iter() {
                render_histogram(
                    &mut out,
                    "efes_stage_latency_ms",
                    &format!("stage=\"{stage}\","),
                    histogram,
                );
            }
        }

        out.push_str(
            "# HELP efes_request_latency_ms End-to-end estimate latency (queue wait + execution).\n",
        );
        out.push_str("# TYPE efes_request_latency_ms histogram\n");
        render_histogram(
            &mut out,
            "efes_request_latency_ms",
            "",
            &self.request_latency.lock().expect("metrics poisoned").clone(),
        );

        out
    }
}

fn render_histogram(out: &mut String, name: &str, label_prefix: &str, histogram: &Histogram) {
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS_MS.iter().enumerate() {
        cumulative += histogram.counts[i];
        let _ = writeln!(out, "{name}_bucket{{{label_prefix}le=\"{bound}\"}} {cumulative}");
    }
    cumulative += histogram.counts[BUCKET_BOUNDS_MS.len()];
    let _ = writeln!(out, "{name}_bucket{{{label_prefix}le=\"+Inf\"}} {cumulative}");
    let bare = label_prefix.trim_end_matches(',');
    let labels = if bare.is_empty() {
        String::new()
    } else {
        format!("{{{bare}}}")
    };
    let _ = writeln!(out, "{name}_sum{labels} {sum}", sum = histogram.sum_ms);
    let _ = writeln!(out, "{name}_count{labels} {count}", count = histogram.total);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_render() {
        let m = Metrics::new();
        m.count_request(Endpoint::Estimate);
        m.count_request(Endpoint::Estimate);
        m.count_request(Endpoint::Healthz);
        m.count_request(Endpoint::Match);
        m.matches_ok.fetch_add(1, Ordering::Relaxed);
        m.rejected_queue_full.fetch_add(3, Ordering::Relaxed);
        m.observe_stage("values", 12.0);
        m.observe_stage("values", 800.0);
        m.observe_stage("mapping", 0.2);
        m.observe_request_latency(42.0);
        m.count_request(Endpoint::Ingest);
        m.ingests_ok.fetch_add(1, Ordering::Relaxed);
        m.ingests_evicted.fetch_add(2, Ordering::Relaxed);
        m.panics_recovered.fetch_add(1, Ordering::Relaxed);
        m.ingests_extended.fetch_add(1, Ordering::Relaxed);
        m.profile_deltas.fetch_add(2, Ordering::Relaxed);
        m.profile_delta_rows.fetch_add(500, Ordering::Relaxed);
        m.count_cancelled_stage("values");
        m.count_cancelled_stage("values");
        m.add_reclaimed_micros(1_500_000);
        let text = m.render(&Sampled {
            queue_depth: 2,
            queue_capacity: 8,
            in_flight: 1,
            workers: 4,
            cache_entries: 10,
            cache_hits: 100,
            cache_misses: 20,
            cache_evictions: 5,
            ingest_resident_bytes: 4096,
            ingest_budget_bytes: 65536,
            scenarios_static: 7,
            scenarios_uploaded: 1,
        });
        assert!(text.contains("efes_requests_total{endpoint=\"estimate\"} 2"));
        assert!(text.contains("efes_requests_total{endpoint=\"healthz\"} 1"));
        assert!(text.contains("efes_requests_total{endpoint=\"match\"} 1"));
        assert!(text.contains("efes_matches_ok_total 1"));
        assert!(text.contains("efes_rejected_total 3"));
        assert!(text.contains("efes_requests_total{endpoint=\"ingest\"} 1"));
        assert!(text.contains("efes_ingest_ok_total 1"));
        assert!(text.contains("efes_ingest_evicted_total 2"));
        assert!(text.contains("efes_ingest_resident_bytes 4096"));
        assert!(text.contains("efes_ingest_budget_bytes 65536"));
        assert!(text.contains("efes_scenarios_uploaded 1"));
        assert!(text.contains("efes_queue_depth 2"));
        assert!(text.contains("efes_queue_capacity 8"));
        assert!(text.contains("efes_profile_cache_hits_total 100"));
        assert!(text.contains("efes_stage_latency_ms_bucket{stage=\"values\",le=\"25\"} 1"));
        assert!(text.contains("efes_stage_latency_ms_bucket{stage=\"values\",le=\"+Inf\"} 2"));
        assert!(text.contains("efes_stage_latency_ms_count{stage=\"values\"} 2"));
        assert!(text.contains("efes_stage_latency_ms_count{stage=\"mapping\"} 1"));
        assert!(text.contains("efes_request_latency_ms_count 1"));
        assert!(text.contains("efes_request_latency_ms_sum 42"));
        assert!(text.contains("efes_panics_recovered_total 1"));
        assert!(text.contains("efes_cancelled_in_stage_total{stage=\"values\"} 2"));
        assert!(text.contains("efes_worker_seconds_reclaimed_total 1.5"));
        assert!(text.contains("# TYPE efes_fault_injected_total counter"));
        assert!(text.contains("efes_ingest_extended_total 1"));
        assert!(text.contains("efes_profile_delta_total 2"));
        assert!(text.contains("efes_profile_delta_rows_total 500"));
        assert!(text.contains("# TYPE efes_profile_shard_columns_total counter"));
        assert!(text.contains("# TYPE efes_profile_shard_chunks_total counter"));
        assert_eq!(m.cancelled_in_stage("values"), 2);
        assert_eq!(m.cancelled_in_stage("structure"), 0);
        assert_eq!(m.reclaimed_micros(), 1_500_000);
        assert_eq!(m.mean_request_latency_ms(), Some(42.0));
        assert!(Metrics::new().mean_request_latency_ms().is_none());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe(0.5);
        h.observe(3.0);
        h.observe(99_999.0);
        assert_eq!(h.total, 3);
        assert_eq!(h.counts[0], 1); // <= 1ms
        assert_eq!(h.counts[1], 1); // <= 5ms
        assert_eq!(h.counts[BUCKET_BOUNDS_MS.len()], 1); // +Inf
    }
}
