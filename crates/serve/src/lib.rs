//! # efes-serve
//!
//! EFES as a long-running service: the estimation pipeline behind a
//! minimal, dependency-free HTTP/1.1 server.
//!
//! The paper frames effort estimation as something you consult
//! repeatedly while negotiating an integration project — which makes it
//! a service workload, not a batch run. This crate serves the library
//! pipeline over `std::net` only (no async runtime, no HTTP dependency;
//! the vendored-workspace rule applies to the server too):
//!
//! * `POST /estimate` — price a registered scenario by name, with
//!   per-request quality, module selection and deadline
//!   ([`efes::EstimateRequest`] / [`efes::EstimateResponse`]);
//! * `POST /match` — run the candidate-pruned combined matcher over one
//!   source of a registered scenario and return the accepted attribute
//!   correspondences by name ([`server::MatchRequest`] /
//!   [`server::MatchResponse`]);
//! * `GET /scenarios` — list what the registry serves;
//! * `GET /healthz` — liveness;
//! * `GET /metrics` — Prometheus text: request counters, per-stage
//!   latency histograms fed from the pipeline's own timings, profile-
//!   cache hit/miss/eviction counters, queue depth;
//! * `POST /shutdown` — graceful stop (opt-in, for CI and supervisors).
//!
//! Overload never queues unboundedly: the worker pool's queue is
//! bounded (full → `429` + `Retry-After`), connections are capped
//! (`503`), deadlines expire into `503` with the queued job cancelled
//! cooperatively, and shutdown drains accepted work. Estimates returned
//! over the wire are byte-identical to library calls — the server adds
//! scheduling, never arithmetic.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod server;

pub use metrics::{Endpoint, Metrics, Sampled};
pub use server::{MatchEntry, MatchRequest, MatchResponse, Server, ServerConfig, ServerHandle};
