//! # efes-serve
//!
//! EFES as a long-running service: the estimation pipeline behind a
//! minimal, dependency-free HTTP/1.1 server.
//!
//! The paper frames effort estimation as something you consult
//! repeatedly while negotiating an integration project — which makes it
//! a service workload, not a batch run. This crate serves the library
//! pipeline over `std::net` only (no async runtime, no HTTP dependency;
//! the vendored-workspace rule applies to the server too):
//!
//! * `POST /estimate` — price a registered scenario by name, with
//!   per-request quality, module selection and deadline
//!   ([`efes::EstimateRequest`] / [`efes::EstimateResponse`]);
//! * `POST /match` — run the candidate-pruned combined matcher over one
//!   source of a registered scenario and return the accepted attribute
//!   correspondences by name ([`server::MatchRequest`] /
//!   [`server::MatchResponse`]);
//! * `POST /scenarios` — upload a scenario (JSON document with CSV or
//!   JSON-rows table payloads, parsed straight into typed columns by
//!   `efes-ingest`); uploads land in a [`efes_ingest::DynamicRegistry`]
//!   with a memory budget, content-fingerprint deduplication and LRU
//!   eviction of idle uploads ([`server::UploadResponse`]);
//! * `DELETE /scenarios/{name}` — drop an uploaded scenario and its
//!   profile cache (`403` for compiled-in scenarios);
//! * `GET /scenarios` — list what the registry serves, static and
//!   uploaded alike, with provenance and cache state;
//! * `GET /healthz` — liveness;
//! * `GET /metrics` — Prometheus text: request counters, per-stage
//!   latency histograms fed from the pipeline's own timings, profile-
//!   cache hit/miss/eviction counters, queue depth;
//! * `POST /shutdown` — graceful stop (opt-in, for CI and supervisors).
//!
//! Overload never queues unboundedly: the worker pool's queue is
//! bounded (full → `429` + `Retry-After`), connections are capped
//! (`503`), deadlines expire into `503` with the queued job cancelled
//! cooperatively, and shutdown drains accepted work. Estimates returned
//! over the wire are byte-identical to library calls — the server adds
//! scheduling, never arithmetic.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod server;

pub use metrics::{Endpoint, Metrics, Sampled};
pub use server::{
    DeleteResponse, MatchEntry, MatchRequest, MatchResponse, Server, ServerConfig, ServerHandle,
    UploadResponse,
};
