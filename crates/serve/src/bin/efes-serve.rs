//! The `efes-serve` binary: serve the standard case-study scenarios
//! over HTTP until asked to stop.
//!
//! ```text
//! efes-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!            [--default-deadline-ms N] [--max-deadline-ms N]
//!            [--cache-capacity N] [--allow-remote-shutdown]
//!            [--ingest-budget BYTES] [--max-body-bytes N]
//!            [--max-upload-bytes N]
//! ```
//!
//! The worker count falls back to `EFES_THREADS` / available cores when
//! `--workers` is absent. With `--allow-remote-shutdown`, `POST
//! /shutdown` triggers a graceful drain — the supported way to stop the
//! server from scripts, since a std-only binary has no signal handling.

use efes::ExecutionPolicy;
use efes_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: efes-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
         \x20                 [--default-deadline-ms N] [--max-deadline-ms N]\n\
         \x20                 [--cache-capacity N] [--allow-remote-shutdown]\n\
         \x20                 [--ingest-budget BYTES] [--max-body-bytes N]\n\
         \x20                 [--max-upload-bytes N]\n\
         \n\
         --ingest-budget accepts k/m/g suffixes (binary); without it the\n\
         EFES_INGEST_BUDGET environment variable, then 256m, applies."
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value {raw:?} for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_value("--addr", args.next()),
            "--workers" => {
                config.workers = ExecutionPolicy::Threads(parse_value("--workers", args.next()))
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_value("--queue-capacity", args.next())
            }
            "--default-deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(parse_value("--default-deadline-ms", args.next()))
            }
            "--max-deadline-ms" => {
                config.max_deadline =
                    Duration::from_millis(parse_value("--max-deadline-ms", args.next()))
            }
            "--cache-capacity" => {
                config.profile_cache_capacity =
                    Some(parse_value("--cache-capacity", args.next()))
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--ingest-budget" => {
                let raw: String = parse_value("--ingest-budget", args.next());
                match efes_ingest::parse_budget(&raw) {
                    Some(bytes) => config.ingest_budget = Some(bytes),
                    None => {
                        eprintln!("error: invalid value {raw:?} for --ingest-budget");
                        usage();
                    }
                }
            }
            "--max-body-bytes" => {
                config.limits.max_body = parse_value("--max-body-bytes", args.next())
            }
            "--max-upload-bytes" => {
                config.limits.max_upload_body = parse_value("--max-upload-bytes", args.next())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }

    let registry = efes_scenarios::standard_registry();
    let handle = match Server::start(config, registry) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not start server: {e}");
            std::process::exit(1);
        }
    };
    println!("efes-serve listening on {}", handle.addr());
    handle.wait_for_shutdown_request();
    println!("efes-serve draining and shutting down");
    handle.shutdown();
}
