//! The estimation server: a `std`-only TCP acceptor in front of a
//! bounded worker pool.
//!
//! The shape is deliberately boring: one acceptor thread, one handler
//! thread per connection (capped), and a fixed [`WorkerPool`] executing
//! the actual estimates. Every overload path is explicit — a full job
//! queue sheds with `429` + `Retry-After`, a connection cap sheds with
//! `503`, an expired per-request deadline answers `503` and cancels the
//! queued job cooperatively, and shutdown drains everything already
//! accepted before returning. All of it is observable at
//! `GET /metrics` (see [`crate::metrics`]).

use crate::http::{self, Limits, ParseError, Request, Response};
use crate::metrics::{Endpoint, Metrics, Sampled};
use efes::{
    EstimateRequest, EstimateResponse, EstimationConfig, Estimator, ExecutionPolicy,
    ModuleError, ScenarioProvider, ScenarioRegistry,
};
use efes_exec::{fault, CancellationToken, RunContext, SubmitError, WorkerPool};
use efes_ingest::{
    DynamicRegistry, InsertError, InsertOutcome, RemoveError, ScenarioUpload, TableGrowth,
};
use efes_matching::{CombinedMatcher, MatcherConfig};
use efes_profiling::{DbTag, ProfileCache};
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. [`ServerConfig::default`] is sized for tests and
/// local use; the binary maps CLI flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker-pool sizing (the pool provides cross-request parallelism).
    pub workers: ExecutionPolicy,
    /// Bound on jobs *waiting* for a worker; beyond it requests shed
    /// with `429`.
    pub queue_capacity: usize,
    /// Bound on concurrently handled connections; beyond it the
    /// acceptor sheds with `503`.
    pub max_connections: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard ceiling any requested deadline is clamped to.
    pub max_deadline: Duration,
    /// Socket read/write timeout per connection.
    pub io_timeout: Duration,
    /// Request parsing limits.
    pub limits: Limits,
    /// Execution policy *inside* one estimate. Defaults to sequential:
    /// the pool already parallelises across requests, and per-request
    /// sequential execution keeps worker threads from oversubscribing
    /// the machine. The estimate itself is identical either way.
    pub estimation: ExecutionPolicy,
    /// Per-scenario [`ProfileCache`] bound (`None` = unbounded).
    pub profile_cache_capacity: Option<usize>,
    /// Whether `POST /shutdown` is honoured (off by default; meant for
    /// CI and supervised deployments).
    pub allow_remote_shutdown: bool,
    /// Byte budget for uploaded scenarios (`POST /scenarios`). `None`
    /// falls back to the `EFES_INGEST_BUDGET` environment variable, or
    /// 256 MiB.
    pub ingest_budget: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: ExecutionPolicy::FromEnv,
            queue_capacity: 64,
            max_connections: 128,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(120),
            io_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            estimation: ExecutionPolicy::Sequential,
            profile_cache_capacity: Some(4096),
            allow_remote_shutdown: false,
            ingest_budget: None,
        }
    }
}

/// What a finished estimation job left in its [`JobSlot`].
enum JobOutcome {
    Done(Box<Result<efes::EffortEstimate, ModuleError>>),
    /// The worker saw the caller's cancellation and skipped the work.
    Abandoned,
    /// The job panicked; the payload is the panic message. The worker
    /// survives (its own `catch_unwind` is the second line of defence)
    /// and the waiter answers `500` immediately instead of stalling
    /// until its deadline.
    Panicked(String),
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A one-shot rendezvous between the connection handler (waiting with a
/// deadline) and the worker executing its job.
struct JobSlot {
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

impl JobSlot {
    fn new() -> Self {
        JobSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().expect("job slot poisoned");
        *slot = Some(outcome);
        drop(slot);
        self.ready.notify_all();
    }

    /// Wait up to `deadline` for the outcome; `None` means the deadline
    /// expired first.
    fn wait(&self, deadline: Duration) -> Option<JobOutcome> {
        let expires = Instant::now() + deadline;
        let mut slot = self.outcome.lock().expect("job slot poisoned");
        loop {
            if slot.is_some() {
                return slot.take();
            }
            let now = Instant::now();
            if now >= expires {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slot, expires - now)
                .expect("job slot poisoned");
            slot = guard;
        }
    }
}

struct ServerState {
    config: ServerConfig,
    registry: DynamicRegistry,
    metrics: Metrics,
    pool: WorkerPool,
    /// One profile cache per scenario name — never shared across
    /// scenarios, because `DbTag`s are only unambiguous within one.
    caches: Mutex<BTreeMap<String, Arc<ProfileCache>>>,
    /// Set when shutdown starts: the acceptor exits and new estimates
    /// answer `503`.
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    /// Set by `POST /shutdown` (when allowed) or
    /// [`ServerHandle::request_shutdown`]; the binary blocks on it.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl ServerState {
    fn cache_for(&self, scenario: &str) -> Arc<ProfileCache> {
        // Uploaded scenarios retain the mergeable partial state behind
        // each profile so a later extension upload can absorb just its
        // appended rows; static scenarios never grow, so their caches
        // skip the extra memory.
        let retain = !self.registry.is_static(scenario);
        let mut caches = self.caches.lock().expect("cache map poisoned");
        Arc::clone(caches.entry(scenario.to_owned()).or_insert_with(|| {
            let cache = match self.config.profile_cache_capacity {
                Some(cap) => ProfileCache::bounded(cap),
                None => ProfileCache::new(),
            };
            Arc::new(if retain { cache.retaining_partials() } else { cache })
        }))
    }

    /// Drop a scenario's profile cache (after eviction or deletion) so
    /// its profiles stop counting against memory.
    fn drop_cache(&self, scenario: &str) {
        self.caches
            .lock()
            .expect("cache map poisoned")
            .remove(scenario);
    }

    fn sample(&self) -> Sampled {
        let caches = self.caches.lock().expect("cache map poisoned");
        let mut sampled = Sampled {
            queue_depth: self.pool.queue_depth(),
            queue_capacity: self.pool.capacity(),
            in_flight: self.pool.in_flight(),
            workers: self.pool.workers(),
            ingest_resident_bytes: self.registry.resident_bytes() as u64,
            ingest_budget_bytes: self.registry.budget() as u64,
            scenarios_static: self.registry.static_len(),
            scenarios_uploaded: self.registry.uploaded_len(),
            ..Sampled::default()
        };
        for cache in caches.values() {
            sampled.cache_entries += cache.len();
            sampled.cache_hits += cache.hits();
            sampled.cache_misses += cache.misses();
            sampled.cache_evictions += cache.evictions();
        }
        sampled
    }

    fn request_shutdown(&self) {
        let mut requested = self.shutdown_requested.lock().expect("shutdown poisoned");
        *requested = true;
        drop(requested);
        self.shutdown_cv.notify_all();
    }
}

/// The server constructor. [`Server::start`] returns once the listener
/// is bound and accepting.
pub struct Server;

impl Server {
    /// Bind `config.addr`, spawn the acceptor and worker pool, and
    /// return a handle for address discovery and shutdown.
    pub fn start(config: ServerConfig, registry: ScenarioRegistry) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = match config.workers.mode() {
            efes::ExecutionMode::Sequential => 1,
            efes::ExecutionMode::Parallel(n) => n.max(1),
        };
        let state = Arc::new(ServerState {
            pool: WorkerPool::new(workers, config.queue_capacity),
            registry: DynamicRegistry::new(registry, config.ingest_budget),
            config,
            metrics: Metrics::new(),
            caches: Mutex::new(BTreeMap::new()),
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("efes-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &acceptor_state))?;
        Ok(ServerHandle {
            addr,
            state,
            acceptor: Some(acceptor),
        })
    }
}

/// A handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (for tests and in-process clients).
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Render the metrics exposition text, exactly as `GET /metrics`
    /// would.
    pub fn scrape(&self) -> String {
        self.state.metrics.render(&self.state.sample())
    }

    /// Ask for shutdown without performing it — wakes
    /// [`wait_for_shutdown_request`](Self::wait_for_shutdown_request).
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Block until someone requests shutdown (`POST /shutdown` when
    /// enabled, or [`request_shutdown`](Self::request_shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self
            .state
            .shutdown_requested
            .lock()
            .expect("shutdown poisoned");
        while !*requested {
            requested = self
                .state
                .shutdown_cv
                .wait(requested)
                .expect("shutdown poisoned");
        }
    }

    /// Graceful shutdown: stop accepting, let in-flight connections and
    /// their queued jobs drain, then join the workers. Returns when the
    /// server is fully stopped.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.state.shutting_down.store(true, Ordering::Release);
        self.state.request_shutdown();
        // The acceptor blocks in accept(); poke it with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = acceptor.join();
        // In-flight connections finish on their own: their jobs are
        // already in the pool (still running) and every wait carries a
        // deadline. Cap the drain defensively anyway.
        let drain_cap = self.state.config.max_deadline
            + self.state.config.io_timeout
            + self.state.config.io_timeout
            + Duration::from_secs(5);
        let drain_start = Instant::now();
        while self.state.active_connections.load(Ordering::Acquire) > 0
            && drain_start.elapsed() < drain_cap
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.pool.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Decrements the connection gauge when a handler thread exits, however
/// it exits.
struct ConnectionGuard(Arc<ServerState>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (e.g. fd exhaustion): back
                // off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if state.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let active = state.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
        let guard = ConnectionGuard(Arc::clone(state));
        if active > state.config.max_connections {
            let _ = stream.set_write_timeout(Some(state.config.io_timeout));
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                &Response::error(503, "too many connections").with_header("retry-after", "1"),
            );
            drop(guard);
            continue;
        }
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("efes-conn".to_owned())
            .spawn(move || {
                let _guard = guard;
                handle_connection(&conn_state, stream);
            });
        if spawned.is_err() {
            // Could not spawn — the guard travelled into the failed
            // closure and already decremented; nothing else to do.
            continue;
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let response = match http::read_request(&mut reader, &state.config.limits) {
        // Unwind boundary: a panic while routing (real or injected via
        // `EFES_FAULTS`) answers `500` on this connection and leaves
        // the server untouched, instead of silently dropping the
        // socket with the handler thread.
        Ok(request) => match catch_unwind(AssertUnwindSafe(|| route(state, &request))) {
            Ok(response) => response,
            Err(payload) => {
                state
                    .metrics
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                Response::error(
                    500,
                    &format!("internal panic: {}", panic_message(payload.as_ref())),
                )
            }
        },
        Err(ParseError::BadRequest(message)) => {
            state.metrics.count_request(Endpoint::Other);
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::error(400, &message)
        }
        Err(ParseError::TooLarge(message)) => {
            state.metrics.count_request(Endpoint::Other);
            state.metrics.too_large.fetch_add(1, Ordering::Relaxed);
            Response::error(413, &message)
        }
        Err(ParseError::ConnectionClosed) => return,
        Err(ParseError::Io(e)) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                state.metrics.count_request(Endpoint::Other);
                Response::error(408, "timed out reading request")
            } else {
                return;
            }
        }
    };
    let _ = http::write_response(&mut stream, &response);
}

fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            state.metrics.count_request(Endpoint::Healthz);
            Response::json(200, &b"{\"status\":\"ok\"}"[..])
        }
        ("GET", "/scenarios") => {
            state.metrics.count_request(Endpoint::Scenarios);
            match serde_json::to_string(&state.registry.infos()) {
                Ok(body) => Response::json(200, body.into_bytes()),
                Err(e) => {
                    state.metrics.estimate_errors.fetch_add(1, Ordering::Relaxed);
                    Response::error(500, &format!("serialising scenario list: {e}"))
                }
            }
        }
        ("GET", "/metrics") => {
            state.metrics.count_request(Endpoint::Metrics);
            Response::text(200, state.metrics.render(&state.sample()).into_bytes())
        }
        ("POST", "/estimate") => {
            state.metrics.count_request(Endpoint::Estimate);
            handle_estimate(state, request)
        }
        ("POST", "/match") => {
            state.metrics.count_request(Endpoint::Match);
            handle_match(state, request)
        }
        ("POST", "/scenarios") => {
            state.metrics.count_request(Endpoint::Ingest);
            handle_upload(state, request)
        }
        ("DELETE", path) if path.strip_prefix("/scenarios/").is_some_and(|n| !n.is_empty()) => {
            state.metrics.count_request(Endpoint::Ingest);
            handle_delete(state, &request.path["/scenarios/".len()..])
        }
        ("POST", "/shutdown") if state.config.allow_remote_shutdown => {
            state.metrics.count_request(Endpoint::Other);
            state.request_shutdown();
            Response::json(200, &b"{\"status\":\"shutting down\"}"[..])
        }
        (_, "/healthz" | "/scenarios" | "/metrics" | "/estimate" | "/match") => {
            state.metrics.count_request(Endpoint::Other);
            state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
            Response::error(405, &format!("{} not allowed on {}", request.method, request.path))
        }
        (_, path) if path.starts_with("/scenarios/") => {
            state.metrics.count_request(Endpoint::Other);
            state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
            Response::error(405, &format!("{} not allowed on {}", request.method, request.path))
        }
        _ => {
            state.metrics.count_request(Endpoint::Other);
            state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
            Response::error(404, &format!("no such endpoint {:?}", request.path))
        }
    }
}

fn handle_estimate(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.shutting_down.load(Ordering::Acquire) {
        return Response::error(503, "server is shutting down");
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::error(400, "request body is not valid UTF-8");
    };
    let estimate_request: EstimateRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &format!("invalid estimate request: {e}"));
        }
    };
    let Some(scenario) = state.registry.get(&estimate_request.scenario) else {
        state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            404,
            &format!("unknown scenario {:?}", estimate_request.scenario),
        );
    };
    let deadline = estimate_request
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(state.config.default_deadline)
        .min(state.config.max_deadline);

    let cache = state.cache_for(&estimate_request.scenario);
    let slot = Arc::new(JobSlot::new());
    let token = CancellationToken::new();
    let started = Instant::now();

    let job_state = Arc::clone(state);
    let job_slot = Arc::clone(&slot);
    let job_token = token.clone();
    let job_request = estimate_request.clone();
    // The deadline the *run* observes is the same instant the waiter
    // gives up at: queue wait counts against it, and a job picked up
    // with no budget left aborts at its first checkpoint.
    let expires = started + deadline;
    let submitted = state.pool.try_submit(Box::new(move || {
        if job_token.is_cancelled() {
            job_state
                .metrics
                .jobs_abandoned
                .fetch_add(1, Ordering::Relaxed);
            job_slot.fill(JobOutcome::Abandoned);
            return;
        }
        let job_started = Instant::now();
        let run = RunContext::new(job_token.clone(), Some(expires));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if fault::fire("serve.estimate.job", Some(&job_token)) {
                return Err(ModuleError::PlanningFailed(
                    "injected fault: estimation allocation cap exhausted".to_owned(),
                ));
            }
            let mut config = EstimationConfig::for_quality(job_request.quality);
            config.execution = job_state.config.estimation;
            let estimator = Estimator::with_selected_modules(config, job_request.modules);
            estimator.estimate_with_cache_ctx(&scenario, cache, run)
        }));
        let result = match outcome {
            Err(payload) => {
                job_state
                    .metrics
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                job_slot.fill(JobOutcome::Panicked(panic_message(payload.as_ref())));
                return;
            }
            Ok(result) => result,
        };
        match &result {
            Ok(estimate) => {
                for stage in &estimate.timings.stages {
                    job_state.metrics.observe_stage(&stage.stage, stage.millis);
                }
            }
            Err(ModuleError::Cancelled(stage)) => {
                job_state.metrics.count_cancelled_stage(stage);
                // Credit the worker time the abort handed back: what an
                // average uncancelled estimate would have held minus
                // what this run actually held.
                if let Some(mean_ms) = job_state.metrics.mean_request_latency_ms() {
                    let mean_micros = (mean_ms * 1e3) as u64;
                    let held_micros = job_started.elapsed().as_micros() as u64;
                    job_state
                        .metrics
                        .add_reclaimed_micros(mean_micros.saturating_sub(held_micros));
                }
            }
            Err(_) => {}
        }
        job_slot.fill(JobOutcome::Done(Box::new(result)));
    }));
    match submitted {
        Ok(()) => {}
        Err(SubmitError::QueueFull) => {
            state
                .metrics
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "estimation queue is full")
                .with_header("retry-after", "1");
        }
        Err(SubmitError::ShuttingDown) => {
            return Response::error(503, "server is shutting down");
        }
    }

    match slot.wait(deadline) {
        None => {
            token.cancel();
            state
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            Response::error(
                503,
                &format!("deadline of {} ms expired", deadline.as_millis()),
            )
        }
        Some(JobOutcome::Abandoned) => {
            // Only reachable if the waiter timed out, which returns
            // above — kept for exhaustiveness.
            Response::error(503, "estimation was abandoned")
        }
        Some(JobOutcome::Panicked(message)) => {
            state.metrics.estimate_errors.fetch_add(1, Ordering::Relaxed);
            Response::error(500, &format!("estimation job panicked: {message}"))
        }
        Some(JobOutcome::Done(result)) => match *result {
            Ok(estimate) => {
                state.metrics.estimates_ok.fetch_add(1, Ordering::Relaxed);
                state
                    .metrics
                    .observe_request_latency(started.elapsed().as_secs_f64() * 1e3);
                let response = EstimateResponse::from_estimate(&estimate, &estimate_request);
                match serde_json::to_string(&response) {
                    Ok(body) => Response::json(200, body.into_bytes()),
                    Err(e) => {
                        state.metrics.estimate_errors.fetch_add(1, Ordering::Relaxed);
                        Response::error(500, &format!("serialising estimate: {e}"))
                    }
                }
            }
            // The run aborted cooperatively before the waiter's own
            // deadline fired — a spurious cancel (fault injection) or a
            // deadline the job observed first. The caller stopped
            // wanting the answer; that is shed load, not a failure.
            Err(e) if e.is_cancelled() => {
                if Instant::now() >= expires {
                    state
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                }
                Response::error(503, &format!("estimation {e}"))
            }
            Err(e) => {
                state.metrics.estimate_errors.fetch_add(1, Ordering::Relaxed);
                Response::error(500, &format!("estimation failed: {e}"))
            }
        },
    }
}

/// A schema-match request: run the combined matcher over one source of
/// a registered scenario. Wire format is a JSON object; only
/// `"scenario"` is required — `"source"` (index into the scenario's
/// sources) defaults to `0`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchRequest {
    /// Name of a registered scenario.
    pub scenario: String,
    /// Which source database to match against the target.
    pub source: usize,
}

impl Serialize for MatchRequest {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                Content::Str("scenario".into()),
                Content::Str(self.scenario.clone()),
            ),
            (Content::Str("source".into()), self.source.to_content()),
        ])
    }
}

impl Deserialize for MatchRequest {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `MatchRequest`"))?;
        let scenario = match content_get(map, "scenario") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("MatchRequest", "scenario")),
        };
        let mut request = MatchRequest {
            scenario,
            source: 0,
        };
        if let Some(v) = content_get(map, "source") {
            request.source = usize::from_content(v)?;
        }
        Ok(request)
    }
}

/// One proposed attribute correspondence on the wire, by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchEntry {
    /// Source table name.
    pub source_table: String,
    /// Source attribute name.
    pub source_attr: String,
    /// Target table name.
    pub target_table: String,
    /// Target attribute name.
    pub target_attr: String,
    /// Combined similarity score.
    pub score: f64,
}

/// The `POST /match` response: the accepted 1:1 correspondences plus
/// how much of the pair grid the candidate filter pruned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchResponse {
    /// The scenario that was matched.
    pub scenario: String,
    /// Index of the matched source database.
    pub source: usize,
    /// Size of the full source×target attribute grid.
    pub pairs_total: u64,
    /// Pairs skipped by the candidate filter.
    pub pairs_pruned: u64,
    /// Accepted correspondences, best first.
    pub matches: Vec<MatchEntry>,
}

/// `POST /match` — synchronous: the matcher is orders of magnitude
/// cheaper than an estimate (no instance profiling beyond the named
/// source/target columns), so it runs on the connection thread instead
/// of the job queue.
fn handle_match(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.shutting_down.load(Ordering::Acquire) {
        return Response::error(503, "server is shutting down");
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::error(400, "request body is not valid UTF-8");
    };
    let match_request: MatchRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &format!("invalid match request: {e}"));
        }
    };
    let Some(scenario) = state.registry.get(&match_request.scenario) else {
        state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            404,
            &format!("unknown scenario {:?}", match_request.scenario),
        );
    };
    let Some(source) = scenario.sources.get(match_request.source) else {
        state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            404,
            &format!(
                "scenario {:?} has {} sources, no index {}",
                match_request.scenario,
                scenario.sources.len(),
                match_request.source
            ),
        );
    };

    let started = Instant::now();
    // A fresh cache per request: the matcher keys its source columns as
    // `DbTag(0)` whatever the source index, so the scenario's shared
    // estimate cache (keyed by real source indices) must not be mixed
    // in.
    let matcher = CombinedMatcher::new(MatcherConfig::default());
    let (proposed, stats) = matcher.propose_attribute_matches_stats(
        source,
        &scenario.target,
        &ProfileCache::new(),
        state.config.estimation.mode(),
    );
    state
        .metrics
        .observe_stage("matching", started.elapsed().as_secs_f64() * 1e3);

    let matches = proposed
        .into_iter()
        .map(|m| {
            let s_table = source.schema.table(m.source.0);
            let t_table = scenario.target.schema.table(m.target.0);
            MatchEntry {
                source_table: s_table.name.clone(),
                source_attr: s_table.attributes[m.source.1 .0].name.clone(),
                target_table: t_table.name.clone(),
                target_attr: t_table.attributes[m.target.1 .0].name.clone(),
                score: m.score,
            }
        })
        .collect();
    let response = MatchResponse {
        scenario: match_request.scenario,
        source: match_request.source,
        pairs_total: stats.pairs_total as u64,
        pairs_pruned: stats.pairs_pruned as u64,
        matches,
    };
    match serde_json::to_string(&response) {
        Ok(body) => {
            state.metrics.matches_ok.fetch_add(1, Ordering::Relaxed);
            Response::json(200, body.into_bytes())
        }
        Err(e) => {
            state.metrics.estimate_errors.fetch_add(1, Ordering::Relaxed);
            Response::error(500, &format!("serialising match result: {e}"))
        }
    }
}

/// Rebuild an extended scenario's profile cache from the partial states
/// retained by the previous version's cache: unchanged tables re-seed
/// their profiles for free, grown tables accumulate only the appended
/// rows (O(delta)) and finalize — bit-identical to a cold re-profile,
/// by the monoid's chunk-split invariance.
fn refresh_extended_cache(state: &Arc<ServerState>, name: &str, growth: &[TableGrowth]) {
    let Some(scenario) = state.registry.get(name) else {
        return;
    };
    let old = state
        .caches
        .lock()
        .expect("cache map poisoned")
        .remove(name);
    let Some(old) = old else {
        // Never estimated: nothing to carry over, the next estimate
        // profiles the extended data cold.
        return;
    };
    let fresh = state.cache_for(name);
    let run = RunContext::unbounded();
    for (key, profile, partial) in old.snapshot_partials() {
        let (source, db) = if key.db == DbTag::TARGET {
            (None, &scenario.target)
        } else {
            let i = key.db.0 as usize;
            match scenario.sources.get(i) {
                Some(db) => (Some(i), db),
                None => continue,
            }
        };
        let Some(g) = growth
            .iter()
            .find(|g| g.source == source && g.table == key.table)
        else {
            continue;
        };
        if partial.rows_seen() != g.old_rows {
            continue;
        }
        if g.old_rows == g.new_rows {
            // The table did not grow: the old profile is the new one.
            fresh.seed(key, profile, Some(partial));
            continue;
        }
        let Some(col) = db.instance.table(key.table).column_store(key.attr) else {
            continue;
        };
        let mut grown = (*partial).clone();
        let ck = run.checkpoint();
        if grown
            .accumulate_range(col, g.old_rows, g.new_rows, &ck)
            .is_err()
        {
            continue;
        }
        let refreshed = grown.finalize();
        fresh.seed(key, Arc::new(refreshed), Some(Arc::new(grown)));
        state.metrics.profile_deltas.fetch_add(1, Ordering::Relaxed);
        state
            .metrics
            .profile_delta_rows
            .fetch_add((g.new_rows - g.old_rows) as u64, Ordering::Relaxed);
    }
}

/// The `POST /scenarios` response: what the registry did with the
/// upload. `status` is `"created"` (`201`), `"deduplicated"` (`200`) or
/// `"extended"` (`200`, a row-wise extension replaced the entry in
/// place); on deduplication `scenario` names the *existing* entry
/// estimates should be addressed to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UploadResponse {
    /// The name the scenario is resolvable under.
    pub scenario: String,
    /// `"created"`, `"deduplicated"` or `"extended"`.
    pub status: String,
    /// Approximate resident bytes charged against the ingest budget
    /// (the existing entry's charge when deduplicated).
    pub resident_bytes: u64,
    /// Uploaded scenarios evicted to make room, oldest first.
    pub evicted: Vec<String>,
}

/// The `DELETE /scenarios/{name}` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteResponse {
    /// The deleted scenario.
    pub scenario: String,
    /// Approximate bytes returned to the ingest budget.
    pub freed_bytes: u64,
}

/// `POST /scenarios` — synchronous on the connection thread, like
/// `/match`: parsing streams into typed columns without profiling
/// anything, so it never competes with estimates for workers.
fn handle_upload(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.shutting_down.load(Ordering::Acquire) {
        return Response::error(503, "server is shutting down");
    }
    let reject = |status: u16, message: &str| {
        state
            .metrics
            .ingests_rejected
            .fetch_add(1, Ordering::Relaxed);
        Response::error(status, message)
    };
    // Fault site: `alloc` mode reports the ingest budget as exhausted
    // (the client-visible shape of a real over-budget upload); `panic`
    // is caught by the connection handler's unwind boundary.
    if fault::fire("ingest.upload", None) {
        state.metrics.too_large.fetch_add(1, Ordering::Relaxed);
        return reject(413, "injected fault: ingest budget exhausted");
    }
    let upload = match ScenarioUpload::parse(&request.body) {
        Ok(upload) => upload,
        Err(e) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return reject(400, &e.to_string());
        }
    };
    let (name, description) = (upload.name.clone(), upload.description.clone());
    let scenario = match upload.into_scenario() {
        Ok(scenario) => scenario,
        Err(e) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return reject(400, &e.to_string());
        }
    };
    match state.registry.insert(&name, &description, scenario) {
        Ok(InsertOutcome::Inserted { bytes, evicted }) => {
            state.metrics.ingests_ok.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .ingests_evicted
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            for gone in &evicted {
                state.drop_cache(gone);
            }
            let response = UploadResponse {
                scenario: name,
                status: "created".to_owned(),
                resident_bytes: bytes as u64,
                evicted,
            };
            match serde_json::to_string(&response) {
                Ok(body) => Response::json(201, body.into_bytes()),
                Err(e) => Response::error(500, &format!("serialising upload result: {e}")),
            }
        }
        Ok(InsertOutcome::Extended {
            bytes,
            evicted,
            growth,
        }) => {
            state.metrics.ingests_extended.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .ingests_evicted
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            for gone in &evicted {
                state.drop_cache(gone);
            }
            refresh_extended_cache(state, &name, &growth);
            let response = UploadResponse {
                scenario: name,
                status: "extended".to_owned(),
                resident_bytes: bytes as u64,
                evicted,
            };
            match serde_json::to_string(&response) {
                Ok(body) => Response::json(200, body.into_bytes()),
                Err(e) => Response::error(500, &format!("serialising upload result: {e}")),
            }
        }
        Ok(InsertOutcome::Deduplicated { existing }) => {
            state
                .metrics
                .ingests_deduplicated
                .fetch_add(1, Ordering::Relaxed);
            let resident = state
                .registry
                .infos()
                .into_iter()
                .find(|i| i.name == existing)
                .and_then(|i| i.resident_bytes)
                .unwrap_or(0);
            let response = UploadResponse {
                scenario: existing,
                status: "deduplicated".to_owned(),
                resident_bytes: resident,
                evicted: Vec::new(),
            };
            match serde_json::to_string(&response) {
                Ok(body) => Response::json(200, body.into_bytes()),
                Err(e) => Response::error(500, &format!("serialising upload result: {e}")),
            }
        }
        Err(e @ InsertError::NameTaken(_)) => reject(409, &e.to_string()),
        Err(e @ InsertError::OverBudget { .. }) => {
            state.metrics.too_large.fetch_add(1, Ordering::Relaxed);
            reject(413, &e.to_string())
        }
        Err(e @ InsertError::InvalidName(_)) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            reject(400, &e.to_string())
        }
    }
}

/// `DELETE /scenarios/{name}` — removes an uploaded scenario and its
/// profile cache. Static scenarios answer `403`.
fn handle_delete(state: &Arc<ServerState>, name: &str) -> Response {
    match state.registry.remove(name) {
        Ok(freed) => {
            state.metrics.ingests_deleted.fetch_add(1, Ordering::Relaxed);
            state.drop_cache(name);
            let response = DeleteResponse {
                scenario: name.to_owned(),
                freed_bytes: freed as u64,
            };
            match serde_json::to_string(&response) {
                Ok(body) => Response::json(200, body.into_bytes()),
                Err(e) => Response::error(500, &format!("serialising delete result: {e}")),
            }
        }
        Err(RemoveError::NotFound) => {
            state.metrics.not_found.fetch_add(1, Ordering::Relaxed);
            Response::error(404, &format!("no uploaded scenario {name:?}"))
        }
        Err(RemoveError::Static) => {
            Response::error(403, &format!("scenario {name:?} is compiled in and cannot be deleted"))
        }
    }
}
