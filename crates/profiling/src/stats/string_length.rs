//! String length distribution of a string attribute.

use efes_relational::Value;
use serde::{Deserialize, Serialize};

/// *"The string length statistic determines the average string length and
/// its standard deviation for a string attribute."* (§5.1)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StringLength {
    /// Number of non-null values.
    pub count: usize,
    /// Mean length in characters.
    pub mean: f64,
    /// Population standard deviation of lengths.
    pub stddev: f64,
}

impl StringLength {
    /// Compute mean/σ of rendered lengths.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let lengths: Vec<f64> = values
            .into_iter()
            .filter(|v| !v.is_null())
            .map(|v| v.render().chars().count() as f64)
            .collect();
        let count = lengths.len();
        if count == 0 {
            return StringLength {
                count,
                mean: 0.0,
                stddev: 0.0,
            };
        }
        let mean = lengths.iter().sum::<f64>() / count as f64;
        let var = lengths.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / count as f64;
        StringLength {
            count,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Importance: tight length distributions characterise the attribute
    /// strongly (codes, timestamps); widely varying lengths do not
    /// (titles, free text). Uses the coefficient of variation.
    pub fn importance(&self) -> f64 {
        if self.count == 0 || self.mean == 0.0 {
            return 0.0;
        }
        super::unit(1.0 / (1.0 + 2.0 * self.stddev / self.mean))
    }

    /// Fit: how plausible the source mean is under the target length
    /// distribution — a Gaussian-style kernel over the standardised
    /// distance, with the target σ floored at 10 % of its mean so exact
    /// formats don't divide by zero.
    pub fn fit(source: &StringLength, target: &StringLength) -> f64 {
        if source.count == 0 || target.count == 0 {
            return 1.0;
        }
        let sigma = target.stddev.max(0.25 * target.mean).max(0.5);
        // 1.5σ half-width: a source mean within one target σ is entirely
        // plausible and should not be penalised much.
        let z = (source.mean - target.mean) / (1.5 * sigma);
        super::unit((-0.5 * z * z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    #[test]
    fn mean_and_stddev() {
        let s = StringLength::compute(texts(&["ab", "abcd"]).iter());
        assert_eq!(s.count, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_lengths_are_important() {
        let s = StringLength::compute(texts(&["4:43", "6:55", "3:26"]).iter());
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.importance(), 1.0);
    }

    #[test]
    fn self_fit_is_one() {
        let s = StringLength::compute(texts(&["4:43", "6:55"]).iter());
        assert!((StringLength::fit(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divergent_lengths_fit_poorly() {
        let durations = StringLength::compute(texts(&["4:43", "6:55", "3:26"]).iter());
        let millis = StringLength::compute(texts(&["215900", "238100", "218200"]).iter());
        assert!(StringLength::fit(&millis, &durations) < 0.5);
    }

    #[test]
    fn empty_source_fits() {
        let empty = StringLength::compute(std::iter::empty());
        let t = StringLength::compute(texts(&["abc"]).iter());
        assert_eq!(StringLength::fit(&empty, &t), 1.0);
        assert_eq!(empty.importance(), 0.0);
    }
}
