//! Frequent text patterns of a string attribute.

use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// *"The text pattern statistic collects frequent patterns in a string
/// attribute."* (§5.1)
///
/// A value's pattern abstracts runs of digits to `<n>` and runs of letters
/// to `<w>`, keeping all other characters verbatim — the paper's worked
/// example renders `"4:43"` as *\[number ":" number\]*, here `<n>:<n>`,
/// and `"215900"` as *\[number\]*, here `<n>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextPatterns {
    /// Pattern → occurrence count, over non-null values rendered as text.
    pub counts: Vec<(String, usize)>,
    /// Total non-null values observed.
    pub total: usize,
}

/// Abstract a single string into its pattern.
pub fn pattern_of(s: &str) -> String {
    let mut out = String::new();
    let mut mode: u8 = 0; // 0 = none, 1 = digits, 2 = letters
    for c in s.chars() {
        if c.is_ascii_digit() {
            if mode != 1 {
                out.push_str("<n>");
                mode = 1;
            }
        } else if c.is_alphabetic() {
            if mode != 2 {
                out.push_str("<w>");
                mode = 2;
            }
        } else {
            out.push(c);
            mode = 0;
        }
    }
    out
}

impl TextPatterns {
    /// Compute pattern frequencies, sorted by descending count (ties by
    /// pattern text for determinism).
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut map: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            total += 1;
            *map.entry(pattern_of(&v.render())).or_insert(0) += 1;
        }
        let mut counts: Vec<(String, usize)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TextPatterns { counts, total }
    }

    /// Share of values covered by the single most frequent pattern.
    pub fn dominant_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .first()
            .map(|(_, c)| *c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// Importance: *"in the duration attribute, all values have the same
    /// text pattern \[number ":" number\], so the string format statistic
    /// is presumably an important characteristic and should therefore have
    /// a high importance score. If it had many different text patterns in
    /// contrast, its importance would be close to 0."*
    ///
    /// We use the probability mass of the target's patterns weighted by
    /// concentration: the dominant-pattern share squared-root-scaled so a
    /// 100 % uniform format scores 1 and a long tail of formats scores ≈0.
    pub fn importance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Herfindahl concentration of the pattern distribution.
        let hhi: f64 = self
            .counts
            .iter()
            .map(|(_, c)| {
                let p = *c as f64 / self.total as f64;
                p * p
            })
            .sum();
        super::unit(hhi)
    }

    /// Fit: the fraction of source values whose pattern appears among the
    /// target's *frequent* patterns (≥ 5 % share), so a source of `<n>`
    /// values scores 0 against a target whose values are all `<n>:<n>`.
    pub fn fit(source: &TextPatterns, target: &TextPatterns) -> f64 {
        if source.total == 0 || target.total == 0 {
            return 1.0;
        }
        let frequent: Vec<&str> = target
            .counts
            .iter()
            .filter(|(_, c)| *c as f64 / target.total as f64 >= 0.05)
            .map(|(p, _)| p.as_str())
            .collect();
        let covered: usize = source
            .counts
            .iter()
            .filter(|(p, _)| frequent.contains(&p.as_str()))
            .map(|(_, c)| *c)
            .sum();
        super::unit(covered as f64 / source.total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    #[test]
    fn pattern_abstraction_matches_paper_example() {
        assert_eq!(pattern_of("4:43"), "<n>:<n>");
        assert_eq!(pattern_of("215900"), "<n>");
        assert_eq!(pattern_of("Sweet Home Alabama"), "<w> <w> <w>");
        assert_eq!(pattern_of(""), "");
        assert_eq!(pattern_of("a1b2"), "<w><n><w><n>");
    }

    #[test]
    fn uniform_format_has_high_importance() {
        let durations = texts(&["4:43", "6:55", "3:26", "12:01"]);
        let tp = TextPatterns::compute(durations.iter());
        assert_eq!(tp.counts.len(), 1);
        assert_eq!(tp.importance(), 1.0);
        assert_eq!(tp.dominant_share(), 1.0);
    }

    #[test]
    fn diverse_formats_have_low_importance() {
        let vals = texts(&["a-1", "b:2", "c.3", "4 d", "e/5", "(f)", "#g", "h!"]);
        let tp = TextPatterns::compute(vals.iter());
        assert!(tp.importance() < 0.2);
    }

    #[test]
    fn mismatched_formats_fit_zero() {
        // The paper's worked example: lengths `<n>` vs durations `<n>:<n>`.
        let target = TextPatterns::compute(texts(&["4:43", "6:55", "3:26"]).iter());
        let source = TextPatterns::compute(
            [Value::Int(215900), Value::Int(238100)].iter(),
        );
        assert_eq!(TextPatterns::fit(&source, &target), 0.0);
        assert_eq!(TextPatterns::fit(&target, &target), 1.0);
    }

    #[test]
    fn partial_overlap_fits_partially() {
        let target = TextPatterns::compute(texts(&["1:11", "2:22", "3:33", "4:44"]).iter());
        let source = TextPatterns::compute(texts(&["5:55", "123", "6:06", "7:07"]).iter());
        let f = TextPatterns::fit(&source, &target);
        assert!((f - 0.75).abs() < 1e-12);
    }
}
