//! Numeric statistics: mean/σ, value range, equi-width histogram.

use efes_relational::Value;
use serde::{Deserialize, Serialize};

/// *"The mean statistic collects the mean value and standard deviation of
/// a numeric attribute."* (§5.1)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericMean {
    /// Number of numeric (castable) values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl NumericMean {
    /// Compute mean/σ over the numeric view of non-null values; values
    /// without a numeric view are skipped.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let nums: Vec<f64> = values.into_iter().filter_map(numeric_view).collect();
        let count = nums.len();
        if count == 0 {
            return NumericMean {
                count,
                mean: 0.0,
                stddev: 0.0,
            };
        }
        let mean = nums.iter().sum::<f64>() / count as f64;
        let var = nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        NumericMean {
            count,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Importance via coefficient of variation, as for string lengths.
    pub fn importance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.mean == 0.0 {
            return if self.stddev == 0.0 { 1.0 } else { 0.3 };
        }
        super::unit(1.0 / (1.0 + 2.0 * (self.stddev / self.mean).abs()))
    }

    /// Fit: Gaussian kernel over the standardised mean distance.
    pub fn fit(source: &NumericMean, target: &NumericMean) -> f64 {
        if source.count == 0 || target.count == 0 {
            return 1.0;
        }
        let sigma = target.stddev.max(0.25 * target.mean.abs()).max(1e-9);
        // Same 1.5σ half-width as the string-length kernel.
        let z = (source.mean - target.mean) / (1.5 * sigma);
        super::unit((-0.5 * z * z).exp())
    }
}

/// *"Value ranges are used to determine the minimum and maximum value of a
/// numeric attribute."* (§5.1)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueRange {
    /// Number of numeric values.
    pub count: usize,
    /// Minimum, if any values were numeric.
    pub min: Option<f64>,
    /// Maximum, if any values were numeric.
    pub max: Option<f64>,
}

impl ValueRange {
    /// Compute min/max over numeric views.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for x in values.into_iter().filter_map(numeric_view) {
            count += 1;
            min = min.min(x);
            max = max.max(x);
        }
        ValueRange {
            count,
            min: (count > 0).then_some(min),
            max: (count > 0).then_some(max),
        }
    }

    /// Importance: ranges are always somewhat characteristic for numeric
    /// attributes; a degenerate range (a constant) maximally so.
    pub fn importance(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if lo == hi => 1.0,
            (Some(_), Some(_)) => 0.5,
            _ => 0.0,
        }
    }

    /// Fit: the fraction of the source range that lies inside the target
    /// range (interval overlap / source width); point sources score 1 if
    /// inside, 0 if outside.
    pub fn fit(source: &ValueRange, target: &ValueRange) -> f64 {
        let (Some(slo), Some(shi)) = (source.min, source.max) else {
            return 1.0;
        };
        let (Some(tlo), Some(thi)) = (target.min, target.max) else {
            return 1.0;
        };
        // Tolerate 10% slack around the target range: new data may slightly
        // extend an observed range without being a different domain.
        let slack = 0.1 * (thi - tlo).max(thi.abs().max(tlo.abs())).max(1.0);
        let (tlo, thi) = (tlo - slack, thi + slack);
        if shi <= slo {
            return if slo >= tlo && slo <= thi { 1.0 } else { 0.0 };
        }
        let overlap = (shi.min(thi) - slo.max(tlo)).max(0.0);
        super::unit(overlap / (shi - slo))
    }
}

/// *"The histogram statistic describes numeric attributes as histograms."*
/// (§5.1) — equi-width over the observed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericHistogram {
    /// Lower bound of the first bucket.
    pub lo: f64,
    /// Upper bound of the last bucket.
    pub hi: f64,
    /// Relative frequency per bucket (sums to 1 when `count > 0`).
    pub buckets: Vec<f64>,
    /// Number of numeric values.
    pub count: usize,
}

impl NumericHistogram {
    /// Default bucket count used throughout the crate.
    pub const DEFAULT_BUCKETS: usize = 16;

    /// Compute an equi-width histogram with `n_buckets` buckets.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>, n_buckets: usize) -> Self {
        let nums: Vec<f64> = values.into_iter().filter_map(numeric_view).collect();
        let count = nums.len();
        if count == 0 {
            return NumericHistogram {
                lo: 0.0,
                hi: 0.0,
                buckets: vec![0.0; n_buckets],
                count,
            };
        }
        let lo = nums.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / n_buckets as f64).max(f64::MIN_POSITIVE);
        let mut buckets = vec![0.0; n_buckets];
        for x in &nums {
            let idx = (((x - lo) / width) as usize).min(n_buckets - 1);
            buckets[idx] += 1.0;
        }
        for b in &mut buckets {
            *b /= count as f64;
        }
        NumericHistogram {
            lo,
            hi,
            buckets,
            count,
        }
    }

    /// Importance: fixed moderate weight — histograms refine mean/range
    /// but rarely define an attribute on their own.
    pub fn importance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            0.4
        }
    }

    /// Fit: histogram intersection after re-bucketing the source onto the
    /// target's bucket boundaries.
    pub fn fit(source: &NumericHistogram, target: &NumericHistogram) -> f64 {
        if source.count == 0 || target.count == 0 {
            return 1.0;
        }
        let n = target.buckets.len();
        if target.hi <= target.lo {
            // Degenerate target (constant attribute): fit iff source is the
            // same constant.
            return if source.lo == target.lo && source.hi == target.hi {
                1.0
            } else {
                0.0
            };
        }
        let width = (target.hi - target.lo) / n as f64;
        let mut rebucketed = vec![0.0; n];
        let src_n = source.buckets.len();
        let src_width = if source.hi > source.lo {
            (source.hi - source.lo) / src_n as f64
        } else {
            0.0
        };
        for (i, mass) in source.buckets.iter().enumerate() {
            let centre = if src_width > 0.0 {
                source.lo + (i as f64 + 0.5) * src_width
            } else {
                source.lo
            };
            let idx = ((centre - target.lo) / width).floor();
            if idx >= 0.0 && (idx as usize) < n {
                rebucketed[idx as usize] += mass;
            }
        }
        let overlap: f64 = rebucketed
            .iter()
            .zip(target.buckets.iter())
            .map(|(a, b)| a.min(*b))
            .sum();
        super::unit(overlap)
    }
}

/// Numeric view of a value: ints/floats directly, numeric strings parsed.
pub(crate) fn numeric_view(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Text(s) => s.trim().parse::<f64>().ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(items: &[i64]) -> Vec<Value> {
        items.iter().map(|i| Value::Int(*i)).collect()
    }

    #[test]
    fn mean_basics() {
        let m = NumericMean::compute(ints(&[1, 2, 3]).iter());
        assert_eq!(m.count, 3);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_parses_numeric_strings() {
        let vals = [Value::Text("10".into()), Value::Text("x".into())];
        let m = NumericMean::compute(vals.iter());
        assert_eq!(m.count, 1);
        assert_eq!(m.mean, 10.0);
    }

    #[test]
    fn range_overlap_fit() {
        let years_src = ValueRange::compute(ints(&[1990, 2000, 2010]).iter());
        let years_tgt = ValueRange::compute(ints(&[1960, 2015]).iter());
        assert!(ValueRange::fit(&years_src, &years_tgt) > 0.99);
        let millis = ValueRange::compute(ints(&[215900, 238100]).iter());
        assert!(ValueRange::fit(&millis, &years_tgt) < 0.01);
    }

    #[test]
    fn degenerate_source_range() {
        let point = ValueRange::compute(ints(&[5]).iter());
        let wide = ValueRange::compute(ints(&[0, 10]).iter());
        assert_eq!(ValueRange::fit(&point, &wide), 1.0);
        let outside = ValueRange::compute(ints(&[100]).iter());
        assert_eq!(ValueRange::fit(&outside, &wide), 0.0);
    }

    #[test]
    fn histogram_buckets_sum_to_one() {
        let h = NumericHistogram::compute(ints(&[1, 2, 3, 4, 5, 6, 7, 8]).iter(), 4);
        assert!((h.buckets.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.count, 8);
    }

    #[test]
    fn histogram_self_fit_is_high() {
        let h = NumericHistogram::compute(ints(&[1, 2, 2, 3, 3, 3, 9, 10]).iter(), 8);
        assert!(NumericHistogram::fit(&h, &h) > 0.95);
    }

    #[test]
    fn histogram_disjoint_fit_is_zero() {
        let a = NumericHistogram::compute(ints(&[1, 2, 3]).iter(), 4);
        let b = NumericHistogram::compute(ints(&[100, 200, 300]).iter(), 4);
        assert_eq!(NumericHistogram::fit(&a, &b), 0.0);
    }

    #[test]
    fn empty_stats_behave() {
        let e = NumericMean::compute(std::iter::empty());
        assert_eq!(e.count, 0);
        let r = ValueRange::compute(std::iter::empty());
        assert_eq!(r.min, None);
        let h = NumericHistogram::compute(std::iter::empty(), 4);
        assert_eq!(h.count, 0);
        assert_eq!(h.importance(), 0.0);
    }
}
