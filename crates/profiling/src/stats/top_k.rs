//! Top-k most frequent values.

use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// *"For attributes with values from a discrete domain, the top-k values
/// statistic identifies the most frequent values."* (§5.1)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopK {
    /// The `k` most frequent non-null values with their counts, in
    /// descending count order (ties broken by value order, deterministic).
    pub values: Vec<(Value, usize)>,
    /// Total non-null values observed.
    pub total: usize,
}

impl TopK {
    /// Default `k` used throughout the crate.
    pub const DEFAULT_K: usize = 10;

    /// Compute the top-`k` values of a column.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>, k: usize) -> Self {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        let mut total = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            total += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut all: Vec<(Value, usize)> = counts
            .into_iter()
            .map(|(v, c)| (v.clone(), c))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        TopK { values: all, total }
    }

    /// Probability mass covered by the retained top-k values.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.values.iter().map(|(_, c)| *c).sum::<usize>() as f64 / self.total as f64
    }

    /// Importance: high when the top-k covers most of the column — i.e.
    /// the attribute is essentially a small controlled vocabulary.
    pub fn importance(&self) -> f64 {
        super::unit(self.coverage())
    }

    /// Fit: the share of the source's top-k mass whose values also occur
    /// in the target's top-k.
    pub fn fit(source: &TopK, target: &TopK) -> f64 {
        if source.total == 0 || target.total == 0 || source.values.is_empty() {
            return 1.0;
        }
        let target_vals: Vec<&Value> = target.values.iter().map(|(v, _)| v).collect();
        let shared: usize = source
            .values
            .iter()
            .filter(|(v, _)| target_vals.contains(&v))
            .map(|(_, c)| *c)
            .sum();
        let mass: usize = source.values.iter().map(|(_, c)| *c).sum();
        super::unit(shared as f64 / mass as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    #[test]
    fn keeps_k_most_frequent_deterministically() {
        let vals = texts(&["rock", "pop", "rock", "jazz", "rock", "pop"]);
        let t = TopK::compute(vals.iter(), 2);
        assert_eq!(t.values.len(), 2);
        assert_eq!(t.values[0], (Value::Text("rock".into()), 3));
        assert_eq!(t.values[1], (Value::Text("pop".into()), 2));
        assert!((t.coverage() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn small_vocabulary_is_important() {
        let genres: Vec<Value> = (0..50)
            .map(|i| Value::Text(["rock", "pop"][i % 2].into()))
            .collect();
        let t = TopK::compute(genres.iter(), 10);
        assert_eq!(t.importance(), 1.0);
    }

    #[test]
    fn shared_vocabulary_fits() {
        let a = TopK::compute(texts(&["rock", "pop", "rock"]).iter(), 10);
        let b = TopK::compute(texts(&["pop", "rock", "jazz"]).iter(), 10);
        assert_eq!(TopK::fit(&a, &b), 1.0);
        let c = TopK::compute(texts(&["Rock", "Pop"]).iter(), 10);
        assert_eq!(TopK::fit(&c, &b), 0.0); // case-divergent vocabulary
    }

    #[test]
    fn empty_columns_are_neutral() {
        let e = TopK::compute(std::iter::empty(), 10);
        let t = TopK::compute(texts(&["x"]).iter(), 10);
        assert_eq!(TopK::fit(&e, &t), 1.0);
        assert_eq!(e.importance(), 0.0);
    }
}
