//! Constancy: inverse normalised Shannon entropy.

use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// *"The constancy is the inverse of Shannon's information entropy and is
/// useful to classify whether the values of an attribute come from a
/// discrete domain."* (§5.1, citing MacKay)
///
/// We normalise: `constancy = 1 − H(X) / log₂(n)` where `n` is the number
/// of non-null values, so a constant column scores 1 and an all-distinct
/// column scores 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constancy {
    /// Non-null value count.
    pub count: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Normalised constancy in `[0,1]`.
    pub constancy: f64,
}

impl Constancy {
    /// Compute the constancy of a column.
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        let mut count = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            count += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
        let distinct = counts.len();
        let constancy = if count <= 1 {
            1.0
        } else {
            let n = count as f64;
            // Sum the entropy terms in a deterministic order: float
            // addition is not associative, and summing in HashMap
            // iteration order makes the last bits of the result vary
            // between two computations of the same column.
            let mut freqs: Vec<usize> = counts.into_values().collect();
            freqs.sort_unstable();
            let entropy: f64 = freqs
                .into_iter()
                .map(|c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum();
            let max_entropy = n.log2();
            super::unit(1.0 - entropy / max_entropy)
        };
        Constancy {
            count,
            distinct,
            constancy,
        }
    }

    /// The `domainRestricted` predicate of Algorithm 1: values come from a
    /// small discrete domain — high constancy, or a small vocabulary that
    /// demonstrably repeats (each distinct value used ≥ 2× on average).
    /// A small column of unique values (names, titles, reference-table
    /// keys) does not qualify: nothing distinguishes it statistically
    /// from a sample of an open domain.
    pub fn domain_restricted(&self) -> bool {
        if self.count < 5 {
            return false; // too little evidence either way
        }
        self.constancy >= 0.5 || (self.distinct <= 20 && self.count >= 2 * self.distinct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    #[test]
    fn constant_column_scores_one() {
        let vals = texts(&["rock", "rock", "rock", "rock", "rock"]);
        let c = Constancy::compute(vals.iter());
        assert_eq!(c.constancy, 1.0);
        assert!(c.domain_restricted());
    }

    #[test]
    fn all_distinct_column_scores_zero() {
        let vals: Vec<Value> = (0..25).map(|i| Value::Text(format!("value-{i}"))).collect();
        let c = Constancy::compute(vals.iter());
        assert!(c.constancy.abs() < 1e-12);
        assert!(!c.domain_restricted());
    }

    #[test]
    fn unique_reference_column_is_not_restricted() {
        // One row per genre, never repeating: statistically a sample of
        // an open domain, so not classified as restricted on its own.
        let vals = texts(&["rock", "pop", "jazz", "blues", "soul", "folk"]);
        let c = Constancy::compute(vals.iter());
        assert!(!c.domain_restricted());
    }

    #[test]
    fn repeating_vocabulary_is_restricted() {
        let vals = texts(&["rock", "pop", "rock", "jazz", "pop", "rock", "jazz", "pop"]);
        let c = Constancy::compute(vals.iter());
        assert!(c.domain_restricted());
    }

    #[test]
    fn small_label_domain_is_restricted() {
        let genres: Vec<Value> = (0..100)
            .map(|i| Value::Text(["rock", "pop", "jazz"][i % 3].into()))
            .collect();
        let c = Constancy::compute(genres.iter());
        assert_eq!(c.distinct, 3);
        assert!(c.domain_restricted());
    }

    #[test]
    fn nulls_are_ignored() {
        let vals = [Value::Null, Value::Text("x".into()), Value::Null];
        let c = Constancy::compute(vals.iter());
        assert_eq!(c.count, 1);
        assert_eq!(c.constancy, 1.0);
    }

    #[test]
    fn empty_column_is_not_restricted() {
        let c = Constancy::compute(std::iter::empty());
        assert!(!c.domain_restricted());
    }
}
