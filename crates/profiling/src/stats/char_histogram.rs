//! Character histogram of a string attribute.

use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// *"Character histogram captures the relative occurrences of characters
/// in a string attribute."* (§5.1)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharHistogram {
    /// Character → relative frequency over all characters of all non-null
    /// values. `BTreeMap` keeps the report output deterministic.
    pub frequencies: BTreeMap<char, f64>,
    /// Total characters observed.
    pub total_chars: usize,
}

impl CharHistogram {
    /// Compute the histogram of a column (values rendered as text).
    pub fn compute<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut counts: BTreeMap<char, usize> = BTreeMap::new();
        let mut total_chars = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            for c in v.render().chars() {
                *counts.entry(c).or_insert(0) += 1;
                total_chars += 1;
            }
        }
        let frequencies = counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total_chars.max(1) as f64))
            .collect();
        CharHistogram {
            frequencies,
            total_chars,
        }
    }

    /// Importance: how *concentrated* the target's character usage is.
    /// An attribute drawing on a narrow alphabet (digits and `:` for
    /// durations) is strongly characterised by it; free prose is not.
    /// Capped at 0.5: which characters occur is a weaker signal than the
    /// pattern/length statistics (two title columns naming different
    /// things legitimately use different letters).
    pub fn importance(&self) -> f64 {
        if self.total_chars == 0 {
            return 0.0;
        }
        // Inverse normalised alphabet breadth: ≤8 distinct chars → max,
        // full printable ASCII → near 0.
        let distinct = self.frequencies.len() as f64;
        0.5 * super::unit(1.0 - ((distinct - 8.0) / 56.0)).min(1.0)
    }

    /// Fit: histogram intersection, `Σ min(p_src(c), p_tgt(c))` — 1 for
    /// identical distributions, 0 for disjoint alphabets.
    pub fn fit(source: &CharHistogram, target: &CharHistogram) -> f64 {
        if source.total_chars == 0 || target.total_chars == 0 {
            return 1.0;
        }
        let overlap: f64 = source
            .frequencies
            .iter()
            .filter_map(|(c, p)| target.frequencies.get(c).map(|q| p.min(*q)))
            .sum();
        super::unit(overlap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    #[test]
    fn frequencies_sum_to_one() {
        let vals = texts(&["ab", "ba", "aa"]);
        let h = CharHistogram::compute(vals.iter());
        let sum: f64 = h.frequencies.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.frequencies[&'a'] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_fit_one() {
        let h = CharHistogram::compute(texts(&["4:43", "6:55"]).iter());
        assert!((CharHistogram::fit(&h, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_alphabets_fit_zero() {
        let a = CharHistogram::compute(texts(&["abc"]).iter());
        let b = CharHistogram::compute(texts(&["123"]).iter());
        assert_eq!(CharHistogram::fit(&a, &b), 0.0);
    }

    #[test]
    fn narrow_alphabet_is_important() {
        let durations = CharHistogram::compute(texts(&["4:43", "6:55", "3:26"]).iter());
        assert!(durations.importance() > 0.45);
        let prose = CharHistogram::compute(
            texts(&["The quick brown fox jumps over the lazy dog 0123456789!?"]).iter(),
        );
        assert!(prose.importance() < 0.35);
    }

    #[test]
    fn empty_column_fits_anything() {
        let empty = CharHistogram::compute(std::iter::empty());
        let full = CharHistogram::compute(texts(&["xyz"]).iter());
        assert_eq!(CharHistogram::fit(&empty, &full), 1.0);
    }
}
