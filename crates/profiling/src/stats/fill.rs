//! Fill status: nulls and type-incompatible values.

use efes_relational::{DataType, Value};
use serde::{Deserialize, Serialize};

/// *"The fill status counts the null values in an attribute and the values
/// that cannot be cast to the target attribute's datatype."* (§5.1)
///
/// It backs two rules of Algorithm 1: `substantiallyFewerSourceValues`
/// (compare fill ratios) and `hasIncompatibleValues` (any uncastable
/// values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillStatus {
    /// Total number of values (rows) observed.
    pub total: usize,
    /// Number of NULLs among them.
    pub nulls: usize,
    /// Number of non-null values that cannot be cast to the reference
    /// datatype.
    pub incompatible: usize,
}

impl FillStatus {
    /// Compute the fill status of a column relative to `target_type` (the
    /// datatype of the corresponding target attribute).
    pub fn compute<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        target_type: DataType,
    ) -> Self {
        let mut total = 0;
        let mut nulls = 0;
        let mut incompatible = 0;
        for v in values {
            total += 1;
            if v.is_null() {
                nulls += 1;
            } else if target_type.try_cast(v).is_none() {
                incompatible += 1;
            }
        }
        FillStatus {
            total,
            nulls,
            incompatible,
        }
    }

    /// Fraction of values that are non-null and castable, in `[0,1]`.
    /// An empty column counts as completely filled.
    pub fn fill_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.total - self.nulls - self.incompatible) as f64 / self.total as f64
    }

    /// Fraction of values that are present (non-null), ignoring
    /// castability. An empty column counts as completely filled.
    pub fn presence_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.total - self.nulls) as f64 / self.total as f64
    }

    /// `true` iff at least one non-null value cannot be cast — the
    /// `hasIncompatibleValues` rule.
    pub fn has_incompatible(&self) -> bool {
        self.incompatible > 0
    }

    /// The `substantiallyFewerSourceValues` rule: the source's *presence*
    /// ratio falls short of the target's by more than `margin`
    /// (absolute). Castability is deliberately ignored here — values in
    /// the wrong representation are *present* and belong to the
    /// `hasIncompatibleValues` rule; counting them twice would add a
    /// phantom add-values task on top of the conversion task.
    pub fn substantially_fewer(source: &FillStatus, target: &FillStatus, margin: f64) -> bool {
        source.presence_ratio() + margin < target.presence_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_nulls_and_incompatibles() {
        let vals = [Value::Text("4:43".into()),
            Value::Null,
            Value::Text("12".into())];
        let fs = FillStatus::compute(vals.iter(), DataType::Integer);
        assert_eq!(fs.total, 3);
        assert_eq!(fs.nulls, 1);
        assert_eq!(fs.incompatible, 1); // "4:43" cannot be an integer
        assert!((fs.fill_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!(fs.has_incompatible());
    }

    #[test]
    fn integers_always_fit_text_targets() {
        // The worked example: "integers can always be cast to strings".
        let vals = [Value::Int(215900), Value::Int(238100)];
        let fs = FillStatus::compute(vals.iter(), DataType::Text);
        assert_eq!(fs.incompatible, 0);
        assert_eq!(fs.fill_ratio(), 1.0);
    }

    #[test]
    fn empty_column_is_full() {
        let fs = FillStatus::compute(std::iter::empty(), DataType::Text);
        assert_eq!(fs.fill_ratio(), 1.0);
        assert!(!fs.has_incompatible());
    }

    #[test]
    fn substantially_fewer_uses_margin() {
        let poor = FillStatus {
            total: 10,
            nulls: 5,
            incompatible: 0,
        };
        let full = FillStatus {
            total: 10,
            nulls: 0,
            incompatible: 0,
        };
        assert!(FillStatus::substantially_fewer(&poor, &full, 0.2));
        assert!(!FillStatus::substantially_fewer(&full, &poor, 0.2));
        assert!(!FillStatus::substantially_fewer(&full, &full, 0.2));
    }
}
