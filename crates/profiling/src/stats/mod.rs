//! The nine attribute statistics of paper §5.1.
//!
//! Each statistic type provides:
//!
//! * a `compute` constructor over a column's values,
//! * an `importance(&self) -> f64` in `[0,1]` — *"the importance score
//!   describes how important the statistic type at hand is for the target
//!   attribute"* — computed from the **target** attribute's statistic,
//! * a `fit(source, target) -> f64` in `[0,1]` — *"the fit value measures
//!   to what extent the source attribute statistics fit into the target
//!   attribute statistics"*.
//!
//! The concrete score formulas are not spelled out in the paper; the ones
//! here are chosen so that (a) self-fit is 1 (an attribute always fits
//! itself), (b) scores degrade smoothly with divergence, and (c) the
//! paper's worked example behaves as described: `songs.length`
//! (millisecond integers rendered as `<n>`) fits `tracks.duration`
//! (strings `m:ss`, dominant pattern `<n>:<n>`) far below the 0.9
//! threshold.

mod char_histogram;
mod constancy;
mod fill;
mod numeric;
mod string_length;
mod text_pattern;
mod top_k;

pub use char_histogram::CharHistogram;
pub use constancy::Constancy;
pub use fill::FillStatus;
pub use numeric::{NumericHistogram, NumericMean, ValueRange};
pub use string_length::StringLength;
pub use text_pattern::{pattern_of, TextPatterns};
pub use top_k::TopK;

pub(crate) use numeric::numeric_view;

/// Clamp a float into `[0,1]`, mapping NaN to 0.
pub(crate) fn unit(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

