//! Schema reverse engineering: discover constraints that hold in the data.
//!
//! Paper §3.1: *"Oftentimes constraints are not enforced at the schema
//! level but rather at the application level [...] techniques for schema
//! reverse engineering and data profiling can reconstruct missing schema
//! descriptions and constraints from the data."* This module provides that
//! completeness step: given a [`Database`], it finds not-null attributes,
//! unique columns / composite key candidates, unary inclusion dependencies
//! (foreign-key candidates) and single-LHS functional dependencies.

use efes_exec::{parallel_map, ExecutionMode};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{Constraint, ConstraintKind, ConstraintSet, Database, Value};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A unary inclusion dependency `from ⊆ to`: every non-null value of the
/// `from` column occurs in the `to` column. The classical precondition for
/// proposing a foreign key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionDependency {
    /// Dependent (referencing) side.
    pub from: (TableId, AttrId),
    /// Referenced side.
    pub to: (TableId, AttrId),
}

/// A single-LHS functional dependency `lhs → rhs` within one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    /// The table both attributes live in.
    pub table: TableId,
    /// Determinant attribute.
    pub lhs: AttrId,
    /// Dependent attribute.
    pub rhs: AttrId,
}

/// Knobs for constraint discovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryOptions {
    /// Discover NOT NULL for columns without observed nulls.
    pub not_null: bool,
    /// Discover single-column UNIQUE constraints.
    pub unique: bool,
    /// Discover composite (two-column) key candidates when no single
    /// column is unique.
    pub composite_keys: bool,
    /// Discover unary inclusion dependencies (FK candidates).
    pub inclusion_dependencies: bool,
    /// Discover single-LHS functional dependencies.
    pub functional_dependencies: bool,
    /// Minimum rows a table must have before constraints are proposed —
    /// tiny tables make every property hold vacuously.
    pub min_rows: usize,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions {
            not_null: true,
            unique: true,
            composite_keys: false,
            inclusion_dependencies: true,
            functional_dependencies: false,
            min_rows: 3,
        }
    }
}

/// Everything discovery found.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiscoveryResult {
    /// Constraints expressible in the relational model (not-null, unique,
    /// FK from INDs that point at a unique column).
    pub constraints: Vec<Constraint>,
    /// All unary INDs, including those not promoted to FKs.
    pub inclusion_dependencies: Vec<InclusionDependency>,
    /// All single-LHS FDs (when enabled).
    pub functional_dependencies: Vec<FunctionalDependency>,
}

impl DiscoveryResult {
    /// Merge the discovered constraints into an existing set, skipping any
    /// that duplicate what is already declared.
    pub fn merge_into(&self, declared: &mut ConstraintSet) {
        for c in &self.constraints {
            let dup = match &c.kind {
                ConstraintKind::NotNull { table, attr } => declared.is_not_null(*table, *attr),
                ConstraintKind::Unique { table, attrs } if attrs.len() == 1 => {
                    declared.is_unique(*table, attrs[0])
                }
                ConstraintKind::ForeignKey {
                    from_table,
                    from_attrs,
                    to_table,
                    to_attrs,
                } => declared.iter().any(|d| {
                    matches!(&d.kind, ConstraintKind::ForeignKey {
                        from_table: ft, from_attrs: fa, to_table: tt, to_attrs: ta,
                    } if ft == from_table && fa == from_attrs && tt == to_table && ta == to_attrs)
                }),
                _ => false,
            };
            if !dup {
                declared.push(c.clone());
            }
        }
    }
}

/// Run constraint discovery over a database.
pub fn discover_constraints(db: &Database, opts: &DiscoveryOptions) -> DiscoveryResult {
    discover_constraints_with(db, opts, ExecutionMode::from_env())
}

/// Like [`discover_constraints`], under an explicit [`ExecutionMode`]:
/// the per-column digests (null counts, distinct sets) dominate the cost
/// and are independent per column, so they fan out over worker threads.
/// The discovered constraint set is identical in either mode.
pub fn discover_constraints_with(
    db: &Database,
    opts: &DiscoveryOptions,
    mode: ExecutionMode,
) -> DiscoveryResult {
    let mut out = DiscoveryResult::default();

    // Per-column digests reused by all detectors.
    struct ColumnDigest {
        table: TableId,
        attr: AttrId,
        rows: usize,
        nulls: usize,
        distinct: HashSet<Value>,
        all_distinct: bool,
    }
    let columns: Vec<(TableId, AttrId)> = db
        .instance
        .iter_tables()
        .flat_map(|(tid, _)| {
            (0..db.schema.table(tid).arity()).map(move |ai| (tid, AttrId(ai)))
        })
        .collect();
    let digests: Vec<ColumnDigest> = parallel_map(mode, columns, |(tid, attr)| {
        let data = db.instance.table(tid);
        let mut nulls = 0usize;
        let mut distinct = HashSet::new();
        let mut all_distinct = true;
        for v in data.column(attr) {
            if v.is_null() {
                nulls += 1;
            } else if !distinct.insert(v.to_value()) {
                all_distinct = false;
            }
        }
        ColumnDigest {
            table: tid,
            attr,
            rows: data.len(),
            nulls,
            distinct,
            all_distinct,
        }
    });

    if opts.not_null {
        for d in &digests {
            if d.rows >= opts.min_rows && d.nulls == 0 && !db.constraints.is_not_null(d.table, d.attr)
            {
                out.constraints.push(Constraint::new(
                    format!(
                        "disc_{}_nn",
                        db.schema.qualified(d.table, d.attr).replace('.', "_")
                    ),
                    ConstraintKind::NotNull {
                        table: d.table,
                        attr: d.attr,
                    },
                ));
            }
        }
    }

    if opts.unique {
        for d in &digests {
            if d.rows >= opts.min_rows
                && d.all_distinct
                && d.nulls == 0
                && !db.constraints.is_unique(d.table, d.attr)
            {
                out.constraints.push(Constraint::new(
                    format!(
                        "disc_{}_uq",
                        db.schema.qualified(d.table, d.attr).replace('.', "_")
                    ),
                    ConstraintKind::Unique {
                        table: d.table,
                        attrs: vec![d.attr],
                    },
                ));
            }
        }
    }

    if opts.composite_keys {
        for (tid, data) in db.instance.iter_tables() {
            if data.len() < opts.min_rows {
                continue;
            }
            let arity = db.schema.table(tid).arity();
            let single_unique_exists = digests
                .iter()
                .any(|d| d.table == tid && d.all_distinct && d.nulls == 0 && d.rows >= opts.min_rows);
            if single_unique_exists {
                continue;
            }
            'pairs: for a in 0..arity {
                for b in (a + 1)..arity {
                    let mut seen: HashSet<(Value, Value)> = HashSet::with_capacity(data.len());
                    let mut ok = true;
                    for row in data.rows() {
                        let key = (row[a].clone(), row[b].clone());
                        if key.0.is_null() || key.1.is_null() || !seen.insert(key) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.constraints.push(Constraint::new(
                            format!("disc_{}_composite_uq", db.schema.table(tid).name),
                            ConstraintKind::Unique {
                                table: tid,
                                attrs: vec![AttrId(a), AttrId(b)],
                            },
                        ));
                        break 'pairs; // one candidate per table suffices
                    }
                }
            }
        }
    }

    if opts.inclusion_dependencies {
        // Group distinct sets by datatype to skip hopeless comparisons.
        for from in &digests {
            if from.rows < opts.min_rows || from.distinct.is_empty() {
                continue;
            }
            for to in &digests {
                if (from.table, from.attr) == (to.table, to.attr)
                    || to.distinct.is_empty()
                    || from.distinct.len() > to.distinct.len()
                {
                    continue;
                }
                let from_type = db.schema.table(from.table).attribute(from.attr).datatype;
                let to_type = db.schema.table(to.table).attribute(to.attr).datatype;
                if from_type != to_type {
                    continue;
                }
                if from.distinct.iter().all(|v| to.distinct.contains(v)) {
                    out.inclusion_dependencies.push(InclusionDependency {
                        from: (from.table, from.attr),
                        to: (to.table, to.attr),
                    });
                    // Promote to an FK candidate when the referenced column
                    // is key-like (all distinct, no nulls) and the IND is
                    // not a trivial self-containment within one table.
                    if to.all_distinct && to.nulls == 0 && from.table != to.table {
                        out.constraints.push(Constraint::new(
                            format!(
                                "disc_{}_to_{}_fk",
                                db.schema.qualified(from.table, from.attr).replace('.', "_"),
                                db.schema.qualified(to.table, to.attr).replace('.', "_")
                            ),
                            ConstraintKind::ForeignKey {
                                from_table: from.table,
                                from_attrs: vec![from.attr],
                                to_table: to.table,
                                to_attrs: vec![to.attr],
                            },
                        ));
                    }
                }
            }
        }
    }

    if opts.functional_dependencies {
        for (tid, data) in db.instance.iter_tables() {
            if data.len() < opts.min_rows {
                continue;
            }
            let arity = db.schema.table(tid).arity();
            for lhs in 0..arity {
                for rhs in 0..arity {
                    if lhs == rhs {
                        continue;
                    }
                    let mut mapping: HashMap<&Value, &Value> = HashMap::new();
                    let mut holds = true;
                    for row in data.rows() {
                        let l = &row[lhs];
                        if l.is_null() {
                            continue;
                        }
                        match mapping.get(l) {
                            Some(prev) if *prev != &row[rhs] => {
                                holds = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                mapping.insert(l, &row[rhs]);
                            }
                        }
                    }
                    // Skip trivial FDs from unique columns: everything is
                    // determined by a key; reporting those adds noise.
                    let lhs_unique = digests
                        .iter()
                        .any(|d| d.table == tid && d.attr == AttrId(lhs) && d.all_distinct);
                    if holds && !lhs_unique {
                        out.functional_dependencies.push(FunctionalDependency {
                            table: tid,
                            lhs: AttrId(lhs),
                            rhs: AttrId(rhs),
                        });
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn db() -> Database {
        DatabaseBuilder::new("d")
            .table("artists", |t| {
                t.attr("id", DataType::Integer).attr("name", DataType::Text)
            })
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("artist", DataType::Integer)
                    .attr("genre", DataType::Text)
            })
            .rows(
                "artists",
                vec![
                    vec![1.into(), "Skynyrd".into()],
                    vec![2.into(), "Eminem".into()],
                    vec![3.into(), "Adele".into()],
                ],
            )
            .rows(
                "albums",
                vec![
                    vec![10.into(), 1.into(), "rock".into()],
                    vec![11.into(), 1.into(), "rock".into()],
                    vec![12.into(), 2.into(), "rap".into()],
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn discovers_not_null_and_unique() {
        let r = discover_constraints(&db(), &DiscoveryOptions::default());
        let kinds: Vec<String> = r.constraints.iter().map(|c| c.name.clone()).collect();
        assert!(kinds.iter().any(|n| n == "disc_artists_id_nn"));
        assert!(kinds.iter().any(|n| n == "disc_artists_id_uq"));
        assert!(kinds.iter().any(|n| n == "disc_albums_genre_nn"));
        // genre repeats, so no unique constraint on it
        assert!(!kinds.iter().any(|n| n == "disc_albums_genre_uq"));
    }

    #[test]
    fn discovers_fk_via_inclusion_dependency() {
        let r = discover_constraints(&db(), &DiscoveryOptions::default());
        assert!(r
            .constraints
            .iter()
            .any(|c| c.name == "disc_albums_artist_to_artists_id_fk"));
        assert!(r
            .inclusion_dependencies
            .iter()
            .any(|ind| ind.from == (TableId(1), AttrId(1)) && ind.to == (TableId(0), AttrId(0))));
    }

    #[test]
    fn small_tables_are_skipped() {
        let tiny = DatabaseBuilder::new("tiny")
            .table("t", |t| t.attr("a", DataType::Integer))
            .rows("t", vec![vec![1.into()]])
            .build()
            .unwrap();
        let r = discover_constraints(&tiny, &DiscoveryOptions::default());
        assert!(r.constraints.is_empty());
    }

    #[test]
    fn merge_skips_already_declared() {
        let mut db = db();
        let r = discover_constraints(&db, &DiscoveryOptions::default());
        let before = r.constraints.len();
        r.merge_into(&mut db.constraints);
        let declared = db.constraints.len();
        // Re-running discovery now adds nothing new.
        let r2 = discover_constraints(&db, &DiscoveryOptions::default());
        let mut cs = db.constraints.clone();
        r2.merge_into(&mut cs);
        assert_eq!(cs.len(), declared);
        assert!(before > 0);
    }

    #[test]
    fn functional_dependencies_found_when_enabled() {
        let opts = DiscoveryOptions {
            functional_dependencies: true,
            ..DiscoveryOptions::default()
        };
        let r = discover_constraints(&db(), &opts);
        // artist -> genre holds in the sample (1→rock, 2→rap).
        assert!(r
            .functional_dependencies
            .iter()
            .any(|fd| fd.table == TableId(1) && fd.lhs == AttrId(1) && fd.rhs == AttrId(2)));
    }

    #[test]
    fn composite_keys_found_when_no_single_key() {
        let db = DatabaseBuilder::new("c")
            .table("credits", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
            })
            .rows(
                "credits",
                vec![
                    vec![1.into(), 1.into()],
                    vec![1.into(), 2.into()],
                    vec![2.into(), 1.into()],
                ],
            )
            .build()
            .unwrap();
        let opts = DiscoveryOptions {
            composite_keys: true,
            ..DiscoveryOptions::default()
        };
        let r = discover_constraints(&db, &opts);
        assert!(r
            .constraints
            .iter()
            .any(|c| matches!(&c.kind, ConstraintKind::Unique { attrs, .. } if attrs.len() == 2)));
    }
}
