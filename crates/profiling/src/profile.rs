//! Attribute profiles: all statistics of one column, plus the
//! importance-weighted fit combination of §5.1.

use crate::kernel;
use crate::stats::{
    CharHistogram, Constancy, FillStatus, NumericHistogram, NumericMean, StringLength,
    TextPatterns, TopK, ValueRange,
};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{columnar_enabled, Column, DataType, Database, Value};
use serde::{Deserialize, Serialize};

/// One statistic's contribution to the overall fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitComponent {
    /// Statistic name (e.g. `"text-patterns"`).
    pub statistic: String,
    /// Importance weight taken from the target's statistic.
    pub importance: f64,
    /// Fit of the source statistic into the target statistic.
    pub fit: f64,
}

/// The weighted-fit result: `f = Σ i·f / Σ i` over all applied statistics
/// (§5.1's formula, normalised so that weights form a convex combination).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitBreakdown {
    /// Per-statistic contributions.
    pub components: Vec<FitComponent>,
    /// The overall fit in `[0,1]`.
    pub overall: f64,
}

/// All statistics of a single attribute's column, computed against a
/// reference (target) datatype.
///
/// ```
/// use efes_profiling::AttributeProfile;
/// use efes_relational::{DataType, Value};
///
/// // The paper's Example 3.3: m:ss duration strings vs millisecond ints.
/// // (Columns need ~20+ values: tiny samples are confidence-discounted.)
/// let durations: Vec<Value> = (0..24)
///     .map(|i| Value::from(format!("{}:{:02}", 3 + i % 5, (i * 13) % 60)))
///     .collect();
/// let millis: Vec<Value> = (0..24).map(|i| Value::from(180_000i64 + i * 4321)).collect();
///
/// let target = AttributeProfile::compute(durations.iter(), DataType::Text);
/// let source = AttributeProfile::compute(millis.iter(), DataType::Text);
/// let fit = AttributeProfile::fit_against(&source, &target);
/// assert!(fit.overall < 0.9, "flagged as a value heterogeneity");
/// ```
///
/// The paper computes, per correspondence, statistics for both ends with
/// *"the target attribute's datatype designating which exact statistic
/// types to use"*. [`AttributeProfile::compute`] therefore takes that
/// designated type, not the column's own declared type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeProfile {
    /// The datatype the statistics were selected for.
    pub reference_type: DataType,
    /// Fill status (always computed).
    pub fill: FillStatus,
    /// Constancy (always computed).
    pub constancy: Constancy,
    /// Text patterns (string-designated attributes).
    pub text_patterns: Option<TextPatterns>,
    /// Character histogram (string-designated attributes).
    pub char_histogram: Option<CharHistogram>,
    /// String lengths (string-designated attributes).
    pub string_length: Option<StringLength>,
    /// Mean/σ (numeric-designated attributes).
    pub mean: Option<NumericMean>,
    /// Equi-width histogram (numeric-designated attributes).
    pub histogram: Option<NumericHistogram>,
    /// Min/max (numeric-designated attributes).
    pub range: Option<ValueRange>,
    /// Top-k values (always computed; weighted by domain-restriction).
    pub top_k: TopK,
}

impl AttributeProfile {
    /// Profile a column (an iterator of values) against `reference_type`.
    ///
    /// Computed by the fused single-pass kernel — one walk of the
    /// iterator feeds every applicable statistic. The output is
    /// bit-identical to the retained multi-pass reference,
    /// [`AttributeProfile::compute_multipass`] (the property tests in
    /// this crate compare them field for field).
    pub fn compute<'a, I>(values: I, reference_type: DataType) -> Self
    where
        I: IntoIterator<Item = &'a Value>,
    {
        kernel::profile_values(values.into_iter(), reference_type)
    }

    /// The legacy multi-pass implementation: one full walk of the column
    /// per statistic, exactly as each statistic's own `compute` defines
    /// it. Retained as the executable specification the fused kernel is
    /// differentially tested (and benchmarked) against.
    pub fn compute_multipass<'a, I>(values: I, reference_type: DataType) -> Self
    where
        I: IntoIterator<Item = &'a Value>,
        I::IntoIter: Clone,
    {
        let it = values.into_iter();
        let fill = FillStatus::compute(it.clone(), reference_type);
        let constancy = Constancy::compute(it.clone());
        let top_k = TopK::compute(it.clone(), TopK::DEFAULT_K);
        let mut p = AttributeProfile {
            reference_type,
            fill,
            constancy,
            text_patterns: None,
            char_histogram: None,
            string_length: None,
            mean: None,
            histogram: None,
            range: None,
            top_k,
        };
        match reference_type {
            DataType::Text => {
                p.text_patterns = Some(TextPatterns::compute(it.clone()));
                p.char_histogram = Some(CharHistogram::compute(it.clone()));
                p.string_length = Some(StringLength::compute(it));
            }
            DataType::Integer | DataType::Float => {
                p.mean = Some(NumericMean::compute(it.clone()));
                p.histogram = Some(NumericHistogram::compute(
                    it.clone(),
                    NumericHistogram::DEFAULT_BUCKETS,
                ));
                p.range = Some(ValueRange::compute(it));
            }
            DataType::Boolean => {}
        }
        p
    }

    /// Profile a typed [`Column`] directly, using the kernel's
    /// variant-specialised loops (dictionary-weighted statistics for
    /// text columns, machine-word loops for numeric ones).
    pub fn compute_columnar(column: &Column, reference_type: DataType) -> Self {
        kernel::profile_column(column, reference_type)
    }

    /// Profile a concrete attribute of a database.
    ///
    /// When columnar storage is enabled (the default — see
    /// [`efes_relational::COLUMNAR_ENV_VAR`]) this profiles the typed
    /// column store; with `EFES_COLUMNAR=off` it falls back to the
    /// legacy multi-pass walk over the row-major rows.
    pub fn of_attribute(
        db: &Database,
        table: TableId,
        attr: AttrId,
        reference_type: DataType,
    ) -> Self {
        let ctx = efes_exec::RunContext::unbounded();
        let ck = ctx.checkpoint();
        Self::of_attribute_ctx(db, table, attr, reference_type, &ck)
            .expect("unbounded context never cancels")
    }

    /// [`of_attribute`](Self::of_attribute) with a cancellation
    /// [`Checkpoint`](efes_exec::Checkpoint) ticked once per cell, so a
    /// cancelled run aborts the walk within one check interval. The
    /// legacy multi-pass fallback (`EFES_COLUMNAR=off`) only checks at
    /// entry — it is an escape hatch, not a serving path.
    pub fn of_attribute_ctx(
        db: &Database,
        table: TableId,
        attr: AttrId,
        reference_type: DataType,
        ck: &efes_exec::Checkpoint<'_>,
    ) -> Result<Self, efes_exec::Cancelled> {
        let data = db.instance.table(table);
        if columnar_enabled() {
            match data.column_store(attr) {
                Some(col) => kernel::profile_column_ctx(col, reference_type, ck),
                None => Ok(Self::compute(std::iter::empty(), reference_type)),
            }
        } else {
            ck.check_now()?;
            let column: Vec<&Value> = data.rows().iter().map(|row| &row[attr.0]).collect();
            Ok(Self::compute_multipass(column.iter().copied(), reference_type))
        }
    }

    /// The `domainRestricted` predicate of Algorithm 1.
    pub fn domain_restricted(&self) -> bool {
        self.constancy.domain_restricted()
    }

    /// The importance-weighted fit of `source` into `target` (§5.1):
    /// `f = Σ_τ i(S_t(τ)) · f(S_s(τ), S_t(τ)) / Σ_τ i(S_t(τ))`.
    ///
    /// Only statistics present on both profiles participate. If the target
    /// has no characteristic statistic at all (all importances 0), the fit
    /// defaults to 1: nothing observable to violate.
    pub fn fit_against(source: &AttributeProfile, target: &AttributeProfile) -> FitBreakdown {
        let mut components = Vec::new();

        if let (Some(s), Some(t)) = (&source.text_patterns, &target.text_patterns) {
            components.push(FitComponent {
                statistic: "text-patterns".to_owned(),
                importance: t.importance(),
                fit: TextPatterns::fit(s, t),
            });
        }
        if let (Some(s), Some(t)) = (&source.char_histogram, &target.char_histogram) {
            components.push(FitComponent {
                statistic: "char-histogram".to_owned(),
                importance: t.importance(),
                fit: CharHistogram::fit(s, t),
            });
        }
        if let (Some(s), Some(t)) = (&source.string_length, &target.string_length) {
            components.push(FitComponent {
                statistic: "string-length".to_owned(),
                importance: t.importance(),
                fit: StringLength::fit(s, t),
            });
        }
        if let (Some(s), Some(t)) = (&source.mean, &target.mean) {
            components.push(FitComponent {
                statistic: "mean".to_owned(),
                importance: t.importance(),
                fit: NumericMean::fit(s, t),
            });
        }
        if let (Some(s), Some(t)) = (&source.histogram, &target.histogram) {
            components.push(FitComponent {
                statistic: "histogram".to_owned(),
                importance: t.importance(),
                fit: NumericHistogram::fit(s, t),
            });
        }
        if let (Some(s), Some(t)) = (&source.range, &target.range) {
            components.push(FitComponent {
                statistic: "value-range".to_owned(),
                importance: t.importance(),
                fit: ValueRange::fit(s, t),
            });
        }
        // Top-k participates for text-designated attributes when either
        // side is domain-restricted: a shared controlled vocabulary is
        // then the defining characteristic. Numeric attributes are
        // excluded — two samples of the same numeric domain (years,
        // ratings) legitimately disagree on exact values while mean/
        // range/histogram already capture their compatibility.
        if target.reference_type == DataType::Text
            && (source.domain_restricted() || target.domain_restricted())
        {
            components.push(FitComponent {
                statistic: "top-k".to_owned(),
                importance: target.top_k.importance(),
                fit: TopK::fit(&source.top_k, &target.top_k),
            });
        }

        // Combine as importance-discounted penalties: each statistic can
        // only hurt the fit to the extent it is characteristic for the
        // target (`1 − i·(1−f)`), and the overall fit is their mean. A
        // plain importance-weighted average would let weak statistics
        // dominate attributes that have *no* strong characteristics
        // (free-text titles), flagging legitimately compatible columns;
        // with discounted penalties such targets converge to fit ≈ 1 —
        // "nothing important to violate" — which is the semantics §5.1
        // describes ("to what extent the source attribute fulfills the
        // most important characteristics of the target attribute").
        let overall = if components.is_empty() {
            1.0
        } else {
            components
                .iter()
                .map(|c| 1.0 - c.importance * (1.0 - c.fit))
                .sum::<f64>()
                / components.len() as f64
        };
        // Sample-size confidence: a handful of values cannot establish a
        // heterogeneity — discount the penalty toward neutral (fit 1)
        // when either column holds fewer than 20 non-null values. Gross
        // mismatches (raw fit ≈ 0) still fall below the 0.9 threshold at
        // 8+ values; mild statistical noise does not.
        let min_count = source.constancy.count.min(target.constancy.count) as f64;
        let confidence = (min_count / 20.0).clamp(0.0, 1.0);
        let overall = 1.0 - confidence * (1.0 - overall);
        FitBreakdown {
            components,
            overall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::Text((*s).into())).collect()
    }

    fn durations() -> Vec<Value> {
        texts(&["4:43", "6:55", "3:26", "5:12", "2:58", "4:01", "7:33", "3:44"])
    }

    fn millis() -> Vec<Value> {
        vec![
            Value::Int(215900),
            Value::Int(238100),
            Value::Int(218200),
            Value::Int(312000),
            Value::Int(178000),
        ]
    }

    #[test]
    fn paper_example_length_vs_duration_fits_below_threshold() {
        // tracks.duration is Text, so Text designates the statistics.
        let target = AttributeProfile::compute(durations().iter(), DataType::Text);
        let source = AttributeProfile::compute(millis().iter(), DataType::Text);
        let fit = AttributeProfile::fit_against(&source, &target);
        assert!(
            fit.overall < 0.9,
            "millisecond lengths must not fit m:ss durations (got {})",
            fit.overall
        );
    }

    #[test]
    fn self_fit_is_essentially_one() {
        let target = AttributeProfile::compute(durations().iter(), DataType::Text);
        let fit = AttributeProfile::fit_against(&target, &target);
        assert!(fit.overall > 0.95, "self fit was {}", fit.overall);
    }

    #[test]
    fn numeric_profiles_use_numeric_statistics() {
        let p = AttributeProfile::compute(millis().iter(), DataType::Integer);
        assert!(p.mean.is_some() && p.range.is_some() && p.histogram.is_some());
        assert!(p.text_patterns.is_none());
    }

    #[test]
    fn text_profiles_use_string_statistics() {
        let p = AttributeProfile::compute(durations().iter(), DataType::Text);
        assert!(p.text_patterns.is_some() && p.char_histogram.is_some());
        assert!(p.mean.is_none());
    }

    #[test]
    fn compatible_numeric_columns_fit() {
        let a: Vec<Value> = (1990..2015).map(Value::Int).collect();
        let b: Vec<Value> = (1985..2012).map(Value::Int).collect();
        let ta = AttributeProfile::compute(a.iter(), DataType::Integer);
        let tb = AttributeProfile::compute(b.iter(), DataType::Integer);
        let fit = AttributeProfile::fit_against(&tb, &ta);
        assert!(fit.overall > 0.9, "year ranges should fit (got {})", fit.overall);
    }

    #[test]
    fn boolean_targets_have_neutral_fit() {
        let a = [Value::Bool(true), Value::Bool(false)];
        let ta = AttributeProfile::compute(a.iter(), DataType::Boolean);
        let tb = AttributeProfile::compute(a.iter(), DataType::Boolean);
        let fit = AttributeProfile::fit_against(&tb, &ta);
        // Booleans are domain-restricted, so top-k should carry the fit.
        assert!(fit.overall > 0.99);
    }

    #[test]
    fn breakdown_components_are_reported() {
        let target = AttributeProfile::compute(durations().iter(), DataType::Text);
        let source = AttributeProfile::compute(millis().iter(), DataType::Text);
        let fit = AttributeProfile::fit_against(&source, &target);
        let names: Vec<&str> = fit.components.iter().map(|c| c.statistic.as_str()).collect();
        assert!(names.contains(&"text-patterns"));
        assert!(names.contains(&"string-length"));
    }
}
