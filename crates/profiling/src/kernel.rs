//! The fused single-pass profiler kernel.
//!
//! [`AttributeProfile::compute`](crate::AttributeProfile::compute)
//! historically walked its column once *per statistic* — up to eight full
//! passes, each re-rendering every value. This module computes all nine
//! §5.1 statistics in **one** loop over the column: a bank of accumulators
//! (fill counters, a shared value-count map feeding both constancy and
//! top-k, a fused pattern/character/length walk for text, a numeric
//! buffer shared by mean, range and histogram) is fed per cell and
//! finalised afterwards.
//!
//! Two entry points:
//!
//! * [`profile_values`] streams over row-major `&Value`s — the drop-in
//!   replacement for the legacy multi-pass code;
//! * [`profile_column`] runs variant-specialised loops over a typed
//!   [`Column`]: integer/float columns read machine words, text columns
//!   compute the expensive per-string statistics once per *distinct*
//!   value (weighted by the dictionary counts) instead of once per row.
//!
//! **Bit-identical output is a hard invariant** (the serve byte-match
//! tests pin it): integer accumulations may be reordered freely, but
//! every floating-point reduction preserves the exact operation sequence
//! of the legacy per-statistic code — string lengths and numeric values
//! are buffered in row order and reduced with the same expressions. The
//! property tests in `tests/proptests.rs` assert field-for-field
//! equality against the retained multi-pass reference implementation.

use crate::profile::AttributeProfile;
use crate::stats::{
    numeric_view, CharHistogram, Constancy, FillStatus, NumericHistogram, NumericMean,
    StringLength, TextPatterns, TopK, ValueRange,
};
use efes_exec::{Cancelled, Checkpoint, RunContext};
use efes_relational::column::{NullBitmap, NULL_CODE};
use efes_relational::{Column, DataType, TextColumn, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Accumulator for the three string statistics (text patterns, character
/// histogram, string length), fed one rendered value at a time. The
/// pattern abstraction, the character counts and the character length
/// are all gathered in a single `chars()` walk.
///
/// The accumulator is a monoid: `default()` is the identity and
/// [`TextAcc::merge`] combines two accumulators built over consecutive
/// row ranges into the accumulator of the concatenation. The pattern and
/// character maps merge by integer addition (order-free); the row-order
/// `lengths` buffer merges by concatenation, which is why merge order
/// must follow row order.
#[derive(Default, Clone, Debug)]
pub(crate) struct TextAcc {
    patterns: HashMap<String, usize>,
    chars: BTreeMap<char, usize>,
    total_chars: usize,
    /// Per-row character lengths, in row order. Kept as the legacy code
    /// kept them so the mean/σ reduction replays identical float ops.
    lengths: Vec<f64>,
    /// Non-null values observed (the `total` of [`TextPatterns`]).
    total: usize,
    /// Scratch for the pattern under construction; allocation only
    /// happens when a *new* distinct pattern is first seen.
    pattern_buf: String,
}

impl TextAcc {
    /// Feed one per-row value: observe it once and record its length.
    pub(crate) fn add_row(&mut self, s: &str) {
        let len = self.observe(s, 1);
        self.lengths.push(len as f64);
    }

    /// Fold `other` (built over the rows immediately following this
    /// accumulator's rows) into `self`.
    pub(crate) fn merge(&mut self, other: TextAcc) {
        self.total += other.total;
        self.total_chars += other.total_chars;
        for (pattern, n) in other.patterns {
            if let Some(slot) = self.patterns.get_mut(pattern.as_str()) {
                *slot += n;
            } else {
                self.patterns.insert(pattern, n);
            }
        }
        for (c, n) in other.chars {
            *self.chars.entry(c).or_insert(0) += n;
        }
        self.lengths.extend(other.lengths);
    }

    /// Pre-size the row-order length buffer for a replay of `n` rows.
    pub(crate) fn reserve_lengths(&mut self, n: usize) {
        self.lengths.reserve(n);
    }

    /// Append one row's character length (the dictionary paths replay
    /// per-row lengths from a per-code table instead of re-walking).
    pub(crate) fn push_length(&mut self, len: f64) {
        self.lengths.push(len);
    }

    /// Feed one *distinct* value occurring `weight` times; returns its
    /// character length. Per-row lengths are NOT recorded — the caller
    /// (the dictionary path) replays them in row order itself, keeping
    /// the mean/σ float reductions bit-identical to the legacy code.
    pub(crate) fn observe(&mut self, s: &str, weight: usize) -> usize {
        self.total += weight;
        self.pattern_buf.clear();
        let mut mode: u8 = 0; // 0 = none, 1 = digits, 2 = letters (as pattern_of)
        let mut len = 0usize;
        for c in s.chars() {
            len += 1;
            *self.chars.entry(c).or_insert(0) += weight;
            if c.is_ascii_digit() {
                if mode != 1 {
                    self.pattern_buf.push_str("<n>");
                    mode = 1;
                }
            } else if c.is_alphabetic() {
                if mode != 2 {
                    self.pattern_buf.push_str("<w>");
                    mode = 2;
                }
            } else {
                self.pattern_buf.push(c);
                mode = 0;
            }
        }
        self.total_chars += len * weight;
        if let Some(n) = self.patterns.get_mut(self.pattern_buf.as_str()) {
            *n += weight;
        } else {
            self.patterns.insert(self.pattern_buf.clone(), weight);
        }
        len
    }

    pub(crate) fn finalize(self) -> (TextPatterns, CharHistogram, StringLength) {
        let mut counts: Vec<(String, usize)> = self.patterns.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let patterns = TextPatterns {
            counts,
            total: self.total,
        };
        let frequencies = self
            .chars
            .into_iter()
            .map(|(c, n)| (c, n as f64 / self.total_chars.max(1) as f64))
            .collect();
        let histogram = CharHistogram {
            frequencies,
            total_chars: self.total_chars,
        };
        (patterns, histogram, string_length_of(&self.lengths))
    }
}

/// Replays `StringLength::compute`'s reduction over pre-gathered row-order
/// lengths.
pub(crate) fn string_length_of(lengths: &[f64]) -> StringLength {
    let count = lengths.len();
    if count == 0 {
        return StringLength {
            count,
            mean: 0.0,
            stddev: 0.0,
        };
    }
    let mean = lengths.iter().sum::<f64>() / count as f64;
    let var = lengths.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / count as f64;
    StringLength {
        count,
        mean,
        stddev: var.sqrt(),
    }
}

/// Replays the three numeric statistics over pre-gathered row-order
/// numeric views, with the exact float-op sequences of their `compute`s.
pub(crate) fn numeric_stats_of(nums: &[f64]) -> (NumericMean, NumericHistogram, ValueRange) {
    let count = nums.len();
    let mean = if count == 0 {
        NumericMean {
            count,
            mean: 0.0,
            stddev: 0.0,
        }
    } else {
        let m = nums.iter().sum::<f64>() / count as f64;
        let var = nums.iter().map(|x| (x - m).powi(2)).sum::<f64>() / count as f64;
        NumericMean {
            count,
            mean: m,
            stddev: var.sqrt(),
        }
    };
    let n_buckets = NumericHistogram::DEFAULT_BUCKETS;
    let histogram = if count == 0 {
        NumericHistogram {
            lo: 0.0,
            hi: 0.0,
            buckets: vec![0.0; n_buckets],
            count,
        }
    } else {
        let lo = nums.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / n_buckets as f64).max(f64::MIN_POSITIVE);
        let mut buckets = vec![0.0; n_buckets];
        for x in nums {
            let idx = (((x - lo) / width) as usize).min(n_buckets - 1);
            buckets[idx] += 1.0;
        }
        for b in &mut buckets {
            *b /= count as f64;
        }
        NumericHistogram {
            lo,
            hi,
            buckets,
            count,
        }
    };
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for x in nums {
        min = min.min(*x);
        max = max.max(*x);
    }
    let range = ValueRange {
        count,
        min: (count > 0).then_some(min),
        max: (count > 0).then_some(max),
    };
    (mean, histogram, range)
}

/// Replays `Constancy::compute`'s entropy reduction over unsorted
/// per-distinct-value frequencies.
pub(crate) fn constancy_of(count: usize, mut freqs: Vec<usize>) -> Constancy {
    let distinct = freqs.len();
    let constancy = if count <= 1 {
        1.0
    } else {
        let n = count as f64;
        freqs.sort_unstable();
        let entropy: f64 = freqs
            .into_iter()
            .map(|c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        let max_entropy = n.log2();
        crate::stats::unit(1.0 - entropy / max_entropy)
    };
    Constancy {
        count,
        distinct,
        constancy,
    }
}

/// Sorts `(value, count)` pairs the way `TopK::compute` does and keeps
/// the head.
pub(crate) fn top_k_of(mut all: Vec<(Value, usize)>, total: usize, k: usize) -> TopK {
    all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(k);
    TopK { values: all, total }
}

pub(crate) fn assemble(
    reference_type: DataType,
    fill: FillStatus,
    constancy: Constancy,
    top_k: TopK,
    text: Option<TextAcc>,
    nums: Option<Vec<f64>>,
) -> AttributeProfile {
    let mut p = AttributeProfile {
        reference_type,
        fill,
        constancy,
        text_patterns: None,
        char_histogram: None,
        string_length: None,
        mean: None,
        histogram: None,
        range: None,
        top_k,
    };
    if let Some(acc) = text {
        let (patterns, chars, lengths) = acc.finalize();
        p.text_patterns = Some(patterns);
        p.char_histogram = Some(chars);
        p.string_length = Some(lengths);
    }
    if let Some(nums) = nums {
        let (mean, histogram, range) = numeric_stats_of(&nums);
        p.mean = Some(mean);
        p.histogram = Some(histogram);
        p.range = Some(range);
    }
    p
}

/// Fused single-pass profile over row-major values — all applicable
/// statistics from one walk of the iterator.
pub fn profile_values<'a, I>(values: I, reference_type: DataType) -> AttributeProfile
where
    I: Iterator<Item = &'a Value>,
{
    let ctx = RunContext::unbounded();
    let ck = ctx.checkpoint();
    profile_values_ctx(values, reference_type, &ck).expect("unbounded context never cancels")
}

/// [`profile_values`] with a cancellation [`Checkpoint`] ticked once per
/// row: the walk aborts with `Err(Cancelled)` within one check interval
/// of a cancellation request, discarding all accumulator state. The
/// checkpoint is purely abortive — when it never fires, the output is
/// identical to [`profile_values`].
pub fn profile_values_ctx<'a, I>(
    values: I,
    reference_type: DataType,
    ck: &Checkpoint<'_>,
) -> Result<AttributeProfile, Cancelled>
where
    I: Iterator<Item = &'a Value>,
{
    let text_designated = reference_type == DataType::Text;
    let numeric_designated = reference_type.is_numeric();

    let mut total = 0usize;
    let mut nulls = 0usize;
    let mut incompatible = 0usize;
    let mut counts: HashMap<&Value, usize> = HashMap::new();
    let mut text = text_designated.then(TextAcc::default);
    let mut nums = numeric_designated.then(Vec::new);
    let mut render_buf = String::new();

    for v in values {
        ck.tick()?;
        total += 1;
        if v.is_null() {
            nulls += 1;
            continue;
        }
        if reference_type.try_cast(v).is_none() {
            incompatible += 1;
        }
        *counts.entry(v).or_insert(0) += 1;
        if let Some(acc) = &mut text {
            // Render exactly once (the legacy passes rendered three
            // times); text payloads are borrowed, everything else goes
            // through a reused scratch buffer with `Value::render`'s
            // exact formatting.
            let s: &str = match v {
                Value::Text(s) => s,
                Value::Int(i) => {
                    render_buf.clear();
                    write!(render_buf, "{i}").expect("write to String");
                    &render_buf
                }
                Value::Float(f) => {
                    render_buf.clear();
                    write!(render_buf, "{f}").expect("write to String");
                    &render_buf
                }
                Value::Bool(b) => {
                    if *b {
                        "true"
                    } else {
                        "false"
                    }
                }
                Value::Null => unreachable!(),
            };
            acc.add_row(s);
        } else if let Some(nums) = &mut nums {
            if let Some(x) = numeric_view(v) {
                nums.push(x);
            }
        }
    }

    let non_null = total - nulls;
    let freqs: Vec<usize> = counts.values().copied().collect();
    let top: Vec<(Value, usize)> = counts.into_iter().map(|(v, c)| (v.clone(), c)).collect();
    Ok(assemble(
        reference_type,
        FillStatus {
            total,
            nulls,
            incompatible,
        },
        constancy_of(non_null, freqs),
        top_k_of(top, non_null, TopK::DEFAULT_K),
        text,
        nums,
    ))
}

/// Fused single-pass profile over a typed [`Column`], with
/// variant-specialised loops.
pub fn profile_column(col: &Column, reference_type: DataType) -> AttributeProfile {
    let ctx = RunContext::unbounded();
    let ck = ctx.checkpoint();
    profile_column_ctx(col, reference_type, &ck).expect("unbounded context never cancels")
}

/// [`profile_column`] with a cancellation [`Checkpoint`] ticked once per
/// cell (per distinct value on the dictionary fast path); see
/// [`profile_values_ctx`] for the abort semantics.
pub fn profile_column_ctx(
    col: &Column,
    reference_type: DataType,
    ck: &Checkpoint<'_>,
) -> Result<AttributeProfile, Cancelled> {
    match col {
        Column::Mixed(values) => profile_values_ctx(values.iter(), reference_type, ck),
        Column::Text(tc) => profile_text_column(tc, reference_type, ck),
        Column::Int { values, nulls } => {
            if reference_type == DataType::Text {
                profile_primitive_column(reference_type, values.len(), nulls.count(), ck, || {
                    values
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !nulls.is_null(*i))
                        .map(|(_, v)| PrimCell::Int(*v))
                })
            } else {
                profile_int_column(values, nulls, reference_type, ck)
            }
        }
        Column::Float { values, nulls } => {
            if reference_type == DataType::Text {
                profile_primitive_column(reference_type, values.len(), nulls.count(), ck, || {
                    values
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !nulls.is_null(*i))
                        .map(|(_, v)| PrimCell::Float(*v))
                })
            } else {
                profile_float_column(values, nulls, reference_type, ck)
            }
        }
        Column::Bool { values, nulls } => {
            profile_primitive_column(reference_type, values.len(), nulls.count(), ck, || {
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| PrimCell::Bool(*v))
            })
        }
    }
}

/// A non-null primitive cell: the three fixed-width variants share one
/// specialised loop (the compiler monomorphises per closure anyway, and
/// the match below folds to the single live arm per column type).
#[derive(Clone, Copy)]
enum PrimCell {
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl PrimCell {
    fn to_value(self) -> Value {
        match self {
            PrimCell::Int(i) => Value::Int(i),
            PrimCell::Float(f) => Value::Float(f),
            PrimCell::Bool(b) => Value::Bool(b),
        }
    }

    /// Hashable identity matching `Value`'s Eq/Hash (floats by bits).
    fn key(self) -> (u8, u64) {
        match self {
            PrimCell::Int(i) => (0, i as u64),
            PrimCell::Float(f) => (1, f.to_bits()),
            PrimCell::Bool(b) => (2, b as u64),
        }
    }

    fn incompatible_with(self, rt: DataType) -> bool {
        match (rt, self) {
            (DataType::Boolean, PrimCell::Int(i)) => i != 0 && i != 1,
            (DataType::Boolean, PrimCell::Float(_)) => true,
            (DataType::Integer, PrimCell::Float(f)) => {
                !(f.fract() == 0.0 && f.is_finite() && f >= i64::MIN as f64 && f <= i64::MAX as f64)
            }
            // Ints cast to every type's numeric/text forms; bools cast
            // everywhere; everything casts to Text and Float-from-Int.
            _ => false,
        }
    }
}

fn profile_primitive_column<I>(
    reference_type: DataType,
    total: usize,
    nulls: usize,
    ck: &Checkpoint<'_>,
    cells: impl Fn() -> I,
) -> Result<AttributeProfile, Cancelled>
where
    I: Iterator<Item = PrimCell>,
{
    let text_designated = reference_type == DataType::Text;
    let numeric_designated = reference_type.is_numeric();

    let mut incompatible = 0usize;
    let mut counts: HashMap<(u8, u64), (PrimCell, usize)> = HashMap::new();
    let mut text = text_designated.then(TextAcc::default);
    let mut nums = numeric_designated.then(Vec::new);
    let mut render_buf = String::new();

    for cell in cells() {
        ck.tick()?;
        if cell.incompatible_with(reference_type) {
            incompatible += 1;
        }
        counts.entry(cell.key()).or_insert((cell, 0)).1 += 1;
        if let Some(acc) = &mut text {
            let s: &str = match cell {
                PrimCell::Int(i) => {
                    render_buf.clear();
                    write!(render_buf, "{i}").expect("write to String");
                    &render_buf
                }
                PrimCell::Float(f) => {
                    render_buf.clear();
                    write!(render_buf, "{f}").expect("write to String");
                    &render_buf
                }
                PrimCell::Bool(b) => {
                    if b {
                        "true"
                    } else {
                        "false"
                    }
                }
            };
            acc.add_row(s);
        } else if let Some(nums) = &mut nums {
            match cell {
                PrimCell::Int(i) => nums.push(i as f64),
                PrimCell::Float(f) => nums.push(f),
                // `numeric_view` has no numeric reading of booleans.
                PrimCell::Bool(_) => {}
            }
        }
    }

    let non_null = total - nulls;
    let freqs: Vec<usize> = counts.values().map(|(_, c)| *c).collect();
    let top: Vec<(Value, usize)> = counts
        .into_values()
        .map(|(cell, c)| (cell.to_value(), c))
        .collect();
    Ok(assemble(
        reference_type,
        FillStatus {
            total,
            nulls,
            incompatible,
        },
        constancy_of(non_null, freqs),
        top_k_of(top, non_null, TopK::DEFAULT_K),
        text,
        nums,
    ))
}

/// Typed fast path for integer columns under a non-text reference type:
/// a straight machine-word loop over `Vec<i64>` with `i64`-keyed value
/// counts — no per-cell enum construction, no bitmap probe when the
/// column has no nulls. Output is bit-identical to
/// [`profile_primitive_column`]: the count map groups the same cells and
/// every float lands in the row-order buffer in the same sequence.
fn profile_int_column(
    values: &[i64],
    nulls: &NullBitmap,
    reference_type: DataType,
    ck: &Checkpoint<'_>,
) -> Result<AttributeProfile, Cancelled> {
    debug_assert_ne!(reference_type, DataType::Text);
    let total = values.len();
    let null_count = nulls.count();
    let non_null = total - null_count;
    let boolean_rt = reference_type == DataType::Boolean;

    let mut incompatible = 0usize;
    let mut counts: HashMap<i64, usize> = HashMap::new();
    let mut nums = reference_type
        .is_numeric()
        .then(|| Vec::with_capacity(non_null));

    if null_count == 0 {
        for &v in values {
            ck.tick()?;
            if boolean_rt && v != 0 && v != 1 {
                incompatible += 1;
            }
            *counts.entry(v).or_insert(0) += 1;
            if let Some(nums) = &mut nums {
                nums.push(v as f64);
            }
        }
    } else {
        for (i, &v) in values.iter().enumerate() {
            ck.tick()?;
            if nulls.is_null(i) {
                continue;
            }
            if boolean_rt && v != 0 && v != 1 {
                incompatible += 1;
            }
            *counts.entry(v).or_insert(0) += 1;
            if let Some(nums) = &mut nums {
                nums.push(v as f64);
            }
        }
    }

    let freqs: Vec<usize> = counts.values().copied().collect();
    let top: Vec<(Value, usize)> = counts
        .into_iter()
        .map(|(v, c)| (Value::Int(v), c))
        .collect();
    Ok(assemble(
        reference_type,
        FillStatus {
            total,
            nulls: null_count,
            incompatible,
        },
        constancy_of(non_null, freqs),
        top_k_of(top, non_null, TopK::DEFAULT_K),
        None,
        nums,
    ))
}

/// Typed fast path for float columns under a non-text reference type;
/// counts are keyed by the IEEE bit pattern, matching `Value`'s Eq/Hash.
/// See [`profile_int_column`] for the bit-identity argument.
fn profile_float_column(
    values: &[f64],
    nulls: &NullBitmap,
    reference_type: DataType,
    ck: &Checkpoint<'_>,
) -> Result<AttributeProfile, Cancelled> {
    debug_assert_ne!(reference_type, DataType::Text);
    let total = values.len();
    let null_count = nulls.count();
    let non_null = total - null_count;
    let boolean_rt = reference_type == DataType::Boolean;
    let integer_rt = reference_type == DataType::Integer;

    let mut incompatible = 0usize;
    let mut counts: HashMap<u64, (f64, usize)> = HashMap::new();
    let mut nums = reference_type
        .is_numeric()
        .then(|| Vec::with_capacity(non_null));

    // One closure per cell keeps the null/no-null loops in sync.
    let mut visit = |v: f64| {
        if boolean_rt
            || (integer_rt
                && !(v.fract() == 0.0
                    && v.is_finite()
                    && v >= i64::MIN as f64
                    && v <= i64::MAX as f64))
        {
            incompatible += 1;
        }
        counts.entry(v.to_bits()).or_insert((v, 0)).1 += 1;
        if let Some(nums) = &mut nums {
            nums.push(v);
        }
    };
    if null_count == 0 {
        for &v in values {
            ck.tick()?;
            visit(v);
        }
    } else {
        for (i, &v) in values.iter().enumerate() {
            ck.tick()?;
            if !nulls.is_null(i) {
                visit(v);
            }
        }
    }

    let freqs: Vec<usize> = counts.values().map(|(_, c)| *c).collect();
    let top: Vec<(Value, usize)> = counts
        .into_values()
        .map(|(v, c)| (Value::Float(v), c))
        .collect();
    Ok(assemble(
        reference_type,
        FillStatus {
            total,
            nulls: null_count,
            incompatible,
        },
        constancy_of(non_null, freqs),
        top_k_of(top, non_null, TopK::DEFAULT_K),
        None,
        nums,
    ))
}

/// The dictionary-encoded fast path: per-string work (pattern
/// abstraction, character walks, cast checks, numeric parses) happens
/// once per *distinct* value and is weighted by its occurrence count;
/// only the order-sensitive float buffers are filled per row, via a
/// precomputed per-code lookup.
fn profile_text_column(
    tc: &TextColumn,
    reference_type: DataType,
    ck: &Checkpoint<'_>,
) -> Result<AttributeProfile, Cancelled> {
    let total = tc.len();
    let nulls = tc.null_count();
    let non_null = total - nulls;
    let counts = tc.dict_counts();

    let mut incompatible = 0usize;
    let mut text = (reference_type == DataType::Text).then(TextAcc::default);
    let mut nums = None;

    match &mut text {
        Some(acc) => {
            // Text reference: every string casts; fuse pattern/char/length
            // per distinct value, then replay per-row lengths in order.
            let mut char_lens: Vec<f64> = Vec::with_capacity(tc.dict_len());
            for (code, s) in tc.dict_iter().enumerate() {
                ck.tick()?;
                let len = acc.observe(s, counts[code]);
                char_lens.push(len as f64);
            }
            acc.lengths.reserve(non_null);
            for &code in tc.codes() {
                ck.tick()?;
                if code != NULL_CODE {
                    acc.lengths.push(char_lens[code as usize]);
                }
            }
        }
        None => {
            if reference_type.is_numeric() {
                // Parse each distinct string once; the row-order numeric
                // buffer replays the cached parses.
                let parsed: Vec<Option<f64>> = tc
                    .dict_iter()
                    .map(|s| s.trim().parse::<f64>().ok())
                    .collect();
                for (code, s) in tc.dict_iter().enumerate() {
                    ck.tick()?;
                    if !reference_type.casts_text(s) {
                        incompatible += counts[code];
                    }
                }
                let mut buf = Vec::with_capacity(non_null);
                for &code in tc.codes() {
                    ck.tick()?;
                    if code != NULL_CODE {
                        if let Some(x) = parsed[code as usize] {
                            buf.push(x);
                        }
                    }
                }
                nums = Some(buf);
            } else {
                // Boolean reference: only the cast check is type-specific.
                for (code, s) in tc.dict_iter().enumerate() {
                    ck.tick()?;
                    if !reference_type.casts_text(s) {
                        incompatible += counts[code];
                    }
                }
            }
        }
    }

    let top: Vec<(Value, usize)> = tc
        .dict_iter()
        .enumerate()
        .map(|(code, s)| (Value::Text(s.to_owned()), counts[code]))
        .collect();
    Ok(assemble(
        reference_type,
        FillStatus {
            total,
            nulls,
            incompatible,
        },
        constancy_of(non_null, counts.to_vec()),
        top_k_of(top, non_null, TopK::DEFAULT_K),
        text,
        nums,
    ))
}
