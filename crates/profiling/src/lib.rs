//! # efes-profiling
//!
//! Data-profiling substrate for EFES (*Estimating Data Integration and
//! Cleaning Effort*, EDBT 2015).
//!
//! Two roles, mirroring the paper:
//!
//! 1. **Statistics for the value fit detector (§5.1).** For each attribute
//!    we compute the nine statistics the paper lists — fill status,
//!    constancy, text patterns, character histogram, string length, mean,
//!    histogram, value range, top-k values — each with an *importance*
//!    score (how characteristic the statistic is for the target attribute)
//!    and a *fit* value (how well a source attribute's statistic matches),
//!    combined into the importance-weighted overall fit of §5.1.
//!
//! 2. **Schema reverse engineering (§3.1 "completeness").** Constraints
//!    that hold in the data but are not declared — not-null, uniques/key
//!    candidates, inclusion dependencies (foreign-key candidates) and
//!    single-LHS functional dependencies — are discovered by
//!    [`discovery`] and can be merged into a database's constraint set.

#![warn(missing_docs)]

pub mod cache;
pub mod discovery;
pub mod kernel;
pub mod monoid;
pub mod profile;
pub mod shard;
pub mod stats;

pub use cache::{DbTag, ProfileCache, ProfileKey};
pub use monoid::PartialProfile;
pub use shard::{shard_counters, ShardPolicy, PROFILE_SHARD_ENV_VAR};
pub use discovery::{
    discover_constraints, discover_constraints_with, DiscoveryOptions, InclusionDependency,
};
pub use profile::{AttributeProfile, FitBreakdown, FitComponent};
pub use stats::{
    CharHistogram, Constancy, FillStatus, NumericHistogram, NumericMean, StringLength,
    TextPatterns, TopK, ValueRange,
};
