//! Sharded parallel profiling over the [`crate::monoid`] layer.
//!
//! The fused kernel walks a column once on one thread. For large columns
//! this module splits the walk into contiguous chunks, profiles the
//! chunks concurrently via [`efes_exec::parallel_map`] (each worker under
//! its own [`RunContext`] checkpoint), and folds the per-chunk
//! [`PartialProfile`]s back together with [`efes_exec::merge_tree`] — the
//! monoid laws guarantee the merged result finalizes **bit-identical** to
//! the fused kernel's output.
//!
//! Chunking follows the column's shape:
//!
//! * integer / float / boolean / mixed columns shard their **rows**;
//! * text columns shard their **dictionary** (the expensive per-distinct
//!   pattern/char walk), keeping the cheap row-order length/numeric
//!   replays sequential — sharding rows instead would repeat the
//!   per-string work once per row and forfeit the dictionary speedup.
//!
//! The `EFES_PROFILE_SHARD` knob selects the policy: `on` (default)
//! shards parallel-mode columns at or above [`SHARD_THRESHOLD_ROWS`]
//! units, `off` is the escape hatch back to the fused kernel, and
//! `force` routes every profile through the sharded evaluator regardless
//! of size (the chaos suite uses this to reach the
//! `profiling.shard.merge` fault site on tiny scenarios). An unparsable
//! value warns once on stderr and falls back to `on`.

use crate::kernel;
use crate::monoid::{self, PartialProfile};
use crate::profile::AttributeProfile;
use efes_exec::{fault, merge_tree, parallel_map, Cancelled, ExecutionMode, RunContext};
use efes_relational::{Column, DataType};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Environment variable selecting the sharding policy: `on` (default),
/// `off` (escape hatch: always the fused kernel), or `force` (always the
/// sharded evaluator, however small the column).
pub const PROFILE_SHARD_ENV_VAR: &str = "EFES_PROFILE_SHARD";

/// Minimum column size (rows, or dictionary entries for text columns)
/// before the default policy shards: below this the fused kernel
/// finishes before worker handoff pays for itself.
pub const SHARD_THRESHOLD_ROWS: usize = 16_384;

/// Minimum units per chunk — more workers than this buys nothing.
const MIN_CHUNK_UNITS: usize = 8_192;

/// The resolved `EFES_PROFILE_SHARD` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Shard columns at or above the size threshold when the execution
    /// mode is parallel (the default).
    On,
    /// Never shard: every profile takes the fused kernel.
    Off,
    /// Always take the sharded evaluator, whatever the column size.
    Force,
}

/// Parse one `EFES_PROFILE_SHARD` value; `None` means unparsable.
pub fn parse_shard_policy(raw: &str) -> Option<ShardPolicy> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "on" | "1" | "true" | "yes" => Some(ShardPolicy::On),
        "off" | "0" | "false" | "no" => Some(ShardPolicy::Off),
        "force" => Some(ShardPolicy::Force),
        _ => None,
    }
}

/// The policy selected by `EFES_PROFILE_SHARD`, re-read per call so
/// tests and operators can flip it at run time. An unparsable value
/// warns once on stderr and behaves as `on`.
pub fn shard_policy() -> ShardPolicy {
    match std::env::var(PROFILE_SHARD_ENV_VAR) {
        Err(_) => ShardPolicy::On,
        Ok(raw) => parse_shard_policy(&raw).unwrap_or_else(|| {
            static WARN_ONCE: Once = Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: {PROFILE_SHARD_ENV_VAR}={raw:?} is not a sharding policy \
                     (expected on/off/force); sharding stays on"
                );
            });
            ShardPolicy::On
        }),
    }
}

static SHARD_COLUMNS: AtomicU64 = AtomicU64::new(0);
static SHARD_CHUNKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide sharding tallies: `(columns sharded, chunks profiled)`.
/// A column counts only when it actually split into more than one chunk.
/// `/metrics` renders these as `efes_profile_shard_columns_total` and
/// `efes_profile_shard_chunks_total`.
pub fn shard_counters() -> (u64, u64) {
    (
        SHARD_COLUMNS.load(Ordering::Relaxed),
        SHARD_CHUNKS.load(Ordering::Relaxed),
    )
}

/// Whether the current policy shards a column of `units` rows (or
/// dictionary entries) under `mode`.
pub fn should_shard(units: usize, mode: ExecutionMode) -> bool {
    match shard_policy() {
        ShardPolicy::Off => false,
        ShardPolicy::Force => true,
        ShardPolicy::On => mode.is_parallel() && units >= SHARD_THRESHOLD_ROWS,
    }
}

/// The unit count sharding splits for this column: dictionary entries
/// for text columns (the per-distinct walk is the cost), rows otherwise.
pub fn shard_units(col: &Column) -> usize {
    match col {
        Column::Text(tc) => tc.dict_len(),
        _ => col.len(),
    }
}

/// Contiguous `(lo, hi)` ranges covering `0..units` in at most `chunks`
/// pieces; always at least one range (possibly empty) so downstream
/// merges have an identity element to return.
fn ranges(units: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, units.max(1));
    let size = units.div_ceil(chunks).max(1);
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    while lo < units {
        let hi = (lo + size).min(units);
        out.push((lo, hi));
        lo = hi;
    }
    if out.is_empty() {
        out.push((0, 0));
    }
    out
}

/// Build one column's [`PartialProfile`] under the active policy:
/// sharded when [`should_shard`] says so, otherwise a sequential
/// single-chunk build (which still yields a retainable partial).
pub fn partial_of_column_ctx(
    col: &Column,
    reference_type: DataType,
    run: &RunContext,
    mode: ExecutionMode,
) -> Result<PartialProfile, Cancelled> {
    let units = shard_units(col);
    let chunks = match shard_policy() {
        ShardPolicy::Off => 1,
        // Force exercises the full split/merge path even on one core.
        ShardPolicy::Force => mode.threads().max(2),
        ShardPolicy::On => {
            if mode.is_parallel() && units >= SHARD_THRESHOLD_ROWS {
                mode.threads().min(units.div_ceil(MIN_CHUNK_UNITS)).max(1)
            } else {
                1
            }
        }
    };
    if chunks <= 1 {
        let ck = run.checkpoint();
        return PartialProfile::of_column_ctx(col, reference_type, &ck);
    }
    sharded_partial(col, reference_type, run, mode, chunks)
}

/// Profile a column through the sharded evaluator with one chunk per
/// thread of `mode`, regardless of policy or size. This is the
/// deterministic entry the differential tests and benches use — it never
/// consults the environment.
pub fn profile_column_sharded_with(
    col: &Column,
    reference_type: DataType,
    run: &RunContext,
    mode: ExecutionMode,
) -> Result<AttributeProfile, Cancelled> {
    Ok(sharded_partial(col, reference_type, run, mode, mode.threads())?.finalize())
}

/// [`partial_of_column_ctx`]'s sharded arm: scan chunks in parallel,
/// consult the `profiling.shard.merge` fault site, then fold with a
/// balanced merge tree.
fn sharded_partial(
    col: &Column,
    reference_type: DataType,
    run: &RunContext,
    mode: ExecutionMode,
    chunks: usize,
) -> Result<PartialProfile, Cancelled> {
    let spans = ranges(shard_units(col), chunks);
    if spans.len() > 1 {
        SHARD_COLUMNS.fetch_add(1, Ordering::Relaxed);
        SHARD_CHUNKS.fetch_add(spans.len() as u64, Ordering::Relaxed);
    }
    match col {
        Column::Text(tc) => {
            let scanned = parallel_map(mode, spans, |(lo, hi)| {
                let ck = run.checkpoint();
                monoid::scan_dict_range(tc, reference_type, lo, hi, &ck)
            });
            let mut parts = Vec::with_capacity(scanned.len());
            for part in scanned {
                parts.push(part?);
            }
            // The alloc-cap mode has no allocation budget to trip at this
            // site; panic/cancel/delay act through fire itself.
            let _alloc_capped = fault::fire("profiling.shard.merge", Some(run.token()));
            run.check()?;
            let merged = merge_tree(mode, parts, monoid::merge_dict_chunks)
                .expect("ranges always yields at least one chunk");
            let ck = run.checkpoint();
            monoid::finish_text_partial(tc, reference_type, merged, &ck)
        }
        _ => {
            let scanned = parallel_map(mode, spans, |(lo, hi)| {
                let ck = run.checkpoint();
                let mut partial = PartialProfile::new(reference_type);
                partial.accumulate_range(col, lo, hi, &ck)?;
                Ok::<_, Cancelled>(partial)
            });
            let mut parts = Vec::with_capacity(scanned.len());
            for part in scanned {
                parts.push(part?);
            }
            let _alloc_capped = fault::fire("profiling.shard.merge", Some(run.token()));
            run.check()?;
            Ok(merge_tree(mode, parts, |mut a, b| {
                a.merge(b);
                a
            })
            .expect("ranges always yields at least one chunk"))
        }
    }
}

/// Profile one column under the active policy, sharding when eligible and
/// falling back to the fused kernel otherwise — the drop-in sharded
/// sibling of [`kernel::profile_column_ctx`], bit-identical to it always.
pub fn profile_column_auto_ctx(
    col: &Column,
    reference_type: DataType,
    run: &RunContext,
    mode: ExecutionMode,
) -> Result<AttributeProfile, Cancelled> {
    if should_shard(shard_units(col), mode) {
        Ok(partial_of_column_ctx(col, reference_type, run, mode)?.finalize())
    } else {
        let ck = run.checkpoint();
        kernel::profile_column_ctx(col, reference_type, &ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::Value;

    fn int_column(n: usize) -> Column {
        Column::from_cells(
            (0..n)
                .map(|i| {
                    if i % 7 == 3 {
                        Value::Null
                    } else {
                        Value::Int((i as i64 * 37) % 211)
                    }
                })
                .collect(),
        )
    }

    fn text_column(n: usize) -> Column {
        Column::from_cells(
            (0..n)
                .map(|i| {
                    if i % 11 == 5 {
                        Value::Null
                    } else {
                        Value::Text(format!("track {:02}:{:02}", i % 9, (i * 13) % 60))
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn sharded_matches_fused_across_thread_counts() {
        let run = RunContext::unbounded();
        for col in [int_column(1000), text_column(1000)] {
            for rt in [
                DataType::Integer,
                DataType::Float,
                DataType::Text,
                DataType::Boolean,
            ] {
                let fused = kernel::profile_column(&col, rt);
                for threads in [1usize, 2, 3, 8] {
                    let mode = ExecutionMode::with_threads(threads);
                    let sharded = profile_column_sharded_with(&col, rt, &run, mode)
                        .expect("unbounded context never cancels");
                    assert_eq!(sharded, fused, "rt={rt:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn sharded_handles_empty_columns() {
        let run = RunContext::unbounded();
        let col = Column::empty();
        for rt in [DataType::Integer, DataType::Text] {
            let fused = kernel::profile_column(col, rt);
            let sharded = profile_column_sharded_with(col, rt, &run, ExecutionMode::Parallel(4))
                .expect("unbounded context never cancels");
            assert_eq!(sharded, fused, "rt={rt:?}");
        }
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for units in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 5, 200] {
                let spans = ranges(units, chunks);
                assert!(!spans.is_empty());
                let mut expect = 0usize;
                for &(lo, hi) in &spans {
                    assert_eq!(lo, expect, "units={units} chunks={chunks}");
                    assert!(hi >= lo);
                    expect = hi;
                }
                assert_eq!(expect, units, "units={units} chunks={chunks}");
            }
        }
    }

    #[test]
    fn parse_shard_policy_grammar() {
        assert_eq!(parse_shard_policy("on"), Some(ShardPolicy::On));
        assert_eq!(parse_shard_policy(" ON "), Some(ShardPolicy::On));
        assert_eq!(parse_shard_policy("1"), Some(ShardPolicy::On));
        assert_eq!(parse_shard_policy("off"), Some(ShardPolicy::Off));
        assert_eq!(parse_shard_policy("0"), Some(ShardPolicy::Off));
        assert_eq!(parse_shard_policy("force"), Some(ShardPolicy::Force));
        assert_eq!(parse_shard_policy("sideways"), None);
    }

    #[test]
    fn cancellation_aborts_a_sharded_profile() {
        let run = RunContext::unbounded();
        run.token().cancel();
        let col = int_column(100_000);
        let got = profile_column_sharded_with(
            &col,
            DataType::Integer,
            &run,
            ExecutionMode::Parallel(4),
        );
        assert!(got.is_err());
    }
}
