//! Mergeable partial profiles: the §5.1 statistics as a monoid.
//!
//! A [`PartialProfile`] is the in-flight accumulator state of the fused
//! kernel, detached from any particular walk: it can be fed one
//! [`ValueRef`] at a time ([`PartialProfile::accumulate`]), fed a
//! contiguous row range of a typed [`Column`]
//! ([`PartialProfile::accumulate_range`]), and combined with another
//! partial built over the *immediately following* rows
//! ([`PartialProfile::merge`]). [`PartialProfile::finalize`] then replays
//! the kernel's exact reducers, so for any split of a column into
//! consecutive chunks:
//!
//! ```text
//! finalize(merge(partial(chunk_1), …, partial(chunk_n)))
//!     == profile_column(chunk_1 ++ … ++ chunk_n)      (exact ==)
//! ```
//!
//! Two properties make this bit-identical rather than merely close:
//!
//! * every order-sensitive float reduction (string-length mean/σ, numeric
//!   mean/σ/histogram/range) runs over a **row-order buffer**; chunk
//!   partials carry their slice of the buffer and `merge` concatenates,
//!   so the finalized reduction sees the exact sequence the fused kernel
//!   sees;
//! * everything else (fill tallies, value counts, pattern counts,
//!   character counts) is integer addition, which is associative and
//!   commutative, and the kernel's finalizers sort by total orders before
//!   any float math, so map iteration order never leaks.
//!
//! `merge` is associative (concatenation and addition both are) and
//! [`PartialProfile::new`] is its identity — the proptests in
//! `tests/proptests.rs` pin both laws plus chunk-split invariance against
//! the fused kernel. The sharded executor in [`crate::shard`] builds on
//! these laws; the `ProfileCache` retains partials so registry appends
//! re-profile only the delta rows.

use crate::kernel::{self, TextAcc};
use crate::profile::AttributeProfile;
use crate::stats::{FillStatus, TopK};
use efes_exec::{Cancelled, Checkpoint};
use efes_relational::column::NULL_CODE;
use efes_relational::{Column, DataType, TextColumn, Value, ValueRef};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Mergeable accumulator covering all nine §5.1 statistics for one
/// attribute under one designated reference type. See the module docs
/// for the monoid laws it satisfies.
#[derive(Clone, Debug)]
pub struct PartialProfile {
    reference_type: DataType,
    total: usize,
    nulls: usize,
    incompatible: usize,
    /// Value counts under `Value`'s Eq/Hash (floats by bit pattern) —
    /// feeds constancy, distinctness and top-k after a total-order sort.
    counts: HashMap<Value, usize>,
    /// Present iff the reference type is `Text`.
    text: Option<TextAcc>,
    /// Row-order numeric buffer; present iff the reference type is
    /// numeric.
    nums: Option<Vec<f64>>,
    /// Render scratch, excluded from all semantics.
    render_buf: String,
}

/// Mirrors the kernel's per-cell compatibility checks (`try_cast` on the
/// mixed path, `PrimCell::incompatible_with` + `casts_text` on the typed
/// paths) over a borrowed cell.
fn incompatible_value(rt: DataType, v: ValueRef<'_>) -> bool {
    match v {
        ValueRef::Null => false,
        ValueRef::Text(s) => rt != DataType::Text && !rt.casts_text(s),
        ValueRef::Int(i) => rt == DataType::Boolean && i != 0 && i != 1,
        ValueRef::Float(f) => match rt {
            DataType::Boolean => true,
            DataType::Integer => {
                !(f.fract() == 0.0 && f.is_finite() && f >= i64::MIN as f64 && f <= i64::MAX as f64)
            }
            _ => false,
        },
        ValueRef::Bool(_) => false,
    }
}

impl PartialProfile {
    /// The monoid identity: a partial that has seen no rows.
    pub fn new(reference_type: DataType) -> Self {
        PartialProfile {
            reference_type,
            total: 0,
            nulls: 0,
            incompatible: 0,
            counts: HashMap::new(),
            text: (reference_type == DataType::Text).then(TextAcc::default),
            nums: reference_type.is_numeric().then(Vec::new),
            render_buf: String::new(),
        }
    }

    /// The reference type this partial profiles against.
    pub fn reference_type(&self) -> DataType {
        self.reference_type
    }

    /// Rows observed so far (nulls included) — the delta path compares
    /// this against a table's pre-append row count to decide whether a
    /// retained partial still matches the stored prefix.
    pub fn rows_seen(&self) -> usize {
        self.total
    }

    /// Feed one cell. Null cells advance only the fill tallies; all other
    /// cells update the count map and whichever of the text/numeric
    /// accumulators the reference type designates, rendered and parsed
    /// exactly as the fused kernel renders and parses them.
    pub fn accumulate(&mut self, v: ValueRef<'_>) {
        self.total += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        if incompatible_value(self.reference_type, v) {
            self.incompatible += 1;
        }
        *self.counts.entry(v.to_value()).or_insert(0) += 1;
        if let Some(acc) = &mut self.text {
            match v {
                ValueRef::Text(s) => acc.add_row(s),
                ValueRef::Int(i) => {
                    self.render_buf.clear();
                    write!(self.render_buf, "{i}").expect("write to String");
                    acc.add_row(&self.render_buf);
                }
                ValueRef::Float(f) => {
                    self.render_buf.clear();
                    write!(self.render_buf, "{f}").expect("write to String");
                    acc.add_row(&self.render_buf);
                }
                ValueRef::Bool(b) => acc.add_row(if b { "true" } else { "false" }),
                ValueRef::Null => unreachable!(),
            }
        } else if let Some(nums) = &mut self.nums {
            match v {
                ValueRef::Int(i) => nums.push(i as f64),
                ValueRef::Float(f) => nums.push(f),
                ValueRef::Text(s) => {
                    if let Ok(x) = s.trim().parse::<f64>() {
                        nums.push(x);
                    }
                }
                _ => {}
            }
        }
    }

    /// Feed the contiguous row range `lo..hi` of a typed column, ticking
    /// the checkpoint once per row. Integer and float columns get
    /// machine-word loops; the other variants go through
    /// [`PartialProfile::accumulate`] per cell.
    pub fn accumulate_range(
        &mut self,
        col: &Column,
        lo: usize,
        hi: usize,
        ck: &Checkpoint<'_>,
    ) -> Result<(), Cancelled> {
        debug_assert!(lo <= hi && hi <= col.len());
        match col {
            Column::Mixed(values) => {
                for v in &values[lo..hi] {
                    ck.tick()?;
                    self.accumulate(ValueRef::of(v));
                }
            }
            Column::Text(tc) => {
                for i in lo..hi {
                    ck.tick()?;
                    let code = tc.codes()[i];
                    if code == NULL_CODE {
                        self.total += 1;
                        self.nulls += 1;
                    } else {
                        self.accumulate(ValueRef::Text(tc.dict_str(code)));
                    }
                }
            }
            Column::Int { values, nulls } => {
                if self.text.is_some() {
                    for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
                        ck.tick()?;
                        if nulls.is_null(i) {
                            self.total += 1;
                            self.nulls += 1;
                        } else {
                            self.accumulate(ValueRef::Int(v));
                        }
                    }
                } else {
                    let boolean_rt = self.reference_type == DataType::Boolean;
                    for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
                        ck.tick()?;
                        self.total += 1;
                        if nulls.is_null(i) {
                            self.nulls += 1;
                            continue;
                        }
                        if boolean_rt && v != 0 && v != 1 {
                            self.incompatible += 1;
                        }
                        *self.counts.entry(Value::Int(v)).or_insert(0) += 1;
                        if let Some(nums) = &mut self.nums {
                            nums.push(v as f64);
                        }
                    }
                }
            }
            Column::Float { values, nulls } => {
                if self.text.is_some() {
                    for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
                        ck.tick()?;
                        if nulls.is_null(i) {
                            self.total += 1;
                            self.nulls += 1;
                        } else {
                            self.accumulate(ValueRef::Float(v));
                        }
                    }
                } else {
                    for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
                        ck.tick()?;
                        self.total += 1;
                        if nulls.is_null(i) {
                            self.nulls += 1;
                            continue;
                        }
                        if incompatible_value(self.reference_type, ValueRef::Float(v)) {
                            self.incompatible += 1;
                        }
                        *self.counts.entry(Value::Float(v)).or_insert(0) += 1;
                        if let Some(nums) = &mut self.nums {
                            nums.push(v);
                        }
                    }
                }
            }
            Column::Bool { values, nulls } => {
                for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
                    ck.tick()?;
                    if nulls.is_null(i) {
                        self.total += 1;
                        self.nulls += 1;
                    } else {
                        self.accumulate(ValueRef::Bool(v));
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold `other` — built over the rows immediately following this
    /// partial's rows — into `self`. Associative; [`PartialProfile::new`]
    /// is the identity.
    pub fn merge(&mut self, other: PartialProfile) {
        debug_assert_eq!(self.reference_type, other.reference_type);
        self.total += other.total;
        self.nulls += other.nulls;
        self.incompatible += other.incompatible;
        for (v, c) in other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
        if let Some(b) = other.text {
            match &mut self.text {
                Some(a) => a.merge(b),
                None => self.text = Some(b),
            }
        }
        if let Some(b) = other.nums {
            match &mut self.nums {
                Some(a) => a.extend(b),
                None => self.nums = Some(b),
            }
        }
    }

    /// Finalize into an [`AttributeProfile`], replaying the fused
    /// kernel's exact reducers. Non-consuming so a retained partial can
    /// keep absorbing future delta rows.
    pub fn finalize(&self) -> AttributeProfile {
        let non_null = self.total - self.nulls;
        let freqs: Vec<usize> = self.counts.values().copied().collect();
        let top: Vec<(Value, usize)> = self.counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
        kernel::assemble(
            self.reference_type,
            FillStatus {
                total: self.total,
                nulls: self.nulls,
                incompatible: self.incompatible,
            },
            kernel::constancy_of(non_null, freqs),
            kernel::top_k_of(top, non_null, TopK::DEFAULT_K),
            self.text.clone(),
            self.nums.clone(),
        )
    }

    /// Build the partial of one whole column. Text columns take the
    /// weighted dictionary walk (per-string work once per *distinct*
    /// value); everything else takes [`PartialProfile::accumulate_range`]
    /// over the full row range.
    pub fn of_column_ctx(
        col: &Column,
        reference_type: DataType,
        ck: &Checkpoint<'_>,
    ) -> Result<Self, Cancelled> {
        match col {
            Column::Text(tc) => {
                let chunk = scan_dict_range(tc, reference_type, 0, tc.dict_len(), ck)?;
                finish_text_partial(tc, reference_type, chunk, ck)
            }
            _ => {
                let mut partial = Self::new(reference_type);
                partial.accumulate_range(col, 0, col.len(), ck)?;
                Ok(partial)
            }
        }
    }
}

/// The per-dictionary-range piece of a text column's partial: everything
/// the expensive per-distinct walk produces, before the cheap row-order
/// replays. Chunks over consecutive code ranges merge in code order.
pub(crate) struct TextDictChunk {
    pub(crate) counts: HashMap<Value, usize>,
    pub(crate) text: Option<TextAcc>,
    /// Character length per code in this chunk's range (text reference).
    pub(crate) char_lens: Vec<f64>,
    /// Cached numeric parse per code in this chunk's range (numeric
    /// reference).
    pub(crate) parsed: Vec<Option<f64>>,
    pub(crate) incompatible: usize,
}

/// Run the weighted per-distinct walk over dictionary codes `lo..hi`.
pub(crate) fn scan_dict_range(
    tc: &TextColumn,
    reference_type: DataType,
    lo: usize,
    hi: usize,
    ck: &Checkpoint<'_>,
) -> Result<TextDictChunk, Cancelled> {
    let mut chunk = TextDictChunk {
        counts: HashMap::with_capacity(hi - lo),
        text: (reference_type == DataType::Text).then(TextAcc::default),
        char_lens: Vec::new(),
        parsed: Vec::new(),
        incompatible: 0,
    };
    let numeric = reference_type.is_numeric();
    if chunk.text.is_some() {
        chunk.char_lens.reserve(hi - lo);
    }
    if numeric {
        chunk.parsed.reserve(hi - lo);
    }
    for code in lo..hi {
        ck.tick()?;
        let s = tc.dict_str(code as u32);
        let weight = tc.dict_count(code as u32);
        chunk.counts.insert(Value::Text(s.to_owned()), weight);
        if let Some(acc) = &mut chunk.text {
            let len = acc.observe(s, weight);
            chunk.char_lens.push(len as f64);
        } else {
            if numeric {
                chunk.parsed.push(s.trim().parse::<f64>().ok());
            }
            if !reference_type.casts_text(s) {
                chunk.incompatible += weight;
            }
        }
    }
    Ok(chunk)
}

/// Fold `b` — the chunk over the code range immediately following `a`'s —
/// into `a`.
pub(crate) fn merge_dict_chunks(mut a: TextDictChunk, b: TextDictChunk) -> TextDictChunk {
    // Dictionary entries are distinct across chunks, so this is a
    // disjoint union.
    a.counts.extend(b.counts);
    if let Some(tb) = b.text {
        match &mut a.text {
            Some(ta) => ta.merge(tb),
            None => a.text = Some(tb),
        }
    }
    a.char_lens.extend(b.char_lens);
    a.parsed.extend(b.parsed);
    a.incompatible += b.incompatible;
    a
}

/// Complete a text column's partial from its merged dictionary chunk:
/// replay the row-order length/numeric buffers from the per-code tables
/// and attach the fill tallies.
pub(crate) fn finish_text_partial(
    tc: &TextColumn,
    reference_type: DataType,
    chunk: TextDictChunk,
    ck: &Checkpoint<'_>,
) -> Result<PartialProfile, Cancelled> {
    let total = tc.len();
    let nulls = tc.null_count();
    let non_null = total - nulls;
    let mut text = chunk.text;
    let mut nums = None;
    if let Some(acc) = &mut text {
        acc.reserve_lengths(non_null);
        for &code in tc.codes() {
            ck.tick()?;
            if code != NULL_CODE {
                acc.push_length(chunk.char_lens[code as usize]);
            }
        }
    } else if reference_type.is_numeric() {
        let mut buf = Vec::with_capacity(non_null);
        for &code in tc.codes() {
            ck.tick()?;
            if code != NULL_CODE {
                if let Some(x) = chunk.parsed[code as usize] {
                    buf.push(x);
                }
            }
        }
        nums = Some(buf);
    }
    Ok(PartialProfile {
        reference_type,
        total,
        nulls,
        incompatible: chunk.incompatible,
        counts: chunk.counts,
        text,
        nums,
        render_buf: String::new(),
    })
}
