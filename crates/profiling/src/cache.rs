//! A shared, thread-safe cache of per-column [`AttributeProfile`]s.
//!
//! The pipeline profiles the same column repeatedly: the value fit
//! detector (Algorithm 1) profiles both ends of every attribute
//! correspondence, instance-based matching profiles every column under
//! every candidate partner's datatype, and a column that participates in
//! several correspondences is profiled once per correspondence. A
//! [`ProfileCache`] memoizes these computations behind an `Arc`-shared
//! lookup keyed by (database tag, table, attribute, reference datatype),
//! so each distinct profile is computed exactly once per estimation run
//! — also under concurrent access from the parallel execution layer.

use crate::monoid::PartialProfile;
use crate::profile::AttributeProfile;
use crate::shard::{self, ShardPolicy};
use efes_exec::{Cancelled, ExecutionMode, RunContext};
use efes_relational::column::columnar_enabled;
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{DataType, Database};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Caller-assigned identity of a database within one cache's scope.
///
/// The cache cannot key on the `Database` value itself (hashing an
/// instance is as expensive as profiling it) and must not key on a
/// pointer (an estimator outlives any one scenario, inviting ABA
/// aliasing). Callers therefore assign a small tag per database —
/// [`DbTag::TARGET`] for the integration target, [`DbTag::source`] for
/// source databases — that is unambiguous within one estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DbTag(pub u32);

impl DbTag {
    /// Conventional tag for the integration target database.
    pub const TARGET: DbTag = DbTag(u32::MAX);

    /// Conventional tag for source database `i`.
    pub fn source(i: u32) -> DbTag {
        DbTag(i)
    }
}

/// The full cache key: one column profiled under one reference datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// Which database the column belongs to.
    pub db: DbTag,
    /// The column's table.
    pub table: TableId,
    /// The column's attribute.
    pub attr: AttrId,
    /// The datatype designating the computed statistics (the *target*
    /// side's type in Algorithm 1, either side's in instance matching).
    pub reference_type: DataType,
}

/// The fill protocol of one cache slot.
///
/// A `OnceLock` would guarantee exactly-once, but its fill is
/// irrevocable: a filler that panics or aborts on cancellation would
/// leave every waiter blocked forever. This explicit state machine keeps
/// the exactly-once *success* path while making failure recoverable —
/// a failed fill resets to `Empty` and wakes the waiters, one of which
/// takes over the computation.
#[derive(Debug)]
enum FillState {
    /// No fill attempted (or the last attempt failed); the next caller
    /// becomes the filler.
    Empty,
    /// A fill is in progress; callers wait on the condvar.
    Filling,
    /// The profile is resident, optionally alongside the mergeable
    /// partial it was finalized from (when the cache retains partials
    /// for the O(delta) append path).
    Full(Arc<AttributeProfile>, Option<Arc<PartialProfile>>),
}

#[derive(Debug)]
struct FillCell {
    state: Mutex<FillState>,
    ready: Condvar,
}

impl FillCell {
    fn new() -> Self {
        FillCell {
            state: Mutex::new(FillState::Empty),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FillState> {
        // Poison-tolerant: the fill protocol never panics while holding
        // this lock (compute runs unlocked), but a poisoned state is
        // still a valid FillState and the reset guard must get through.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Resets a cell to `Empty` and wakes waiters unless disarmed — the
/// cleanup invariant that makes fills panic- and cancellation-safe: the
/// guard drops on *every* exit path of the filler (success disarms it
/// first), so no failure mode can strand the cell in `Filling`.
struct FillGuard<'a> {
    cell: &'a FillCell,
    armed: bool,
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            *self.cell.lock() = FillState::Empty;
            self.cell.ready.notify_all();
        }
    }
}

type Cell = Arc<FillCell>;

const SHARDS: usize = 16;

/// How long a waiter sleeps between checks of its own cancellation
/// while another thread fills the slot it wants.
const WAIT_SLICE: Duration = Duration::from_millis(20);

/// The memoization table. Cheap to share (`Arc<ProfileCache>`); interior
/// mutability is sharded so concurrent lookups of different columns
/// rarely contend, and per-key [`FillState`] cells guarantee each profile
/// is computed exactly once even when several threads miss simultaneously
/// — while staying recoverable when a fill panics or is cancelled
/// mid-computation (the slot resets and the next caller recomputes).
///
/// A cache can optionally be [bounded](ProfileCache::bounded): once the
/// entry count reaches the bound, inserting a fresh profile evicts an
/// arbitrary existing one, so a long-running process (e.g. a server
/// keeping caches across requests) cannot grow it without limit. The
/// default is unbounded, preserving the one-shot pipeline behaviour
/// where every profile of a run stays resident.
#[derive(Debug, Default)]
pub struct ProfileCache {
    shards: [Mutex<HashMap<ProfileKey, Cell>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: Option<usize>,
    retain_partials: bool,
}

impl ProfileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded at `capacity` entries (at least one).
    /// The bound is enforced by evicting an arbitrary resident entry
    /// when a fresh insert would exceed it; eviction never affects
    /// correctness, only the hit rate.
    pub fn bounded(capacity: usize) -> Self {
        ProfileCache {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// Switch this cache into partial-retaining mode: every profile
    /// computed through
    /// [`of_attribute_sharded_ctx`](Self::of_attribute_sharded_ctx)
    /// keeps its mergeable [`PartialProfile`] alongside the finalized
    /// result, so [`snapshot_partials`](Self::snapshot_partials) can
    /// hand them to an O(delta) append. Costs the partial's memory per
    /// entry; intended for caches backing mutable (uploaded) scenarios.
    pub fn retaining_partials(mut self) -> Self {
        self.retain_partials = true;
        self
    }

    /// Whether this cache retains mergeable partials.
    pub fn retains_partials(&self) -> bool {
        self.retain_partials
    }

    /// The configured entry bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted to enforce the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Remove one resident entry other than `keep`, searching from
    /// `keep`'s shard outward. Returns whether anything was evicted.
    fn evict_one(&self, keep: &ProfileKey) -> bool {
        let start = self.shard_index(keep);
        for offset in 0..SHARDS {
            let mut shard = self.shards[(start + offset) % SHARDS]
                .lock()
                .expect("profile cache shard poisoned");
            let victim = shard.keys().find(|k| *k != keep).copied();
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn shard_index(&self, key: &ProfileKey) -> usize {
        // Mix table/attr/db into a shard index; DataType only has four
        // values, so it contributes via the multiplier below.
        let h = key.table.0
            .wrapping_mul(31)
            .wrapping_add(key.attr.0)
            .wrapping_mul(31)
            .wrapping_add(key.db.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(key.reference_type as usize);
        h % SHARDS
    }

    fn shard(&self, key: &ProfileKey) -> &Mutex<HashMap<ProfileKey, Cell>> {
        &self.shards[self.shard_index(key)]
    }

    /// Look up the profile for `key`, computing it with `compute` on the
    /// first request. Concurrent callers for the same key block until the
    /// single computation finishes and then share its result.
    pub fn get_or_compute(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> AttributeProfile,
    ) -> Arc<AttributeProfile> {
        self.get_or_compute_ctx(&RunContext::unbounded(), key, || Ok(compute()))
            .expect("unbounded context never cancels")
    }

    /// [`get_or_compute`](Self::get_or_compute) under a [`RunContext`]:
    /// both the caller's *wait* (while another thread fills the slot)
    /// and its own *fill* (when `compute` honours a checkpoint) abort
    /// promptly once `run` is cancelled.
    ///
    /// Slot safety: a fill that returns `Err(Cancelled)` — or panics —
    /// resets its slot to empty and wakes all waiters, one of which
    /// takes over the computation. The success path stays exactly-once;
    /// an aborted fill never wedges or poisons the slot and never
    /// caches a partial profile.
    pub fn get_or_compute_ctx(
        &self,
        run: &RunContext,
        key: ProfileKey,
        compute: impl FnOnce() -> Result<AttributeProfile, Cancelled>,
    ) -> Result<Arc<AttributeProfile>, Cancelled> {
        self.get_or_compute_with_partial_ctx(run, key, || Ok((compute()?, None)))
    }

    /// The fill protocol shared by every lookup path: `compute` may
    /// return the [`PartialProfile`] the profile was finalized from,
    /// which is retained in the slot for
    /// [`snapshot_partials`](Self::snapshot_partials).
    fn get_or_compute_with_partial_ctx(
        &self,
        run: &RunContext,
        key: ProfileKey,
        compute: impl FnOnce() -> Result<(AttributeProfile, Option<PartialProfile>), Cancelled>,
    ) -> Result<Arc<AttributeProfile>, Cancelled> {
        run.check()?;
        let (cell, inserted): (Cell, bool) = {
            let mut shard = self.shard(&key).lock().expect("profile cache shard poisoned");
            let before = shard.len();
            let cell = shard
                .entry(key)
                .or_insert_with(|| Arc::new(FillCell::new()))
                .clone();
            (cell, shard.len() > before)
        };
        if inserted {
            if let Some(cap) = self.capacity {
                // `len()` walks all shards without holding this key's
                // lock, so the bound is approximate under concurrency —
                // good enough to keep a long-running cache from growing
                // without limit.
                while self.len() > cap && self.evict_one(&key) {}
            }
        }

        // Resolve the slot: take over an empty one, share a full one,
        // wait (cancellably) on one being filled.
        {
            let mut state = cell.lock();
            loop {
                match &*state {
                    FillState::Full(profile, _) => {
                        let profile = profile.clone();
                        drop(state);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(profile);
                    }
                    FillState::Empty => {
                        *state = FillState::Filling;
                        break; // this thread fills
                    }
                    FillState::Filling => {
                        let (guard, _) = cell
                            .ready
                            .wait_timeout(state, WAIT_SLICE)
                            .unwrap_or_else(|e| e.into_inner());
                        state = guard;
                        // Still in progress after the slice: honour our
                        // own cancellation instead of waiting forever.
                        if matches!(&*state, FillState::Filling) && run.is_cancelled() {
                            return Err(Cancelled);
                        }
                    }
                }
            }
        }

        // This thread owns the fill. The guard resets the slot on every
        // failure path (Err below, or a panic inside `compute`); the
        // compute itself runs without holding any lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = FillGuard { cell: &cell, armed: true };
        match compute() {
            Ok((profile, partial)) => {
                let profile = Arc::new(profile);
                guard.armed = false;
                *cell.lock() = FillState::Full(profile.clone(), partial.map(Arc::new));
                cell.ready.notify_all();
                Ok(profile)
            }
            Err(cancelled) => {
                drop(guard);
                Err(cancelled)
            }
        }
    }

    /// Profile a concrete attribute of `db` through the cache. `key.db`
    /// must consistently identify `db` across all calls on this cache.
    pub fn of_attribute(&self, db: &Database, key: ProfileKey) -> Arc<AttributeProfile> {
        self.get_or_compute(key, || {
            AttributeProfile::of_attribute(db, key.table, key.attr, key.reference_type)
        })
    }

    /// [`of_attribute`](Self::of_attribute) under a [`RunContext`]: the
    /// profiling walk ticks a checkpoint per cell, so cancellation
    /// aborts a running fill within one check interval and the slot
    /// recovers per [`get_or_compute_ctx`](Self::get_or_compute_ctx).
    pub fn of_attribute_ctx(
        &self,
        run: &RunContext,
        db: &Database,
        key: ProfileKey,
    ) -> Result<Arc<AttributeProfile>, Cancelled> {
        self.get_or_compute_ctx(run, key, || {
            let ck = run.checkpoint();
            AttributeProfile::of_attribute_ctx(db, key.table, key.attr, key.reference_type, &ck)
        })
    }

    /// [`of_attribute_ctx`](Self::of_attribute_ctx) routed through the
    /// sharded evaluator: columns eligible under the `EFES_PROFILE_SHARD`
    /// policy are split into chunks profiled concurrently under `mode`
    /// and merged (bit-identical to the fused kernel); everything else
    /// falls back to the fused kernel. On a
    /// [partial-retaining](Self::retaining_partials) cache the computed
    /// slot additionally keeps its mergeable partial for the O(delta)
    /// append path.
    pub fn of_attribute_sharded_ctx(
        &self,
        run: &RunContext,
        db: &Database,
        key: ProfileKey,
        mode: ExecutionMode,
    ) -> Result<Arc<AttributeProfile>, Cancelled> {
        self.get_or_compute_with_partial_ctx(run, key, || {
            // `off` is the full escape hatch: no sharding *and* no
            // partial builds — byte-for-byte the pre-monoid behaviour.
            if shard::shard_policy() != ShardPolicy::Off && columnar_enabled() {
                if let Some(col) = db.instance.table(key.table).column_store(key.attr) {
                    if self.retain_partials {
                        let partial =
                            shard::partial_of_column_ctx(col, key.reference_type, run, mode)?;
                        let profile = partial.finalize();
                        return Ok((profile, Some(partial)));
                    }
                    if shard::should_shard(shard::shard_units(col), mode) {
                        let partial =
                            shard::partial_of_column_ctx(col, key.reference_type, run, mode)?;
                        return Ok((partial.finalize(), None));
                    }
                }
            }
            let ck = run.checkpoint();
            let profile = AttributeProfile::of_attribute_ctx(
                db,
                key.table,
                key.attr,
                key.reference_type,
                &ck,
            )?;
            Ok((profile, None))
        })
    }

    /// Insert a precomputed profile (and optionally its partial)
    /// directly into the slot for `key`, overwriting whatever the slot
    /// held. The O(delta) append path uses this to seed a successor
    /// cache with extended profiles; concurrent waiters on the slot are
    /// woken with the seeded value.
    pub fn seed(
        &self,
        key: ProfileKey,
        profile: Arc<AttributeProfile>,
        partial: Option<Arc<PartialProfile>>,
    ) {
        let inserted = {
            let mut shard = self.shard(&key).lock().expect("profile cache shard poisoned");
            let before = shard.len();
            let cell = shard
                .entry(key)
                .or_insert_with(|| Arc::new(FillCell::new()))
                .clone();
            let inserted = shard.len() > before;
            drop(shard);
            *cell.lock() = FillState::Full(profile, partial);
            cell.ready.notify_all();
            inserted
        };
        if inserted {
            if let Some(cap) = self.capacity {
                while self.len() > cap && self.evict_one(&key) {}
            }
        }
    }

    /// Every resident `(key, profile, partial)` triple whose slot kept
    /// its mergeable partial. Slots currently filling (or computed
    /// through a non-retaining path) are skipped.
    pub fn snapshot_partials(
        &self,
    ) -> Vec<(ProfileKey, Arc<AttributeProfile>, Arc<PartialProfile>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("profile cache shard poisoned");
            for (key, cell) in shard.iter() {
                if let FillState::Full(profile, Some(partial)) = &*cell.lock() {
                    out.push((*key, profile.clone(), partial.clone()));
                }
            }
        }
        out
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that computed a fresh profile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct profiles held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("profile cache shard poisoned").len())
            .sum()
    }

    /// `true` iff no profile has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DatabaseBuilder, Value};
    use std::sync::atomic::AtomicUsize;

    fn db() -> Database {
        let mut b = DatabaseBuilder::new("d").table("t", |t| {
            t.attr("a", DataType::Text).attr("b", DataType::Integer)
        });
        b = b.rows(
            "t",
            (0..30)
                .map(|i| vec![Value::from(format!("v{i}")), Value::from(i as i64)])
                .collect(),
        );
        b.build().unwrap()
    }

    fn key(attr: usize, dt: DataType) -> ProfileKey {
        ProfileKey {
            db: DbTag::source(0),
            table: TableId(0),
            attr: AttrId(attr),
            reference_type: dt,
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let db = db();
        let cache = ProfileCache::new();
        let first = cache.of_attribute(&db, key(0, DataType::Text));
        let second = cache.of_attribute(&db, key(0, DataType::Text));
        assert_eq!(*first, *second);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_reference_types_are_distinct_entries() {
        let db = db();
        let cache = ProfileCache::new();
        cache.of_attribute(&db, key(1, DataType::Integer));
        cache.of_attribute(&db, key(1, DataType::Text));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_equals_fresh() {
        let db = db();
        let cache = ProfileCache::new();
        for (attr, dt) in [(0, DataType::Text), (1, DataType::Integer), (1, DataType::Text)] {
            let cached = cache.of_attribute(&db, key(attr, dt));
            let fresh = AttributeProfile::of_attribute(&db, TableId(0), AttrId(attr), dt);
            assert_eq!(*cached, fresh);
        }
    }

    #[test]
    fn bounded_cache_stays_within_capacity() {
        let db = db();
        let cache = ProfileCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            for attr in 0..2 {
                cache.of_attribute(&db, key(attr, dt));
            }
        }
        assert!(cache.len() <= 2, "len {} exceeds bound", cache.len());
        assert_eq!(cache.evictions(), 8 - 2);
        assert_eq!(cache.misses(), 8);
    }

    #[test]
    fn bounded_cache_still_returns_correct_profiles() {
        let db = db();
        let cache = ProfileCache::bounded(1);
        for _ in 0..3 {
            for (attr, dt) in [(0, DataType::Text), (1, DataType::Integer)] {
                let cached = cache.of_attribute(&db, key(attr, dt));
                let fresh = AttributeProfile::of_attribute(&db, TableId(0), AttrId(attr), dt);
                assert_eq!(*cached, fresh);
            }
        }
        assert!(cache.len() <= 1);
    }

    #[test]
    fn unbounded_cache_reports_no_capacity() {
        let cache = ProfileCache::new();
        assert_eq!(cache.capacity(), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn sharded_lookup_matches_plain_lookup() {
        let db = db();
        let run = RunContext::unbounded();
        let mode = ExecutionMode::Parallel(4);
        for (attr, dt) in [(0, DataType::Text), (1, DataType::Integer), (1, DataType::Text)] {
            let plain = ProfileCache::new();
            let sharded = ProfileCache::new().retaining_partials();
            let a = plain.of_attribute_ctx(&run, &db, key(attr, dt)).unwrap();
            let b = sharded
                .of_attribute_sharded_ctx(&run, &db, key(attr, dt), mode)
                .unwrap();
            assert_eq!(*a, *b, "attr={attr} dt={dt:?}");
        }
    }

    #[test]
    fn retaining_cache_snapshots_partials_and_seeds_a_successor() {
        let db = db();
        let run = RunContext::unbounded();
        let cache = ProfileCache::new().retaining_partials();
        assert!(cache.retains_partials());
        cache
            .of_attribute_sharded_ctx(&run, &db, key(0, DataType::Text), ExecutionMode::Sequential)
            .unwrap();
        cache
            .of_attribute_sharded_ctx(
                &run,
                &db,
                key(1, DataType::Integer),
                ExecutionMode::Sequential,
            )
            .unwrap();
        let snapshot = cache.snapshot_partials();
        assert_eq!(snapshot.len(), 2);
        for (k, profile, partial) in &snapshot {
            assert_eq!(partial.finalize(), **profile, "key {k:?}");
        }

        let successor = ProfileCache::new().retaining_partials();
        for (k, profile, partial) in snapshot {
            successor.seed(k, profile, Some(partial));
        }
        assert_eq!(successor.len(), 2);
        // Seeded slots answer without recomputing: misses stay 0.
        let seeded = successor
            .of_attribute_sharded_ctx(&run, &db, key(0, DataType::Text), ExecutionMode::Sequential)
            .unwrap();
        assert_eq!(
            *seeded,
            AttributeProfile::of_attribute(&db, TableId(0), AttrId(0), DataType::Text)
        );
        assert_eq!(successor.misses(), 0);
        assert_eq!(successor.hits(), 1);
    }

    #[test]
    fn non_retaining_cache_snapshots_nothing() {
        let db = db();
        let run = RunContext::unbounded();
        let cache = ProfileCache::new();
        cache.of_attribute_ctx(&run, &db, key(0, DataType::Text)).unwrap();
        cache
            .of_attribute_sharded_ctx(&run, &db, key(1, DataType::Integer), ExecutionMode::Sequential)
            .unwrap();
        assert!(cache.snapshot_partials().is_empty());
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        let db = db();
        let cache = ProfileCache::new();
        let computations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        cache.get_or_compute(key(0, DataType::Text), || {
                            computations.fetch_add(1, Ordering::SeqCst);
                            AttributeProfile::of_attribute(
                                &db,
                                TableId(0),
                                AttrId(0),
                                DataType::Text,
                            )
                        });
                    }
                });
            }
        });
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 8 * 50 - 1);
    }
}
