//! `ProfileCache` slot recovery: the exactly-once fill protocol must
//! survive a filler that panics or aborts on cancellation — no deadlock,
//! no poisoned slot, no partial profile, and the next caller recomputes.

use efes_exec::{CancellationToken, Cancelled, RunContext};
use efes_profiling::{AttributeProfile, DbTag, ProfileCache, ProfileKey};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{DataType, Database, DatabaseBuilder, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn db() -> Database {
    DatabaseBuilder::new("d")
        .table("t", |t| t.attr("a", DataType::Text))
        .rows(
            "t",
            (0..40).map(|i| vec![Value::from(format!("v{i}"))]).collect(),
        )
        .build()
        .unwrap()
}

fn key() -> ProfileKey {
    ProfileKey {
        db: DbTag::source(0),
        table: TableId(0),
        attr: AttrId(0),
        reference_type: DataType::Text,
    }
}

fn profile(db: &Database) -> AttributeProfile {
    AttributeProfile::of_attribute(db, TableId(0), AttrId(0), DataType::Text)
}

#[test]
fn panicking_fill_resets_the_slot_and_the_next_caller_recomputes() {
    let db = db();
    let cache = ProfileCache::new();

    let attempt = catch_unwind(AssertUnwindSafe(|| {
        cache.get_or_compute(key(), || panic!("injected fill panic"));
    }));
    assert!(attempt.is_err(), "the fill panic must propagate");

    // The slot is neither wedged nor holding a partial profile: the
    // next lookup recomputes and succeeds.
    let recovered = cache.get_or_compute(key(), || profile(&db));
    assert_eq!(*recovered, profile(&db));
    assert_eq!(cache.misses(), 2, "failed fill + recomputation");
    // And a further lookup is a plain hit.
    cache.get_or_compute(key(), || unreachable!("slot is full"));
    assert_eq!(cache.hits(), 1);
}

#[test]
fn cancelled_fill_resets_the_slot_and_the_next_caller_recomputes() {
    let db = db();
    let cache = ProfileCache::new();

    let err = cache.get_or_compute_ctx(&RunContext::unbounded(), key(), || Err(Cancelled));
    assert_eq!(err.unwrap_err(), Cancelled);

    let recovered = cache
        .get_or_compute_ctx(&RunContext::unbounded(), key(), || Ok(profile(&db)))
        .unwrap();
    assert_eq!(*recovered, profile(&db));
    assert_eq!(cache.misses(), 2);
}

#[test]
fn cancelled_context_aborts_a_real_profiling_fill() {
    let db = db();
    let cache = ProfileCache::new();
    let token = CancellationToken::new();
    token.cancel();
    let run = RunContext::new(token, None);

    // The entry check fires before any work: Err, nothing cached.
    assert_eq!(cache.of_attribute_ctx(&run, &db, key()).unwrap_err(), Cancelled);
    assert_eq!(cache.len(), 0, "no slot may be left behind");

    // A healthy context then fills normally.
    let ok = cache.of_attribute_ctx(&RunContext::unbounded(), &db, key()).unwrap();
    assert_eq!(*ok, profile(&db));
}

#[test]
fn waiters_take_over_when_the_filler_panics() {
    let db = db();
    let cache = ProfileCache::new();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let takeovers = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // The doomed filler: waits until told, then panics mid-fill.
        let cache_ref = &cache;
        scope.spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                cache_ref.get_or_compute(key(), || {
                    entered_tx.send(()).unwrap();
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("filler dies mid-fill");
                });
            }));
        });
        entered_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        // Waiters pile up on the in-progress slot; after the panic one
        // of them must take over and everyone must get the profile.
        for _ in 0..4 {
            let takeovers = &takeovers;
            let db = &db;
            scope.spawn(move || {
                let got = cache_ref.get_or_compute(key(), || {
                    takeovers.fetch_add(1, Ordering::SeqCst);
                    profile(db)
                });
                assert_eq!(*got, profile(db));
            });
        }
    });
    assert_eq!(
        takeovers.load(Ordering::SeqCst),
        1,
        "exactly one waiter recomputes after the panic"
    );
}

#[test]
fn waiting_on_anothers_fill_honours_own_cancellation() {
    let db = db();
    let cache = ProfileCache::new();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();

    std::thread::scope(|scope| {
        let cache_ref = &cache;
        let db_ref = &db;
        scope.spawn(move || {
            cache_ref.get_or_compute(key(), || {
                entered_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                profile(db_ref)
            });
        });
        entered_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        // A cancelled waiter must give up promptly instead of blocking
        // until the (still running) fill completes.
        let token = CancellationToken::new();
        token.cancel();
        let run = RunContext::new(token, None);
        let start = Instant::now();
        let err = cache.of_attribute_ctx(&run, &db, key());
        assert_eq!(err.unwrap_err(), Cancelled);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "cancelled waiter took {:?}",
            start.elapsed()
        );

        release_tx.send(()).unwrap();
    });

    // The original fill completed untouched: exactly-once still holds.
    cache.get_or_compute(key(), || unreachable!("slot is full"));
    assert_eq!(cache.misses(), 1);
}
