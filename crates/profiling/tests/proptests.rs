//! Property-based tests for the profiling statistics.
//!
//! The invariants here back the §5.1 machinery: all importance and fit
//! scores stay in [0,1], self-fit of any column is ≥ the domain-difference
//! threshold (0.9), and fill ratios behave monotonically.

use efes_exec::{ExecutionMode, RunContext};
use efes_profiling::stats::*;
use efes_profiling::{kernel, shard, AttributeProfile, DbTag, PartialProfile, ProfileCache, ProfileKey};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{Column, DataType, DatabaseBuilder, Value};
use proptest::prelude::*;

fn arb_column() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Value::Null),
            10 => (-10_000i64..10_000).prop_map(Value::Int),
            10 => "[a-z0-9:\\. -]{0,15}".prop_map(Value::Text),
            2 => any::<bool>().prop_map(Value::Bool),
        ],
        0..60,
    )
}

/// Like [`arb_column`] but with floats mixed in (kept finite: a NaN
/// statistic is NaN on both sides yet `NaN != NaN` would fail the
/// differential equality assertions below).
fn arb_column_with_floats() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Value::Null),
            8 => (-10_000i64..10_000).prop_map(Value::Int),
            6 => (-1.0e6f64..1.0e6).prop_map(Value::Float),
            8 => "[a-z0-9:é\\. -]{0,15}".prop_map(Value::Text),
            2 => any::<bool>().prop_map(Value::Bool),
        ],
        0..60,
    )
}

/// A column every declared datatype admits, paired with that type, so a
/// [`DatabaseBuilder`] accepts it — exercising each typed `Column`
/// variant (and the `Mixed` fallback via int-bearing float columns) in
/// the columnar-vs-multipass test.
fn arb_admitted_column() -> impl Strategy<Value = (Vec<Value>, DataType)> {
    prop_oneof![
        (
            proptest::collection::vec(
                prop_oneof![
                    2 => Just(Value::Null),
                    8 => (-10_000i64..10_000).prop_map(Value::Int),
                ],
                0..50,
            ),
            Just(DataType::Integer)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    2 => Just(Value::Null),
                    5 => (-10_000i64..10_000).prop_map(Value::Int),
                    5 => (-1.0e6f64..1.0e6).prop_map(Value::Float),
                ],
                0..50,
            ),
            Just(DataType::Float)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    2 => Just(Value::Null),
                    8 => "[a-z0-9:é\\. -]{0,15}".prop_map(Value::Text),
                ],
                0..50,
            ),
            Just(DataType::Text)
        ),
        (
            proptest::collection::vec(
                prop_oneof![
                    2 => Just(Value::Null),
                    8 => any::<bool>().prop_map(Value::Bool),
                ],
                0..50,
            ),
            Just(DataType::Boolean)
        ),
    ]
}

fn arb_homogeneous_column() -> impl Strategy<Value = (Vec<Value>, DataType)> {
    prop_oneof![
        proptest::collection::vec((-10_000i64..10_000).prop_map(Value::Int), 1..60)
            .prop_map(|v| (v, DataType::Integer)),
        proptest::collection::vec("[a-z0-9:\\. -]{1,15}".prop_map(Value::Text), 1..60)
            .prop_map(|v| (v, DataType::Text)),
    ]
}

proptest! {
    /// Every statistic's importance and every pairwise fit is within [0,1].
    #[test]
    fn scores_are_unit_interval(a in arb_column(), b in arb_column()) {
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let pa = AttributeProfile::compute(a.iter(), dt);
            let pb = AttributeProfile::compute(b.iter(), dt);
            let fit = AttributeProfile::fit_against(&pa, &pb);
            prop_assert!((0.0..=1.0).contains(&fit.overall), "overall {}", fit.overall);
            for c in &fit.components {
                prop_assert!((0.0..=1.0).contains(&c.importance), "imp {}", c.importance);
                prop_assert!((0.0..=1.0).contains(&c.fit), "fit {}", c.fit);
            }
        }
    }

    /// An attribute always fits itself above the paper's 0.9 threshold —
    /// otherwise identical-schema scenarios (s4-s4, d1-d2) would report
    /// spurious value heterogeneities.
    #[test]
    fn self_fit_clears_threshold((col, dt) in arb_homogeneous_column()) {
        let p = AttributeProfile::compute(col.iter(), dt);
        let fit = AttributeProfile::fit_against(&p, &p);
        prop_assert!(fit.overall > 0.9, "self fit {} for {:?}", fit.overall, dt);
    }

    /// Fill ratio is (total - nulls - incompatible) / total and in [0,1].
    #[test]
    fn fill_ratio_bounds(col in arb_column()) {
        let fs = FillStatus::compute(col.iter(), DataType::Integer);
        prop_assert!((0.0..=1.0).contains(&fs.fill_ratio()));
        prop_assert!(fs.nulls + fs.incompatible <= fs.total);
    }

    /// Constancy is in [0,1] and equals 1 iff at most one distinct value.
    #[test]
    fn constancy_bounds(col in arb_column()) {
        let c = Constancy::compute(col.iter());
        prop_assert!((0.0..=1.0).contains(&c.constancy));
        if c.distinct <= 1 {
            prop_assert_eq!(c.constancy, 1.0);
        }
    }

    /// Pattern counts partition the non-null values.
    #[test]
    fn pattern_counts_partition(col in arb_column()) {
        let tp = TextPatterns::compute(col.iter());
        let sum: usize = tp.counts.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(sum, tp.total);
    }

    /// Histogram buckets sum to ~1 when any numeric values exist.
    #[test]
    fn histogram_mass_conserved(col in proptest::collection::vec((-1000i64..1000).prop_map(Value::Int), 1..50)) {
        let h = NumericHistogram::compute(col.iter(), 8);
        let sum: f64 = h.buckets.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Top-k coverage never exceeds 1 and the retained counts are sorted.
    #[test]
    fn top_k_sorted_and_bounded(col in arb_column()) {
        let t = TopK::compute(col.iter(), 5);
        prop_assert!(t.coverage() <= 1.0 + 1e-12);
        for w in t.values.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        prop_assert!(t.values.len() <= 5);
    }

    /// Range fit is symmetric in the degenerate equal case.
    #[test]
    fn range_self_fit(col in proptest::collection::vec((-1000i64..1000).prop_map(Value::Int), 1..50)) {
        let r = ValueRange::compute(col.iter());
        prop_assert_eq!(ValueRange::fit(&r, &r), 1.0);
    }

    /// The fused single-pass kernel is bit-identical to the retained
    /// multi-pass reference, field for field, for any value mix and any
    /// designating datatype. Exact `==` (not approximate): the kernel
    /// preserves the legacy float operation sequences.
    #[test]
    fn fused_kernel_matches_multipass(col in arb_column_with_floats()) {
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let fused = AttributeProfile::compute(col.iter(), dt);
            let legacy = AttributeProfile::compute_multipass(col.iter(), dt);
            prop_assert_eq!(&fused, &legacy, "fused != multipass for {:?}", dt);
        }
    }

    /// The columnar kernel (variant-specialised loops over the typed
    /// column store, dictionary-weighted for text) produces exactly the
    /// profile the multi-pass walk over the row-major rows produces —
    /// the end-to-end guarantee behind `of_attribute`.
    #[test]
    fn columnar_profile_matches_multipass((col, declared) in arb_admitted_column()) {
        let db = DatabaseBuilder::new("p")
            .table("t", |t| t.attr("a", declared))
            .rows("t", col.iter().map(|v| vec![v.clone()]).collect())
            .build()
            .unwrap();
        let t = TableId(0);
        let a = AttrId(0);
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let columnar = AttributeProfile::of_attribute(&db, t, a, dt);
            let legacy = AttributeProfile::compute_multipass(col.iter(), dt);
            prop_assert_eq!(&columnar, &legacy, "columnar != multipass for {:?}/{:?}", declared, dt);
        }
    }

    /// A profile served by the cache is indistinguishable from one
    /// computed fresh, for any column content and any designating
    /// datatype — and repeat lookups are hits, not recomputations.
    #[test]
    fn cached_profile_equals_fresh(col in proptest::collection::vec(
        prop_oneof![
            1 => Just(Value::Null),
            5 => "[a-z0-9:\\. -]{0,12}".prop_map(Value::Text),
        ],
        1..40,
    )) {
        let db = DatabaseBuilder::new("p")
            .table("t", |t| t.attr("a", DataType::Text))
            .rows("t", col.into_iter().map(|v| vec![v]).collect())
            .build()
            .unwrap();
        let cache = ProfileCache::new();
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let key = ProfileKey {
                db: DbTag(0),
                table: TableId(0),
                attr: AttrId(0),
                reference_type: dt,
            };
            let fresh = AttributeProfile::of_attribute(&db, TableId(0), AttrId(0), dt);
            let cached = cache.of_attribute(&db, key);
            prop_assert_eq!(&*cached, &fresh);
            let again = cache.of_attribute(&db, key);
            prop_assert_eq!(&*again, &fresh);
        }
        prop_assert_eq!(cache.misses(), 4);
        prop_assert_eq!(cache.hits(), 4);
        prop_assert_eq!(cache.len(), 4);
    }

    /// Monoid law: chunk-split invariance. Accumulating a column as any
    /// sequence of contiguous ranges and merging the partials finalizes
    /// to exactly (`==`, not approximately) the fused kernel's profile.
    /// This is the invariant that makes sharded profiling and O(delta)
    /// appends bit-identical to cold profiling.
    #[test]
    fn partial_profiles_are_chunk_split_invariant(
        (col, _declared) in arb_admitted_column(),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..4),
    ) {
        let column = Column::from_cells(col.clone());
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        let mut splits: Vec<usize> = cuts.iter().map(|f| (f * column.len() as f64) as usize).collect();
        splits.push(0);
        splits.push(column.len());
        splits.sort_unstable();
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let mut merged = PartialProfile::new(dt);
            for pair in splits.windows(2) {
                let mut part = PartialProfile::new(dt);
                part.accumulate_range(&column, pair[0], pair[1], &ck).unwrap();
                merged.merge(part);
            }
            let fused = kernel::profile_column(&column, dt);
            prop_assert_eq!(&merged.finalize(), &fused, "split {:?} != fused for {:?}", &splits, dt);
        }
    }

    /// Monoid laws: merge is associative and `PartialProfile::new` is a
    /// two-sided identity, observed through `finalize` (exact `==`).
    #[test]
    fn partial_profile_merge_is_associative_with_identity(
        (col, _declared) in arb_admitted_column(),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let column = Column::from_cells(col);
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        let n = column.len();
        let (mut i, mut j) = ((cut_a * n as f64) as usize, (cut_b * n as f64) as usize);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let part = |lo: usize, hi: usize| {
                let mut p = PartialProfile::new(dt);
                p.accumulate_range(&column, lo, hi, &ck).unwrap();
                p
            };
            // (a . b) . c
            let mut left = part(0, i);
            left.merge(part(i, j));
            left.merge(part(j, n));
            // a . (b . c)
            let mut bc = part(i, j);
            bc.merge(part(j, n));
            let mut right = part(0, i);
            right.merge(bc);
            prop_assert_eq!(&left.finalize(), &right.finalize(), "associativity for {:?}", dt);
            // identity . x == x == x . identity
            let mut id_x = PartialProfile::new(dt);
            id_x.merge(part(0, n));
            let mut x_id = part(0, n);
            x_id.merge(PartialProfile::new(dt));
            let whole = part(0, n).finalize();
            prop_assert_eq!(&id_x.finalize(), &whole, "left identity for {:?}", dt);
            prop_assert_eq!(&x_id.finalize(), &whole, "right identity for {:?}", dt);
        }
    }

    /// The delta-append path: a partial built over a prefix column that
    /// then absorbs the appended tail from the *extended* column equals
    /// the fused kernel over the whole extended column. Exactly what the
    /// server replays on an extension upload.
    #[test]
    fn prefix_partial_plus_tail_equals_cold_profile(
        (col, _declared) in arb_admitted_column(),
        cut in 0.0f64..1.0,
    ) {
        let split = (cut * col.len() as f64) as usize;
        let prefix = Column::from_cells(col[..split].to_vec());
        let full = Column::from_cells(col);
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
            let mut partial = PartialProfile::of_column_ctx(&prefix, dt, &ck).unwrap();
            partial.accumulate_range(&full, split, full.len(), &ck).unwrap();
            let cold = kernel::profile_column(&full, dt);
            prop_assert_eq!(&partial.finalize(), &cold, "delta != cold for {:?} at {}", dt, split);
        }
    }

    /// The sharded evaluator is bit-identical to the fused kernel for
    /// every thread count, column shape and reference type.
    #[test]
    fn sharded_profile_matches_fused_for_any_thread_count(
        (col, _declared) in arb_admitted_column(),
    ) {
        let column = Column::from_cells(col);
        let run = RunContext::unbounded();
        for threads in [1usize, 2, 3, 8] {
            let mode = ExecutionMode::with_threads(threads);
            for dt in [DataType::Text, DataType::Integer, DataType::Float, DataType::Boolean] {
                let sharded = shard::profile_column_sharded_with(&column, dt, &run, mode).unwrap();
                let fused = kernel::profile_column(&column, dt);
                prop_assert_eq!(&sharded, &fused, "sharded({}) != fused for {:?}", threads, dt);
            }
        }
    }
}
