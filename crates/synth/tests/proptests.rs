//! Property tests over the generator's invariants: the ground-truth
//! manifest must be *exactly* re-derivable from the generated data by
//! independent scans, and the generator must be fully deterministic.

use efes_relational::{AttrId, Database, Value};
use efes_synth::{generate, DirtKnobs, PayloadKind, SynthConfig, SynthManifest, TableDirt};
use proptest::prelude::*;
use std::collections::HashSet;

/// A configuration strategy over small shapes and the interesting corners
/// of the dirt space (zero, light, heavy, and over-unity rates that
/// normalization must clamp).
fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(0.01),
        Just(0.05),
        Just(0.2),
        Just(0.5),
        Just(1.0),
        Just(1.5), // clamped to 1.0 by normalization
    ]
}

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        (1usize..=3, 1usize..=5, 20usize..=120), // tables, payload_attrs, rows
        (1usize..=3, 1usize..=2),                // fanout, sources
        proptest::collection::vec(arb_rate(), 7),
    )
        .prop_map(|(seed, (tables, payload_attrs, rows), (fanout, sources), r)| {
            let mut cfg = SynthConfig::default().with_seed(seed);
            cfg.shape.tables = tables;
            cfg.shape.payload_attrs = payload_attrs;
            cfg.shape.rows = rows;
            cfg.shape.fanout = fanout;
            cfg.shape.sources = sources;
            cfg.dirt = DirtKnobs {
                null_rate: r[0],
                numeric_format_rate: r[1],
                date_format_rate: r[2],
                key_violation_rate: r[3],
                fk_violation_rate: r[4],
                synonym_rename_rate: r[5],
                duplicate_rate: r[6],
            };
            cfg
        })
}

/// Independently re-derive every defect set of one fragment from its
/// realized rows and compare against the manifest, exactly.
fn check_fragment(db: &Database, dirt: &TableDirt) {
    let tid = db
        .schema
        .table_id(&dirt.table)
        .unwrap_or_else(|| panic!("manifest table `{}` missing from schema", dirt.table));
    let table = db.schema.table(tid);
    let rows = db.instance.table(tid).rows();
    assert_eq!(rows.len(), dirt.rows, "row count disagrees with manifest");

    // Payload columns: NULL and alternate-format sets, by scan.
    for (p, col_dirt) in dirt.columns.iter().enumerate() {
        let attr = AttrId(p + 1); // after `id`
        assert_eq!(table.attribute(attr).name, col_dirt.attribute);
        let scanned_nulls: Vec<usize> = (0..rows.len())
            .filter(|&r| rows[r][attr.0].is_null())
            .collect();
        assert_eq!(scanned_nulls, col_dirt.nulls, "NULL set disagrees");
        // Canonical formats never contain the alternate-format marker
        // (',' for numeric text, '/' for dates), so a scan for the
        // marker is an exact re-derivation.
        let marker = match col_dirt.kind {
            PayloadKind::NumericText => Some(','),
            PayloadKind::DateText => Some('/'),
            _ => None,
        };
        let scanned_alt: Vec<usize> = match marker {
            Some(m) => (0..rows.len())
                .filter(|&r| {
                    rows[r][attr.0]
                        .as_text()
                        .is_some_and(|t| t.contains(m))
                })
                .collect(),
            None => Vec::new(),
        };
        assert_eq!(scanned_alt, col_dirt.alt_format, "alt-format set disagrees");
    }

    // Keys: every recorded violation holds, and the distinct-id count
    // equals rows minus destroyed keys (duplicate-pair rows carry fresh
    // unique ids, so they don't collapse the count).
    let ids: Vec<i64> = rows
        .iter()
        .map(|r| r[0].as_int().expect("ids are integers"))
        .collect();
    for kv in &dirt.key_violations {
        assert_eq!(ids[kv.victim_row], kv.value);
        assert_eq!(ids[kv.donor_row], kv.value);
        assert_ne!(kv.victim_row, kv.donor_row);
    }
    let distinct: HashSet<i64> = ids.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        rows.len() - dirt.key_violations.len(),
        "distinct id count disagrees with key-violation count"
    );

    // References: the dangling set is exactly the negative-valued rows
    // (real ids are non-negative by construction).
    if let Some(ref_attr) = table.attr_id("ref") {
        let scanned_dangling: Vec<usize> = (0..rows.len())
            .filter(|&r| {
                rows[r][ref_attr.0]
                    .as_int()
                    .is_some_and(|v| v < 0)
            })
            .collect();
        let recorded: Vec<usize> = {
            let mut v: Vec<usize> = dirt.fk_violations.iter().map(|f| f.row).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(scanned_dangling, recorded, "dangling set disagrees");
        for fk in &dirt.fk_violations {
            assert_eq!(rows[fk.row][ref_attr.0], Value::Int(fk.value));
            assert!(fk.value < 0, "dangling values are negative");
        }
    } else {
        assert!(dirt.fk_violations.is_empty());
    }

    // Duplicate pairs: the appended row copies every non-id cell.
    for dp in &dirt.duplicate_pairs {
        assert!(dp.dup_row > dp.base_row);
        assert_ne!(ids[dp.dup_row], ids[dp.base_row], "duplicates get fresh ids");
        for (dup_cell, base_cell) in rows[dp.dup_row].iter().zip(&rows[dp.base_row]).skip(1) {
            assert_eq!(
                dup_cell, base_cell,
                "duplicate rows must copy all payload/ref cells"
            );
        }
    }
}

/// Re-derive the whole manifest from the scenario and compare.
fn check_manifest(scenario: &efes_synth::IntegrationScenario, manifest: &SynthManifest) {
    assert_eq!(scenario.sources.len(), manifest.sources.len());
    for (db, source_dirt) in scenario.sources.iter().zip(&manifest.sources) {
        assert_eq!(db.name(), source_dirt.source);
        assert_eq!(db.schema.table_count(), source_dirt.tables.len());
        for table_dirt in &source_dirt.tables {
            check_fragment(db, table_dirt);
        }
    }
    for rename in &manifest.renames {
        let db = &scenario.sources[rename.source];
        let tid = db.schema.table_id(&rename.table).expect("renamed table exists");
        let table = db.schema.table(tid);
        assert!(
            table.attr_id(&rename.renamed).is_some(),
            "synonym `{}` missing from `{}`",
            rename.renamed,
            rename.table
        );
        assert!(
            table.attr_id(&rename.canonical).is_none(),
            "canonical `{}` should have been replaced in `{}`",
            rename.canonical,
            rename.table
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The manifest is exactly re-derivable from the data: same defect
    /// counts, same row indices, same values, under any knob combination.
    #[test]
    fn manifest_matches_realized_defects(cfg in arb_config()) {
        let out = generate(&cfg);
        check_manifest(&out.scenario, &out.manifest);
    }

    /// The generator is a pure function of its configuration: the same
    /// config serializes to byte-identical scenario and manifest JSON.
    #[test]
    fn same_seed_is_byte_identical(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        let scenario_a = serde_json::to_string(&a.scenario).unwrap();
        let scenario_b = serde_json::to_string(&b.scenario).unwrap();
        prop_assert_eq!(scenario_a, scenario_b);
        let manifest_a = serde_json::to_string(&a.manifest).unwrap();
        let manifest_b = serde_json::to_string(&b.manifest).unwrap();
        prop_assert_eq!(manifest_a, manifest_b);
    }

    /// All-zero dirt knobs produce sources that validate clean against
    /// their declared constraints and an empty manifest.
    #[test]
    fn clean_config_produces_valid_sources(seed in any::<u64>(), rows in 10usize..=80) {
        let cfg = SynthConfig::clean().with_seed(seed).with_rows(rows);
        let out = generate(&cfg);
        prop_assert!(out.manifest.is_clean());
        for db in &out.scenario.sources {
            prop_assert!(db.validate().is_empty());
        }
    }
}

// ---------------------------------------------------------------------
// Pinned cases. The vendored proptest runner enumerates deterministic
// inputs rather than replaying `.proptest-regressions` corpora, so the
// seeds recorded in `proptests.proptest-regressions` are *also* pinned
// here as explicit unit tests — they stay exercised on every run even
// if the corpus replay semantics never materialize.
// ---------------------------------------------------------------------

/// Pinned: maximum dirt everywhere (every rate saturated at 1.0).
#[test]
fn pinned_saturated_dirt_rates() {
    let mut cfg = SynthConfig::default().with_seed(0xDEAD_BEEF).with_rows(40);
    cfg.dirt = DirtKnobs {
        null_rate: 1.0,
        numeric_format_rate: 1.0,
        date_format_rate: 1.0,
        key_violation_rate: 1.0,
        fk_violation_rate: 1.0,
        synonym_rename_rate: 1.0,
        duplicate_rate: 1.0,
    };
    let out = generate(&cfg);
    check_manifest(&out.scenario, &out.manifest);
    // Saturated format + NULL rates: formats win the contested cells
    // (k_null is clamped to the remainder), so no column double-counts.
    assert!(out.manifest.total_alt_format() > 0);
    assert!(out.manifest.total_key_violations() > 0);
    assert!(out.manifest.total_duplicate_pairs() > 0);
}

/// Pinned: single-row fragments (rows < fanout leaves empty fragments).
#[test]
fn pinned_tiny_fragments() {
    let mut cfg = SynthConfig::default().with_seed(7).with_rows(2);
    cfg.shape.fanout = 3; // fragment 2 gets zero rows
    cfg.shape.tables = 2;
    let out = generate(&cfg);
    check_manifest(&out.scenario, &out.manifest);
}

/// Pinned: over-unity and negative rates normalize instead of panicking.
#[test]
fn pinned_out_of_range_rates() {
    let mut cfg = SynthConfig::default().with_seed(99).with_rows(30);
    cfg.dirt.null_rate = 1.5;
    cfg.dirt.duplicate_rate = -0.25;
    cfg.dirt.key_violation_rate = f64::NAN;
    let out = generate(&cfg);
    check_manifest(&out.scenario, &out.manifest);
    assert_eq!(out.manifest.total_key_violations(), 0);
    assert_eq!(out.manifest.total_duplicate_pairs(), 0);
}

/// Pinned: multi-source scenarios keep per-source manifests aligned.
#[test]
fn pinned_multi_source_alignment() {
    let cfg = SynthConfig::default().with_seed(0xA11CE).with_rows(50).with_sources(3);
    let out = generate(&cfg);
    check_manifest(&out.scenario, &out.manifest);
    assert_eq!(out.manifest.sources.len(), 3);
    // Sources are independent draws: their defect positions differ.
    let a = serde_json::to_string(&out.manifest.sources[0].tables).unwrap();
    let b = serde_json::to_string(&out.manifest.sources[1].tables).unwrap();
    assert_ne!(
        a.replace("synth_src0", "X"),
        b.replace("synth_src1", "X"),
        "independent sources should not be identical draws"
    );
}
