//! The generator's knobs: scenario shape and dirtiness rates.

use serde::{Deserialize, Serialize};

/// Shape knobs: how large the generated scenario is.
///
/// The generated target schema has [`tables`](ShapeKnobs::tables) tables;
/// the first is a *parent* table and every later table carries a `ref`
/// foreign key into it. Each target table is fed by
/// [`fanout`](ShapeKnobs::fanout) source tables (horizontal fragments),
/// and the whole source side is replicated
/// [`sources`](ShapeKnobs::sources) times as independent source
/// databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeKnobs {
    /// Number of target tables (≥ 1; the first is the parent).
    pub tables: usize,
    /// Payload attributes per table, besides the `id` key and the `ref`
    /// foreign key. Types cycle through the five payload kinds.
    pub payload_attrs: usize,
    /// Rows per target table, split evenly across its fan-out fragments
    /// (before duplicate injection appends extra rows).
    pub rows: usize,
    /// Source tables (fragments) feeding each target table (≥ 1) — the
    /// correspondence fan-out.
    pub fanout: usize,
    /// Number of source databases (≥ 1).
    pub sources: usize,
}

impl Default for ShapeKnobs {
    fn default() -> Self {
        ShapeKnobs {
            tables: 3,
            payload_attrs: 4,
            rows: 600,
            fanout: 2,
            sources: 1,
        }
    }
}

/// Dirtiness knobs: what fraction of the data each defect class touches.
///
/// All rates are fractions of a fragment's row count, realised as exact
/// rounded counts (never Bernoulli coin flips), so the ground-truth
/// manifest can state precisely how many defects exist. Rates outside
/// `[0, 1]` are clamped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirtKnobs {
    /// Fraction of each payload column's cells set to NULL. Visible to
    /// the structure detector wherever the target prescribes NOT NULL.
    pub null_rate: f64,
    /// Fraction of each numeric-text column's cells written in the
    /// alternate thousands-separator format (`"1,234"` vs `"1234"`).
    pub numeric_format_rate: f64,
    /// Fraction of each date-text column's cells written in the
    /// alternate `DD/MM/YYYY` format (vs ISO `YYYY-MM-DD`).
    pub date_format_rate: f64,
    /// Fraction of each fragment's rows whose `id` is overwritten with
    /// another row's `id` (a duplicate key). Visible to the structure
    /// detector because the target prescribes a primary key.
    pub key_violation_rate: f64,
    /// Fraction of each child fragment's rows whose `ref` is replaced
    /// with a dangling value that exists in no parent fragment.
    /// Ground-truth-only dirt: the conflict detector trusts the source's
    /// *declared* FK and never simulates it (see the crate docs).
    pub fk_violation_rate: f64,
    /// Probability that a source attribute is renamed to its synonym
    /// (e.g. `category` → `genre`), per fragment attribute.
    pub synonym_rename_rate: f64,
    /// Fraction of each fragment's rows duplicated as appended
    /// near-duplicate rows (same payload, fresh key) — the dedup
    /// module's future workload, recorded as explicit pairs.
    pub duplicate_rate: f64,
}

impl DirtKnobs {
    /// No dirt at all: every knob zero.
    pub fn clean() -> Self {
        DirtKnobs {
            null_rate: 0.0,
            numeric_format_rate: 0.0,
            date_format_rate: 0.0,
            key_violation_rate: 0.0,
            fk_violation_rate: 0.0,
            synonym_rename_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }
}

impl Default for DirtKnobs {
    fn default() -> Self {
        DirtKnobs {
            null_rate: 0.02,
            numeric_format_rate: 0.10,
            date_format_rate: 0.10,
            key_violation_rate: 0.01,
            fk_violation_rate: 0.01,
            synonym_rename_rate: 0.25,
            duplicate_rate: 0.005,
        }
    }
}

/// Full generator configuration: a seed plus shape and dirtiness knobs.
///
/// The same configuration always produces a byte-identical scenario and
/// manifest — there is no ambient randomness anywhere in the generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Seed for the generator's single deterministic RNG.
    pub seed: u64,
    /// Scenario shape.
    pub shape: ShapeKnobs,
    /// Dirtiness rates.
    pub dirt: DirtKnobs,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0xEFE5_0001,
            shape: ShapeKnobs::default(),
            dirt: DirtKnobs::default(),
        }
    }
}

impl SynthConfig {
    /// Default shape with all dirt knobs zeroed — sources that validate
    /// clean against their declared constraints.
    pub fn clean() -> Self {
        SynthConfig {
            dirt: DirtKnobs::clean(),
            ..SynthConfig::default()
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the per-table row count.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.shape.rows = rows;
        self
    }

    /// Replace the source-database count.
    pub fn with_sources(mut self, sources: usize) -> Self {
        self.shape.sources = sources;
        self
    }

    /// A copy with every knob forced into its valid domain: counts at
    /// least 1 where the shape requires it, rates clamped to `[0, 1]`.
    pub fn normalized(&self) -> Self {
        let clamp = |r: f64| {
            if r.is_nan() {
                0.0
            } else {
                r.clamp(0.0, 1.0)
            }
        };
        SynthConfig {
            seed: self.seed,
            shape: ShapeKnobs {
                tables: self.shape.tables.max(1),
                payload_attrs: self.shape.payload_attrs,
                rows: self.shape.rows,
                fanout: self.shape.fanout.max(1),
                sources: self.shape.sources.max(1),
            },
            dirt: DirtKnobs {
                null_rate: clamp(self.dirt.null_rate),
                numeric_format_rate: clamp(self.dirt.numeric_format_rate),
                date_format_rate: clamp(self.dirt.date_format_rate),
                key_violation_rate: clamp(self.dirt.key_violation_rate),
                fk_violation_rate: clamp(self.dirt.fk_violation_rate),
                synonym_rename_rate: clamp(self.dirt.synonym_rename_rate),
                duplicate_rate: clamp(self.dirt.duplicate_rate),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_rates_and_counts() {
        let mut cfg = SynthConfig::default();
        cfg.shape.tables = 0;
        cfg.shape.fanout = 0;
        cfg.shape.sources = 0;
        cfg.dirt.null_rate = 1.7;
        cfg.dirt.duplicate_rate = -0.3;
        cfg.dirt.key_violation_rate = f64::NAN;
        let n = cfg.normalized();
        assert_eq!(n.shape.tables, 1);
        assert_eq!(n.shape.fanout, 1);
        assert_eq!(n.shape.sources, 1);
        assert_eq!(n.dirt.null_rate, 1.0);
        assert_eq!(n.dirt.duplicate_rate, 0.0);
        assert_eq!(n.dirt.key_violation_rate, 0.0);
    }

    #[test]
    fn clean_config_has_zero_rates() {
        let c = SynthConfig::clean();
        assert_eq!(c.dirt, DirtKnobs::clean());
        assert_eq!(c.dirt.null_rate, 0.0);
    }
}
