//! The ground-truth manifest: a machine-readable record of every defect
//! the generator injected, precise to the row index.
//!
//! The manifest is the contract the property tests enforce: for any knob
//! configuration, re-deriving the defect sets from the generated data by
//! independent scans must reproduce the manifest *exactly* — same
//! counts, same row indices, same values.

use serde::{Deserialize, Serialize};

/// The five payload column kinds the generator cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Text drawn from a small categorical vocabulary.
    Categorical,
    /// Plain 64-bit integers.
    Integer,
    /// Floats with two decimal digits.
    Float,
    /// Numbers stored as text; the alternate format inserts thousands
    /// separators (`"1,234"` vs `"1234"`).
    NumericText,
    /// Dates stored as text; canonical ISO `YYYY-MM-DD`, alternate
    /// `DD/MM/YYYY`.
    DateText,
}

impl PayloadKind {
    /// Whether this kind participates in format-heterogeneity injection.
    pub fn has_alt_format(self) -> bool {
        matches!(self, PayloadKind::NumericText | PayloadKind::DateText)
    }
}

/// Per-column defect record for one payload column of one fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDirt {
    /// The attribute's name in the *source* schema (possibly a synonym).
    pub attribute: String,
    /// The canonical (target-side) attribute name.
    pub canonical: String,
    /// The column's payload kind.
    pub kind: PayloadKind,
    /// Row indices set to NULL, ascending.
    pub nulls: Vec<usize>,
    /// Row indices written in the alternate format, ascending. Disjoint
    /// from [`nulls`](ColumnDirt::nulls); always empty for kinds without
    /// an alternate format.
    pub alt_format: Vec<usize>,
}

/// One injected duplicate-key defect: the `id` of `victim_row` was
/// overwritten with the `id` of `donor_row`, so `value` now keys two
/// rows. Victims and donors are pairwise distinct rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyViolation {
    /// Row whose original key was destroyed.
    pub victim_row: usize,
    /// Row whose key now appears twice.
    pub donor_row: usize,
    /// The duplicated key value.
    pub value: i64,
}

/// One injected dangling-reference defect: `row`'s `ref` was replaced
/// with `value`, which exists in no parent fragment. Dangling values are
/// negative (real keys are non-negative), making them recognisable to
/// independent re-scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FkViolation {
    /// The row holding the dangling reference.
    pub row: usize,
    /// The dangling value (unique per defect, shared only by appended
    /// duplicates of the defective row).
    pub value: i64,
}

/// One injected near-duplicate pair: `dup_row` (appended after the
/// original rows) copies every payload and `ref` cell of `base_row` but
/// carries a fresh, unique `id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DuplicatePair {
    /// The original row.
    pub base_row: usize,
    /// The appended near-duplicate.
    pub dup_row: usize,
}

/// All defects of one source fragment (one source table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDirt {
    /// Source table name.
    pub table: String,
    /// The target table this fragment feeds.
    pub target_table: String,
    /// Total rows, including appended duplicates.
    pub rows: usize,
    /// Per-payload-column defects, in declaration order.
    pub columns: Vec<ColumnDirt>,
    /// Duplicate-key defects, ascending by victim row.
    pub key_violations: Vec<KeyViolation>,
    /// Dangling-reference defects, ascending by row (always empty for
    /// parent fragments, which have no `ref` column).
    pub fk_violations: Vec<FkViolation>,
    /// Near-duplicate pairs, ascending by base row.
    pub duplicate_pairs: Vec<DuplicatePair>,
}

/// One synonym rename applied to a source attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenameRecord {
    /// Index of the source database.
    pub source: usize,
    /// Source table the renamed attribute lives in.
    pub table: String,
    /// The canonical (target-side) name.
    pub canonical: String,
    /// The synonym used in the source schema.
    pub renamed: String,
}

/// All defects of one source database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDirt {
    /// Source database name.
    pub source: String,
    /// Per-fragment defects, in schema declaration order.
    pub tables: Vec<TableDirt>,
}

/// The full ground-truth manifest of a generated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthManifest {
    /// The seed that produced the scenario.
    pub seed: u64,
    /// Per-source defects.
    pub sources: Vec<SourceDirt>,
    /// Synonym renames applied to source schemas.
    pub renames: Vec<RenameRecord>,
}

impl SynthManifest {
    fn tables(&self) -> impl Iterator<Item = &TableDirt> {
        self.sources.iter().flat_map(|s| s.tables.iter())
    }

    /// Total NULL cells injected across all sources.
    pub fn total_nulls(&self) -> usize {
        self.tables()
            .flat_map(|t| t.columns.iter())
            .map(|c| c.nulls.len())
            .sum()
    }

    /// Total alternate-format cells injected across all sources.
    pub fn total_alt_format(&self) -> usize {
        self.tables()
            .flat_map(|t| t.columns.iter())
            .map(|c| c.alt_format.len())
            .sum()
    }

    /// Total duplicate-key defects across all sources.
    pub fn total_key_violations(&self) -> usize {
        self.tables().map(|t| t.key_violations.len()).sum()
    }

    /// Total dangling-reference defects across all sources.
    pub fn total_fk_violations(&self) -> usize {
        self.tables().map(|t| t.fk_violations.len()).sum()
    }

    /// Total near-duplicate pairs across all sources.
    pub fn total_duplicate_pairs(&self) -> usize {
        self.tables().map(|t| t.duplicate_pairs.len()).sum()
    }

    /// `true` iff no data defects were injected (renames, being schema
    /// heterogeneity rather than data dirt, are not counted).
    pub fn is_clean(&self) -> bool {
        self.total_nulls() == 0
            && self.total_alt_format() == 0
            && self.total_key_violations() == 0
            && self.total_fk_violations() == 0
            && self.total_duplicate_pairs() == 0
    }
}
